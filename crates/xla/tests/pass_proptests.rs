//! Property-based tests for the XLA-like compiler: on random operation
//! DAGs, the optimized executable must be semantically identical to the
//! unoptimized one, and trace fingerprints must be stable and injective
//! enough for cache correctness.

use proptest::prelude::*;
use s4tf_tensor::Tensor;
use s4tf_xla::graph::HloGraph;
use s4tf_xla::{compile, compile_unoptimized, ElemBinary, ElemUnary, HloOp, NodeId, ReduceKind};

#[derive(Debug, Clone)]
enum Step {
    Unary(usize, usize),
    Binary(usize, usize, usize),
    ScalarConst(f32),
    BiasAdd(usize), // trailing-broadcast add against a [C] parameter
    ReduceSumAxis0(usize),
    MarkExtraOutput(usize),
}

const UNARY: &[ElemUnary] = &[
    ElemUnary::Neg,
    ElemUnary::Exp,
    ElemUnary::Tanh,
    ElemUnary::Sigmoid,
    ElemUnary::Relu,
    ElemUnary::Square,
];
const BINARY: &[ElemBinary] = &[
    ElemBinary::Add,
    ElemBinary::Sub,
    ElemBinary::Mul,
    ElemBinary::Max,
    ElemBinary::Min,
];

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..UNARY.len(), any::<usize>()).prop_map(|(o, p)| Step::Unary(o, p)),
        (0..BINARY.len(), any::<usize>(), any::<usize>())
            .prop_map(|(o, a, b)| Step::Binary(o, a, b)),
        (-2.0f32..2.0).prop_map(Step::ScalarConst),
        any::<usize>().prop_map(Step::BiasAdd),
        any::<usize>().prop_map(Step::ReduceSumAxis0),
        any::<usize>().prop_map(Step::MarkExtraOutput),
    ]
}

/// Builds a random graph over a `[R, C]` parameter and a `[C]` bias
/// parameter. Tracks each live value's shape class so ops stay valid.
fn build(steps: &[Step], r: usize, c: usize) -> HloGraph {
    let mut g = HloGraph::new();
    let x = g.parameter(0, &[r, c]);
    let bias = g.parameter(1, &[c]);
    // values of shape [R, C] only (scalars live as consts on the side).
    let mut full: Vec<NodeId> = vec![x];
    let mut scalars: Vec<NodeId> = Vec::new();
    for step in steps {
        match step {
            Step::Unary(o, p) => {
                let v = full[p % full.len()];
                let n = g.unary(UNARY[o % UNARY.len()], v);
                full.push(n);
            }
            Step::Binary(o, a, b) => {
                let (x1, x2) = (full[a % full.len()], full[b % full.len()]);
                let n = g.binary(BINARY[o % BINARY.len()], x1, x2);
                full.push(n);
            }
            Step::ScalarConst(v) => {
                let k = g.constant(Tensor::scalar(*v));
                scalars.push(k);
                let base = full[scalars.len() % full.len()];
                let n = g.binary(ElemBinary::Add, base, k);
                full.push(n);
            }
            Step::BiasAdd(p) => {
                let v = full[p % full.len()];
                let n = g.binary(ElemBinary::Mul, v, bias);
                full.push(n);
            }
            Step::ReduceSumAxis0(p) => {
                let v = full[p % full.len()];
                let reduced = g.add(
                    HloOp::Reduce {
                        kind: ReduceKind::Sum,
                        axis: Some(0),
                    },
                    &[v],
                ); // shape [C]
                let back = g.add(HloOp::Broadcast(vec![r, c]), &[reduced]);
                full.push(back);
            }
            Step::MarkExtraOutput(p) => {
                let v = full[p % full.len()];
                g.mark_output(v);
            }
        }
    }
    g.mark_output(*full.last().expect("non-empty"));
    g
}

fn inputs(r: usize, c: usize, seed: u64) -> (Tensor<f32>, Tensor<f32>) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (
        Tensor::<f32>::rand_uniform(&[r, c], -1.0, 1.0, &mut rng),
        Tensor::<f32>::rand_uniform(&[c], 0.5, 1.5, &mut rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_equals_unoptimized_on_random_dags(
        steps in prop::collection::vec(step_strategy(), 1..20),
        seed in any::<u64>(),
    ) {
        let (r, c) = (3usize, 4usize);
        let g = build(&steps, r, c);
        let (x, b) = inputs(r, c, seed);
        let fast = compile(&g).run(&[&x, &b]);
        let slow = compile_unoptimized(&g).run(&[&x, &b]);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert_eq!(f.dims(), s.dims());
            if s.all_finite() {
                prop_assert!(
                    f.allclose(s, 1e-4),
                    "optimization changed semantics by {}",
                    f.max_abs_diff(s)
                );
            }
        }
    }

    #[test]
    fn fingerprints_are_deterministic_and_shape_sensitive(
        steps in prop::collection::vec(step_strategy(), 1..12),
    ) {
        let a = build(&steps, 3, 4);
        let b = build(&steps, 3, 4);
        prop_assert_eq!(a.fingerprint(), b.fingerprint(), "same program, same key");
        let c = build(&steps, 5, 4);
        prop_assert_ne!(a.fingerprint(), c.fingerprint(), "shape change, new key");
    }

    #[test]
    fn optimization_never_grows_the_kernel_count(
        steps in prop::collection::vec(step_strategy(), 1..20),
    ) {
        let g = build(&steps, 3, 4);
        let fused = compile(&g).kernel_count();
        let unfused = compile_unoptimized(&g).kernel_count();
        prop_assert!(fused <= unfused, "{fused} > {unfused}");
    }
}
