//! Property-based bit-exactness contract for the fused-kernel compiler:
//! on random `FusedInst` programs, the compiled path (`S4TF_CODEGEN=1`,
//! specialized loop nests or the register machine) must produce the
//! *same bits* as the chunked interpreter (`S4TF_CODEGEN=0`) — across
//! the SIMD dispatch toggle and thread counts, for full-shape and
//! trailing-broadcast inputs, at lengths straddling lane (8), chunk
//! (512) and task-grain (4096) boundaries.

use proptest::prelude::*;
use s4tf_tensor::Tensor;
use s4tf_xla::op::FusedInst;
use s4tf_xla::{eval_op, set_codegen_enabled, ElemBinary, ElemUnary, HloOp};
use std::sync::Mutex;

/// The toggles below are process-wide; every test in this binary flips
/// them, so they serialize on one lock.
static TOGGLES: Mutex<()> = Mutex::new(());

const UNARY: &[ElemUnary] = &[
    ElemUnary::Neg,
    ElemUnary::Exp,
    ElemUnary::Ln,
    ElemUnary::Sqrt,
    ElemUnary::Tanh,
    ElemUnary::Sigmoid,
    ElemUnary::Relu,
    ElemUnary::Square,
    ElemUnary::Recip,
];
const BINARY: &[ElemBinary] = &[
    ElemBinary::Add,
    ElemBinary::Sub,
    ElemBinary::Mul,
    ElemBinary::Div,
    ElemBinary::Max,
    ElemBinary::Min,
    ElemBinary::GreaterMask,
    ElemBinary::Pow,
];

/// One raw instruction choice; operand indices are drawn wide and folded
/// modulo the legal range when the program is assembled.
#[derive(Debug, Clone)]
enum RawInst {
    Input(usize),
    Imm(f32),
    Unary(usize, usize),
    Binary(usize, usize, usize),
}

fn inst_strategy() -> impl Strategy<Value = RawInst> {
    prop_oneof![
        any::<usize>().prop_map(RawInst::Input),
        (-2.0f32..2.0).prop_map(RawInst::Imm),
        (0..UNARY.len(), any::<usize>()).prop_map(|(o, a)| RawInst::Unary(o, a)),
        (0..BINARY.len(), any::<usize>(), any::<usize>())
            .prop_map(|(o, a, b)| RawInst::Binary(o, a, b)),
    ]
}

/// Output lengths straddling every execution boundary: SIMD lane width
/// (8), dispatch chunk (512), parallel task grain (8·512 = 4096).
const LENGTHS: &[usize] = &[1, 7, 8, 9, 511, 512, 513, 4095, 4096, 4097, 8200];

/// Assembles a valid program: instruction 0 reads input 0 (full shape,
/// so the output extent is pinned) and every operand index refers to an
/// earlier instruction.
fn assemble(raw: &[RawInst], n_inputs: usize) -> Vec<FusedInst> {
    let mut insts = vec![FusedInst::Input(0)];
    for r in raw {
        let len = insts.len();
        let inst = match r {
            RawInst::Input(i) => FusedInst::Input(i % n_inputs),
            RawInst::Imm(x) => FusedInst::Imm(*x),
            RawInst::Unary(o, a) => FusedInst::Unary(UNARY[o % UNARY.len()], a % len),
            RawInst::Binary(o, a, b) => {
                FusedInst::Binary(BINARY[o % BINARY.len()], a % len, b % len)
            }
        };
        insts.push(inst);
    }
    insts
}

/// Input tensors: input 0 is full-shape, the rest broadcast with lengths
/// that exercise the modulo-indexed path (scalar, short cycle, co-prime
/// to the chunk width, and full).
fn make_inputs(n: usize, n_inputs: usize, seed: u64) -> Vec<Tensor<f32>> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let lens = [n, 1.min(n), (n / 3).clamp(1, 37), n];
    (0..n_inputs)
        .map(|i| Tensor::<f32>::rand_uniform(&[lens[i % lens.len()].max(1)], -2.0, 2.0, &mut rng))
        .collect()
}

fn run_once(insts: &[FusedInst], inputs: &[Tensor<f32>], codegen: bool) -> Vec<u32> {
    set_codegen_enabled(codegen);
    let refs: Vec<&Tensor<f32>> = inputs.iter().collect();
    let op = HloOp::Fused {
        insts: insts.to_vec(),
        n_inputs: inputs.len(),
    };
    let out = eval_op(&op, &refs);
    out.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_is_bit_identical_to_interpreter(
        raw in prop::collection::vec(inst_strategy(), 0..31),
        len_ix in 0..LENGTHS.len(),
        n_inputs in 1usize..4,
        seed in any::<u64>(),
    ) {
        let _guard = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
        let n = LENGTHS[len_ix];
        let insts = assemble(&raw, n_inputs);
        let inputs = make_inputs(n, n_inputs, seed);
        for simd in [false, true] {
            s4tf_tensor::simd::set_simd_enabled(simd);
            for threads in [1usize, 4] {
                s4tf_threads::set_num_threads(threads);
                let interp = run_once(&insts, &inputs, false);
                let compiled = run_once(&insts, &inputs, true);
                prop_assert_eq!(
                    &interp, &compiled,
                    "bits diverged: n={} simd={} threads={} insts={:?}",
                    n, simd, threads, insts
                );
            }
        }
        s4tf_tensor::simd::set_simd_enabled(true);
        set_codegen_enabled(true);
    }
}

/// The donated in-place path (`p ← p − lr·g` on an owned parameter) must
/// also be bit-identical between the compiled kernel and the interpreter
/// — the compiled path honors the memory planner's aliasing the same way.
#[test]
fn donated_in_place_update_is_bit_identical() {
    use s4tf_xla::graph::HloGraph;

    let _guard = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
    let n = 4097usize;
    let mut g = HloGraph::new();
    let p = g.parameter(0, &[n]);
    let grad = g.parameter(1, &[n]);
    let lr = g.constant(Tensor::scalar(-0.05));
    let scaled = g.binary(ElemBinary::Mul, grad, lr);
    let upd = g.binary(ElemBinary::Add, p, scaled);
    g.mark_output(upd);
    let exe = s4tf_xla::compile(&g);

    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let p0 = Tensor::<f32>::rand_uniform(&[n], -1.0, 1.0, &mut rng);
    let g0 = Tensor::<f32>::rand_uniform(&[n], -1.0, 1.0, &mut rng);

    let mut got = Vec::new();
    for codegen in [false, true] {
        set_codegen_enabled(codegen);
        // Donated run: the planner overwrites p's buffer in place.
        let out = exe
            .try_run_owned(vec![p0.clone(), g0.clone()], "xla")
            .expect("runs");
        got.push(out[0].as_slice().to_vec());
    }
    set_codegen_enabled(true);
    let interp: Vec<u32> = got[0].iter().map(|x| x.to_bits()).collect();
    let compiled: Vec<u32> = got[1].iter().map(|x| x.to_bits()).collect();
    assert_eq!(interp, compiled, "donated in-place update diverged");
}
