//! `S4TF_DUMP` behavior of the XLA pass pipeline: before/after and
//! per-pass dumps with monotonically increasing sequence numbers, plus a
//! golden test of the Graphviz DOT exporter (pure string generation — the
//! `dot` binary is never required).

use s4tf_tensor::Tensor;
use s4tf_xla::graph::HloGraph;
use s4tf_xla::{ElemBinary, ElemUnary};
use std::path::PathBuf;
use std::sync::Mutex;

// The dump directory is process-global; tests that touch it serialize.
static SERIAL: Mutex<()> = Mutex::new(());

fn sample_graph() -> HloGraph {
    let mut g = HloGraph::new();
    let x = g.parameter(0, &[2]);
    let c = g.constant(Tensor::scalar(2.0));
    let m = g.binary(ElemBinary::Mul, x, c);
    let r = g.unary(ElemUnary::Relu, m);
    g.mark_output(r);
    g
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s4tf-xla-dumps-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dot_exporter_golden() {
    let dot = sample_graph().to_dot("golden");
    let expected = "digraph \"golden\" {\n\
                    \x20 rankdir=TB;\n\
                    \x20 node [shape=box, fontname=\"monospace\"];\n\
                    \x20 n0 [label=\"param0\\n[2]\", style=filled, fillcolor=lightblue];\n\
                    \x20 n1 [label=\"const 2\\n[]\", style=filled, fillcolor=lightgray];\n\
                    \x20 n2 [label=\"mul\\n[2]\"];\n\
                    \x20 n0 -> n2;\n\
                    \x20 n1 -> n2;\n\
                    \x20 n3 [label=\"relu\\n[2]\"];\n\
                    \x20 n2 -> n3;\n\
                    \x20 out3 [label=\"output\", shape=ellipse];\n\
                    \x20 n3 -> out3;\n\
                    }\n";
    assert_eq!(dot, expected);
}

#[test]
fn optimize_writes_sequenced_pass_dumps() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_dir("passes");
    s4tf_diag::set_dump_dir(Some(&dir));
    let mut g = sample_graph();
    s4tf_xla::passes::optimize(&mut g);
    s4tf_diag::set_dump_dir(None);

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("dump dir created")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();

    // The filename layout is <seq>.<category>.<name>.<ext>; sequence
    // numbers must be unique and strictly increasing in pipeline order.
    let seqs: Vec<u64> = names
        .iter()
        .map(|n| n.split('.').next().unwrap().parse().unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "sequenced: {names:?}");

    assert!(
        names
            .iter()
            .any(|n| n.contains(".xla.before.") && n.ends_with(".txt")),
        "before-pipeline text dump: {names:?}"
    );
    assert!(
        names
            .iter()
            .any(|n| n.contains(".xla.before.") && n.ends_with(".dot")),
        "before-pipeline DOT dump: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.contains(".xla.pass.")),
        "at least one per-pass dump (the fuser fires on this mul→relu chain): {names:?}"
    );
    assert!(
        names
            .iter()
            .any(|n| n.contains(".xla.after.") && n.ends_with(".dot")),
        "after-pipeline DOT dump: {names:?}"
    );

    // Every .dot dump parses as a digraph (structurally, not via Graphviz).
    for n in names.iter().filter(|n| n.ends_with(".dot")) {
        let text = std::fs::read_to_string(dir.join(n)).unwrap();
        assert!(text.starts_with("digraph"), "{n} is not DOT");
        assert!(text.trim_end().ends_with('}'), "{n} is truncated");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dumps_off_by_default_and_render_nothing() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // With no dump dir configured, the pipeline must not write anywhere.
    let dir = scratch_dir("off");
    s4tf_diag::set_dump_dir(None);
    let mut g = sample_graph();
    s4tf_xla::passes::optimize(&mut g);
    assert!(!dir.exists());
    assert!(s4tf_diag::dump("xla", "x", "txt", "ignored").is_none());
}
