//! Graceful degradation of the JIT: an injected compile failure retries
//! and then falls back to the trace interpreter, producing identical
//! results.
//!
//! The fault spec is process-global, so these tests live in their own
//! integration binary and serialize on one mutex.

#![cfg(feature = "fault")]

use s4tf_fault::{set_fault_spec, FaultSite};
use s4tf_tensor::Tensor;
use s4tf_xla::graph::HloGraph;
use s4tf_xla::op::{ElemBinary, ElemUnary};
use s4tf_xla::ProgramCache;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// relu(x·2 + 1): three elementwise ops the optimizer would fuse.
fn graph(dim: usize) -> HloGraph {
    let mut g = HloGraph::new();
    let x = g.parameter(0, &[dim]);
    let two = g.constant(Tensor::scalar(2.0));
    let one = g.constant(Tensor::scalar(1.0));
    let m = g.binary(ElemBinary::Mul, x, two);
    let a = g.binary(ElemBinary::Add, m, one);
    let r = g.unary(ElemUnary::Relu, a);
    g.mark_output(r);
    g
}

#[test]
fn injected_compile_failure_falls_back_to_interpreter() {
    let _g = guard();

    // Uninjected baseline: optimized compile, no fallback.
    set_fault_spec(None).unwrap();
    let cache = ProgramCache::new();
    let exe = cache.get_or_compile(&graph(4));
    let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4]);
    let expected = exe.run(&[&x]);
    assert_eq!(cache.stats().compile_fallbacks, 0);
    assert_eq!(exe.kernel_count(), 1, "fused by the optimizer");

    // Every compile attempt fails → retries exhaust → interpreter.
    set_fault_spec(Some("compile:1:0")).unwrap();
    let cache = ProgramCache::new();
    let exe = cache.get_or_compile(&graph(4));
    set_fault_spec(None).unwrap();

    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.compile_fallbacks, 1, "degraded exactly once");
    assert_eq!(exe.kernel_count(), 3, "interpreter runs the raw trace");
    let out = exe.run(&[&x]);
    assert_eq!(
        out[0].as_slice(),
        expected[0].as_slice(),
        "fallback must be semantically identical to the optimized program"
    );
}

#[test]
fn transient_compile_failure_is_retried_not_degraded() {
    let _g = guard();
    // p=0.5: with seed 7 the first draws include both outcomes well
    // within the retry budget; the ladder should eventually compile the
    // real program for *some* seed — use one where draw 0 injects and a
    // retry succeeds. Deterministically find such a seed first.
    set_fault_spec(None).unwrap();
    let seed = (0..100)
        .find(|&s| {
            s4tf_fault::would_inject(s, FaultSite::Compile, 0, 0.5)
                && !s4tf_fault::would_inject(s, FaultSite::Compile, 1, 0.5)
        })
        .expect("some seed injects on draw 0 and not draw 1");

    set_fault_spec(Some(&format!("compile:0.5:{seed}"))).unwrap();
    let cache = ProgramCache::new();
    let exe = cache.get_or_compile(&graph(8));
    set_fault_spec(None).unwrap();

    assert_eq!(cache.stats().compile_fallbacks, 0, "retry succeeded");
    assert_eq!(exe.kernel_count(), 1, "the real optimized program");
}

#[test]
fn fallback_program_is_cached_and_reused() {
    let _g = guard();
    set_fault_spec(Some("compile:1:3")).unwrap();
    let cache = ProgramCache::new();
    let a = cache.get_or_compile(&graph(16));
    // Second lookup is a cache hit: no compile attempt, no new fault draw.
    let b = cache.get_or_compile(&graph(16));
    set_fault_spec(None).unwrap();
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.compile_fallbacks),
        (1, 1, 1)
    );
}
