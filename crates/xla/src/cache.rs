//! The XLA-program cache (paper §3.4): "trace fragments are hashed to
//! become keys in an XLA-program cache; each unique trace is only compiled
//! by XLA once. Even though we reuse previously compiled traces, we still
//! incur tracing overhead on each iteration."
//!
//! Shape changes alter the fingerprint and therefore force recompilation —
//! the behavior §3.4 calls out as a limitation, reproduced faithfully and
//! measured by the retracing ablation (experiment E8).

use crate::diag;
use crate::exec::{compile, compile_unoptimized, Executable};
use crate::fault;
use crate::graph::HloGraph;
use crate::met;
use crate::prof;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a compiled program.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Compilations that exhausted their retries and degraded to the
    /// unoptimized trace interpreter (same semantics, no fusion).
    pub compile_fallbacks: u64,
    /// Analytic peak live bytes, summed over the cache's distinct
    /// programs (each program's liveness-schedule budget).
    pub planned_bytes: u64,
    /// Kernels (across all cached programs' runs) that committed to
    /// writing in place into a dying operand's buffer.
    pub in_place: u64,
    /// The subset of `in_place` that overwrote a caller-donated
    /// parameter buffer.
    pub donated: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 when empty).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    // Fingerprint → compiled entries. A bucket holds the graphs too so a
    // (vanishingly unlikely) fingerprint collision cannot return the wrong
    // program.
    entries: HashMap<u64, Vec<(HloGraph, Arc<Executable>)>>,
    stats: CacheStats,
    compile_time: Duration,
}

/// A thread-safe compiled-program cache keyed by trace fingerprint.
#[derive(Default)]
pub struct ProgramCache {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "ProgramCache(programs: {}, stats: {:?})",
            inner.entries.values().map(Vec::len).sum::<usize>(),
            inner.stats
        )
    }
}

fn cache_hit_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        met::counter(
            "s4tf_xla_cache_total{result=\"hit\"}",
            "Program-cache lookups, by whether a compiled program was found",
        )
    })
}

fn cache_miss_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        met::counter(
            "s4tf_xla_cache_total{result=\"miss\"}",
            "Program-cache lookups, by whether a compiled program was found",
        )
    })
}

fn compile_fallback_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        met::counter(
            "s4tf_xla_compile_fallback_total",
            "Compilations that exhausted retries and degraded to the trace interpreter",
        )
    })
}

fn compile_time_hist() -> &'static met::Histogram {
    static H: OnceLock<&'static met::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        met::histogram(
            "s4tf_xla_compile_us",
            "Wall time of one XLA-program compilation, microseconds",
        )
    })
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProgramCache::default()
    }

    /// Returns the compiled program for `graph`, compiling at most once
    /// per unique trace.
    pub fn get_or_compile(&self, graph: &HloGraph) -> Arc<Executable> {
        let key = graph.fingerprint();
        let mut inner = self.inner.lock();
        if let Some(bucket) = inner.entries.get(&key) {
            if let Some((_, exe)) = bucket.iter().find(|(g, _)| g == graph) {
                let exe = Arc::clone(exe);
                inner.stats.hits += 1;
                cache_hit_counter().inc();
                prof::counter_add("xla.cache_hit", 1);
                diag::event!("xla.cache.hit", fingerprint = format_args!("{key:016x}"));
                return exe;
            }
        }
        inner.stats.misses += 1;
        cache_miss_counter().inc();
        prof::counter_add("xla.cache_miss", 1);
        diag::event!("xla.cache.miss", fingerprint = format_args!("{key:016x}"));
        diag::event!(
            "xla.compile.start",
            fingerprint = format_args!("{key:016x}"),
            nodes = graph.len(),
        );
        let start = std::time::Instant::now();
        // Buffers the compiler materializes (folded constants, fused
        // graphs) are attributed to the compile site, not the caller's.
        let site = met::mem_site("xla.compile");
        let (exe, fell_back) = compile_resilient(graph, key);
        drop(site);
        let exe = Arc::new(exe);
        if fell_back {
            inner.stats.compile_fallbacks += 1;
            compile_fallback_counter().inc();
        }
        compile_time_hist().record(start.elapsed().as_micros() as u64);
        inner.compile_time += start.elapsed();
        diag::event!(
            "xla.compile.finish",
            fingerprint = format_args!("{key:016x}"),
            kernels = exe.kernel_count(),
            dur_us = start.elapsed().as_micros(),
        );
        inner
            .entries
            .entry(key)
            .or_default()
            .push((graph.clone(), Arc::clone(&exe)));
        exe
    }

    /// Current statistics, including each cached program's planner
    /// budget and accumulated run-time plan outcomes.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats;
        for (_, exe) in inner.entries.values().flatten() {
            stats.planned_bytes += exe.planned_bytes();
            let counters = exe.plan_counters();
            stats.in_place += counters.in_place.load(Ordering::Relaxed);
            stats.donated += counters.donated.load(Ordering::Relaxed);
        }
        stats
    }

    /// Total time spent compiling (the JIT cost the cache amortizes).
    pub fn compile_time(&self) -> Duration {
        self.inner.lock().compile_time
    }

    /// Number of distinct compiled programs.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.values().map(Vec::len).sum()
    }

    /// True if nothing has been compiled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all compiled programs and statistics.
    pub fn clear(&self) {
        *self.inner.lock() = Inner::default();
    }
}

/// How many times a failed compile is retried before degrading.
const COMPILE_RETRIES: u32 = 2;

/// Compiles with the graceful-degradation ladder: a failure (a compiler
/// panic, or an injected `compile`-site fault) is retried up to
/// [`COMPILE_RETRIES`] times with bounded backoff; if every attempt
/// fails, the trace degrades to [`compile_unoptimized`] — the trace
/// interpreter: same kernels in the same topological order, no fusion —
/// so training continues at reduced speed instead of aborting.
///
/// Returns the executable and whether it is the fallback.
fn compile_resilient(graph: &HloGraph, key: u64) -> (Executable, bool) {
    let mut attempt = 0u32;
    loop {
        let failure: Option<String> = if fault::should_inject(fault::FaultSite::Compile) {
            diag::event!(
                "fault.injected",
                site = "compile",
                fingerprint = format_args!("{key:016x}"),
                attempt = attempt,
            );
            Some("injected fault at site `compile` (S4TF_FAULT_SPEC)".to_string())
        } else {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| compile(graph))) {
                Ok(exe) => return (exe, false),
                Err(payload) => Some(s4tf_tensor::panic_message(&*payload)),
            }
        };
        let failure = failure.unwrap_or_default();
        if attempt >= COMPILE_RETRIES {
            prof::counter_add("xla.compile_fallback", 1);
            diag::event!(
                "xla.compile.fallback",
                fingerprint = format_args!("{key:016x}"),
                attempts = attempt + 1,
                error = failure,
            );
            eprintln!(
                "s4tf fault: XLA compile of trace {key:016x} failed {} times ({failure}); \
                 falling back to trace interpreter",
                attempt + 1,
            );
            return (compile_unoptimized(graph), true);
        }
        prof::counter_add("xla.compile_retry", 1);
        diag::event!(
            "xla.compile.retry",
            fingerprint = format_args!("{key:016x}"),
            attempt = attempt,
            error = failure,
        );
        std::thread::sleep(fault::backoff_delay(attempt));
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ElemBinary, ElemUnary};
    use s4tf_tensor::Tensor;

    fn graph(dim: usize, scale: f32) -> HloGraph {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[dim]);
        let c = g.constant(Tensor::scalar(scale));
        let m = g.binary(ElemBinary::Mul, x, c);
        let r = g.unary(ElemUnary::Relu, m);
        g.mark_output(r);
        g
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new();
        let g = graph(8, 2.0);
        let a = cache.get_or_compile(&g);
        let b = cache.get_or_compile(&g);
        assert!(Arc::ptr_eq(&a, &b), "same trace must reuse the program");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.compile_fallbacks),
            (1, 1, 0)
        );
        assert!(
            stats.planned_bytes > 0,
            "a cached program carries its planner budget"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shape_change_forces_recompile() {
        let cache = ProgramCache::new();
        cache.get_or_compile(&graph(8, 2.0));
        cache.get_or_compile(&graph(16, 2.0)); // §3.4: new shape → compile
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn distinct_constants_are_distinct_programs() {
        let cache = ProgramCache::new();
        cache.get_or_compile(&graph(8, 2.0));
        cache.get_or_compile(&graph(8, 3.0));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn stats_and_clear() {
        let cache = ProgramCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hit_ratio(), 0.0);
        let g = graph(4, 1.5);
        for _ in 0..9 {
            cache.get_or_compile(&g);
        }
        assert!((cache.stats().hit_ratio() - 8.0 / 9.0).abs() < 1e-12);
        assert!(cache.compile_time() > Duration::ZERO);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn compiled_program_runs_correctly_from_cache() {
        let cache = ProgramCache::new();
        let g = graph(3, 2.0);
        let exe = cache.get_or_compile(&g);
        let out = exe.run(&[&Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3])]);
        assert_eq!(out[0].as_slice(), &[0.0, 1.0, 4.0]);
    }
}
