//! Internal shim over `s4tf-profile`: with the `profile` feature this
//! re-exports the real profiler; without it, the shared no-op mirror
//! (`crates/profile/src/noop_shim.rs`) is `include!`d, so
//! instrumentation sites compile identically and cost nothing.

// Not every crate uses every hook; keep the shim surface uniform.
#![allow(dead_code, unused_imports)]

#[cfg(feature = "profile")]
pub(crate) use s4tf_profile::{
    counter_add, current_span, enabled, gauge_set, next_flow_id, next_op_id, now_us, op_event,
    op_root, set_op_root, set_thread_name, span, SpanGuard,
};

#[cfg(not(feature = "profile"))]
include!("../../profile/src/noop_shim.rs");
