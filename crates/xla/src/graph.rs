//! The HLO operation DAG: the in-memory form of a LazyTensor trace
//! (paper Figure 4) and the unit of JIT compilation.

use crate::op::HloOp;
use s4tf_tensor::{Shape, Tensor};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Identifies a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// One node: an operation, its operand edges and its inferred shape.
#[derive(Debug, Clone, PartialEq)]
pub struct HloNode {
    /// The operation.
    pub op: HloOp,
    /// Operand nodes (positional).
    pub inputs: Vec<NodeId>,
    /// The node's output shape.
    pub shape: Shape,
}

/// An operation DAG in topological order (operands precede users).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HloGraph {
    /// The nodes; indices are [`NodeId`]s.
    pub nodes: Vec<HloNode>,
    /// The graph's outputs (what the executable returns).
    pub outputs: Vec<NodeId>,
    /// Number of runtime parameters.
    pub n_params: usize,
}

impl HloGraph {
    /// An empty graph.
    pub fn new() -> Self {
        HloGraph::default()
    }

    /// Adds a runtime parameter with the given shape.
    ///
    /// # Panics
    /// Panics if `index` is not the next parameter index (parameters must
    /// be added in order).
    pub fn parameter(&mut self, index: usize, dims: &[usize]) -> NodeId {
        assert_eq!(index, self.n_params, "parameters must be added in order");
        self.n_params += 1;
        self.push(HloNode {
            op: HloOp::Parameter(index),
            inputs: vec![],
            shape: Shape::new(dims),
        })
    }

    /// Adds an embedded constant.
    pub fn constant(&mut self, value: Tensor<f32>) -> NodeId {
        let shape = value.shape().clone();
        self.push(HloNode {
            op: HloOp::Constant(value),
            inputs: vec![],
            shape,
        })
    }

    /// Adds an operation node, inferring its shape.
    ///
    /// # Panics
    /// Panics on shape-inference failures (reported at record time, like
    /// the paper's lazy tracing).
    pub fn add(&mut self, op: HloOp, inputs: &[NodeId]) -> NodeId {
        let shapes: Vec<&Shape> = inputs.iter().map(|&i| &self.node(i).shape).collect();
        let shape = op.infer_shape(&shapes);
        self.push(HloNode {
            op,
            inputs: inputs.to_vec(),
            shape,
        })
    }

    /// Convenience: elementwise unary.
    pub fn unary(&mut self, op: crate::op::ElemUnary, x: NodeId) -> NodeId {
        self.add(HloOp::Unary(op), &[x])
    }

    /// Convenience: elementwise binary.
    pub fn binary(&mut self, op: crate::op::ElemBinary, a: NodeId, b: NodeId) -> NodeId {
        self.add(HloOp::Binary(op), &[a, b])
    }

    /// Marks a node as a graph output.
    pub fn mark_output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    fn push(&mut self, node: HloNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Access a node.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &HloNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Histogram of op mnemonics (for trace summaries, Figure 4).
    pub fn op_histogram(&self) -> Vec<(String, usize)> {
        let mut h: std::collections::BTreeMap<String, usize> = Default::default();
        for n in &self.nodes {
            let name = match &n.op {
                HloOp::Constant(_) => "const".to_string(),
                HloOp::Parameter(_) => "param".to_string(),
                op => op.mnemonic(),
            };
            *h.entry(name).or_insert(0) += 1;
        }
        h.into_iter().collect()
    }

    /// A structural fingerprint: the key under which compiled programs are
    /// cached (paper §3.4). Two traces with the same ops, edges, static
    /// configuration, constants and shapes collide; anything else
    /// (including a shape change, which forces recompilation) differs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.n_params.hash(&mut h);
        self.outputs.hash(&mut h);
        for node in &self.nodes {
            node.inputs.hash(&mut h);
            node.shape.dims().hash(&mut h);
            match &node.op {
                // Constants hash by exact contents (Debug truncates data).
                HloOp::Constant(t) => {
                    "const".hash(&mut h);
                    t.dims().hash(&mut h);
                    for &x in t.as_slice() {
                        x.to_bits().hash(&mut h);
                    }
                }
                // Everything else: the Debug form covers the op kind and
                // all static configuration (strides, padding, dims, fused
                // programs, …).
                op => format!("{op:?}").hash(&mut h),
            }
        }
        h.finish()
    }

    /// Renders the graph as Graphviz DOT (paper Figure 4: "LazyTensor
    /// trace of the LeNet-5 model's forward pass").
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{title}\" {{\n"));
        out.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let label = format!("{}\\n{}", node.op.mnemonic(), node.shape);
            let style = match node.op {
                HloOp::Parameter(_) => ", style=filled, fillcolor=lightblue",
                HloOp::Constant(_) => ", style=filled, fillcolor=lightgray",
                _ => "",
            };
            out.push_str(&format!("  n{i} [label=\"{label}\"{style}];\n"));
            for input in &node.inputs {
                out.push_str(&format!("  n{} -> n{i};\n", input.0));
            }
        }
        for o in &self.outputs {
            out.push_str(&format!(
                "  out{0} [label=\"output\", shape=ellipse];\n  n{0} -> out{0};\n",
                o.0
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Plain-text listing — one node per line in topological order — the
    /// format `S4TF_DUMP` writes before/after each compiler pass.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "HloGraph {{ nodes: {}, params: {} }}\n",
            self.nodes.len(),
            self.n_params
        ));
        for (i, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<String> = node.inputs.iter().map(|id| format!("%{}", id.0)).collect();
            out.push_str(&format!(
                "  %{i} = {}({}) : {}\n",
                node.op.mnemonic(),
                inputs.join(", "),
                node.shape
            ));
        }
        let outputs: Vec<String> = self.outputs.iter().map(|o| format!("%{}", o.0)).collect();
        out.push_str(&format!("  outputs: [{}]\n", outputs.join(", ")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ElemBinary, ElemUnary};

    fn sample_graph() -> HloGraph {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 3]);
        let c = g.constant(Tensor::scalar(2.0));
        let m = g.binary(ElemBinary::Mul, x, c);
        let r = g.unary(ElemUnary::Relu, m);
        g.mark_output(r);
        g
    }

    #[test]
    fn build_and_query() {
        let g = sample_graph();
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
        assert_eq!(g.n_params, 1);
        assert_eq!(g.node(NodeId(2)).shape, Shape::new(&[2, 3]));
        assert_eq!(g.outputs, vec![NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "parameters must be added in order")]
    fn out_of_order_parameters_panic() {
        let mut g = HloGraph::new();
        g.parameter(1, &[2]);
    }

    #[test]
    fn fingerprint_stability_and_sensitivity() {
        let a = sample_graph();
        let b = sample_graph();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same trace, same key");

        // Different shape → different key (shape changes force recompiles).
        let mut c = HloGraph::new();
        let x = c.parameter(0, &[2, 4]);
        let k = c.constant(Tensor::scalar(2.0));
        let m = c.binary(ElemBinary::Mul, x, k);
        let r = c.unary(ElemUnary::Relu, m);
        c.mark_output(r);
        assert_ne!(a.fingerprint(), c.fingerprint());

        // Different constant value → different key.
        let mut d = HloGraph::new();
        let x = d.parameter(0, &[2, 3]);
        let k = d.constant(Tensor::scalar(3.0));
        let m = d.binary(ElemBinary::Mul, x, k);
        let r = d.unary(ElemUnary::Relu, m);
        d.mark_output(r);
        assert_ne!(a.fingerprint(), d.fingerprint());

        // Different op → different key.
        let mut e = HloGraph::new();
        let x = e.parameter(0, &[2, 3]);
        let k = e.constant(Tensor::scalar(2.0));
        let m = e.binary(ElemBinary::Add, x, k);
        let r = e.unary(ElemUnary::Relu, m);
        e.mark_output(r);
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn histogram_and_dot() {
        let g = sample_graph();
        let h = g.op_histogram();
        assert!(h.contains(&("relu".to_string(), 1)));
        assert!(h.contains(&("param".to_string(), 1)));
        let dot = g.to_dot("test");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("relu"));
        assert!(dot.contains("n2 -> n3"));
        assert!(dot.contains("output"));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn shape_errors_surface_at_record_time() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[1, 8, 8, 3]);
        let f = g.parameter(1, &[3, 3, 4, 8]);
        g.add(
            HloOp::Conv2D {
                strides: (1, 1),
                padding: s4tf_tensor::Padding::Same,
            },
            &[x, f],
        );
    }
}
