//! The metrics-registry shim: the real `s4tf-metrics` surface when the
//! `metrics` feature is on, the shared inert mirror when it is off, so
//! instrumentation sites compile identically either way.

#![allow(dead_code, unused_imports)]

#[cfg(feature = "metrics")]
pub(crate) use s4tf_metrics::{
    counter, dispatch_hist, enabled, gauge, histogram, mem_site, Counter, Gauge, Histogram,
    MemSiteGuard,
};

#[cfg(not(feature = "metrics"))]
include!("../../metrics/src/noop_shim.rs");
