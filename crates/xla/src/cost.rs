//! Maps each [`HloOp`] to its analytic [`OpCost`] (FLOPs + bytes moved),
//! using the kernel-family formulas in [`s4tf_tensor::cost`].
//!
//! Every dispatch path (naive, eager, compiled/lazy) calls [`op_cost`]
//! with the operand and output shapes it already has from shape
//! inference, and feeds the result into the profiler's per-op work
//! accounting — the denominator for achieved-GFLOP/s, GB/s and roofline
//! reporting.

use crate::op::{FusedInst, HloOp, ReduceKind};
use s4tf_tensor::cost as formulas;
use s4tf_tensor::{OpCost, Shape};

/// The analytic cost of one invocation of `op` over `inputs`, producing
/// `out`. Shape-only ops (reshape) and leaves cost zero; a fused kernel
/// costs the sum of its constituent instructions over the output extent,
/// with bytes counting only the fused inputs and the single output (no
/// intermediates — the fusion payoff the roofline should credit).
pub fn op_cost(op: &HloOp, inputs: &[&Shape], out: &Shape) -> OpCost {
    let in_elems = || inputs.iter().map(|s| s.num_elements()).sum::<usize>();
    let out_elems = out.num_elements();
    match op {
        HloOp::Parameter(_) | HloOp::Constant(_) => OpCost::ZERO,
        HloOp::Unary(_) | HloOp::Binary(_) => formulas::elementwise(out_elems, in_elems(), 1),
        HloOp::MatMul { t_lhs, t_rhs } => {
            let (m, k) = if *t_lhs {
                (inputs[0].dim(1), inputs[0].dim(0))
            } else {
                (inputs[0].dim(0), inputs[0].dim(1))
            };
            let n = if *t_rhs {
                inputs[1].dim(0)
            } else {
                inputs[1].dim(1)
            };
            formulas::matmul(m, k, n)
        }
        HloOp::Conv2D { .. } => {
            let (i, f) = (inputs[0], inputs[1]);
            formulas::conv2d(
                i.dim(0),
                f.dim(2),
                f.dim(0),
                f.dim(1),
                f.dim(3),
                out.dim(1),
                out.dim(2),
                i.num_elements(),
            )
        }
        // Gradients: operands are (filter, grad_out) / (input, grad_out);
        // the MAC volume matches the forward conv over grad_out's spatial
        // extent.
        HloOp::Conv2DBackwardInput { .. } => {
            let (f, g) = (inputs[0], inputs[1]);
            formulas::conv2d_grad(
                g.dim(0),
                f.dim(2),
                f.dim(0),
                f.dim(1),
                f.dim(3),
                g.dim(1),
                g.dim(2),
                in_elems(),
                out_elems,
            )
        }
        HloOp::Conv2DBackwardFilter { filter_dims, .. } => {
            let g = inputs[1];
            formulas::conv2d_grad(
                g.dim(0),
                filter_dims[2],
                filter_dims[0],
                filter_dims[1],
                filter_dims[3],
                g.dim(1),
                g.dim(2),
                in_elems(),
                out_elems,
            )
        }
        HloOp::AvgPool { pool, .. } | HloOp::MaxPool { pool, .. } => {
            formulas::pool2d(inputs[0].num_elements(), out_elems, pool.0 * pool.1)
        }
        // Pooling gradients route each output-gradient element back to its
        // window: the same combine volume as the forward pool.
        HloOp::AvgPoolGrad { pool, .. } | HloOp::MaxPoolGrad { pool, .. } => {
            formulas::pool2d(in_elems(), out_elems, pool.0 * pool.1)
        }
        HloOp::GatherRows => {
            formulas::data_movement(inputs[1].num_elements() + out_elems, out_elems)
        }
        HloOp::GatherRowsGrad { .. } => formulas::scatter_add(inputs[1].num_elements(), out_elems),
        HloOp::Reduce { kind, .. } => formulas::reduce(
            inputs[0].num_elements(),
            out_elems,
            matches!(kind, ReduceKind::Mean),
        ),
        // Reshape shares storage — no elements move.
        HloOp::Reshape(_) => OpCost::ZERO,
        HloOp::Transpose(_) | HloOp::Broadcast(_) => {
            formulas::data_movement(inputs[0].num_elements(), out_elems)
        }
        HloOp::ReduceToShape(_) => formulas::reduce(inputs[0].num_elements(), out_elems, false),
        HloOp::Fused { insts, .. } => {
            // Recount against the compiled IR: constant-folded, dead and
            // peephole-absorbed instructions do no per-element work, and
            // inputs the IR never reads move no bytes — summing the raw
            // instruction list overstates fused roofline intensity.
            if let Some(k) = crate::codegen::peek_or_compile(insts) {
                let live_in: usize = inputs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| k.input_live(i))
                    .map(|(_, s)| s.num_elements())
                    .sum();
                return formulas::elementwise(out_elems, live_in, k.flops_per_elem() as usize);
            }
            // Outside the compilable envelope the interpreter runs the raw
            // list, so the raw count is the honest one.
            let ops = insts
                .iter()
                .filter(|i| matches!(i, FusedInst::Unary(..) | FusedInst::Binary(..)))
                .count();
            formulas::elementwise(out_elems, in_elems(), ops)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ElemBinary, ElemUnary};

    fn s(dims: &[usize]) -> Shape {
        Shape::new(dims)
    }

    #[test]
    fn matmul_variants_agree_with_hand_count() {
        let a = s(&[5, 3]);
        let b = s(&[3, 7]);
        let out = s(&[5, 7]);
        let mm = HloOp::MatMul {
            t_lhs: false,
            t_rhs: false,
        };
        let c = op_cost(&mm, &[&a, &b], &out);
        assert_eq!(c.flops, 2 * 5 * 3 * 7);
        assert_eq!(c.bytes, 4 * (15 + 21 + 35));
        // Transposed operands describe the same product.
        let tn = HloOp::MatMul {
            t_lhs: true,
            t_rhs: false,
        };
        assert_eq!(op_cost(&tn, &[&s(&[3, 5]), &b], &out).flops, c.flops);
        let nt = HloOp::MatMul {
            t_lhs: false,
            t_rhs: true,
        };
        assert_eq!(op_cost(&nt, &[&a, &s(&[7, 3])], &out).flops, c.flops);
    }

    #[test]
    fn conv2d_flops_match_im2col_gemm() {
        let i = s(&[2, 28, 28, 1]);
        let f = s(&[5, 5, 1, 6]);
        let out = s(&[2, 28, 28, 6]);
        let conv = HloOp::Conv2D {
            strides: (1, 1),
            padding: s4tf_tensor::Padding::Same,
        };
        let c = op_cost(&conv, &[&i, &f], &out);
        // im2col GEMM: (2·28·28) x (5·5·1) x 6, 2 FLOPs per MAC.
        assert_eq!(c.flops, 2 * (2 * 28 * 28) as u64 * 25 * 6);
        // Both gradients carry the same MAC volume.
        let bwd_in = HloOp::Conv2DBackwardInput {
            input_dims: vec![2, 28, 28, 1],
            strides: (1, 1),
            padding: s4tf_tensor::Padding::Same,
        };
        assert_eq!(op_cost(&bwd_in, &[&f, &out], &i).flops, c.flops);
        let bwd_f = HloOp::Conv2DBackwardFilter {
            filter_dims: vec![5, 5, 1, 6],
            strides: (1, 1),
            padding: s4tf_tensor::Padding::Same,
        };
        assert_eq!(op_cost(&bwd_f, &[&i, &out], &f).flops, c.flops);
    }

    #[test]
    fn reduction_hand_counts() {
        let x = s(&[4, 25]);
        let sum_all = HloOp::Reduce {
            kind: ReduceKind::Sum,
            axis: None,
        };
        assert_eq!(op_cost(&sum_all, &[&x], &Shape::scalar()).flops, 99);
        let mean_all = HloOp::Reduce {
            kind: ReduceKind::Mean,
            axis: None,
        };
        assert_eq!(op_cost(&mean_all, &[&x], &Shape::scalar()).flops, 100);
        let sum_axis = HloOp::Reduce {
            kind: ReduceKind::Sum,
            axis: Some(1),
        };
        assert_eq!(op_cost(&sum_axis, &[&x], &s(&[4])).flops, 96);
    }

    #[test]
    fn fused_cost_is_sum_of_constituents() {
        // sigmoid built from 4 elementwise ops: neg → exp → add 1 → recip.
        let n = 1000usize;
        let x = s(&[n]);
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Unary(ElemUnary::Neg, 0),
            FusedInst::Unary(ElemUnary::Exp, 1),
            FusedInst::Imm(1.0),
            FusedInst::Binary(ElemBinary::Add, 2, 3),
            FusedInst::Unary(ElemUnary::Recip, 4),
        ];
        let fused = HloOp::Fused { insts, n_inputs: 1 };
        let fused_cost = op_cost(&fused, &[&x], &x);
        // FLOPs: exactly the sum of the four constituent elementwise ops.
        let constituents: u64 = (0..4)
            .map(|_| op_cost(&HloOp::Unary(ElemUnary::Neg), &[&x], &x).flops)
            .sum();
        assert_eq!(fused_cost.flops, constituents);
        assert_eq!(fused_cost.flops, 4 * n as u64);
        // Bytes: one input + one output — strictly less than the unfused
        // chain's 4 reads + 4 writes. This asymmetry IS the fusion win.
        assert_eq!(fused_cost.bytes, 4 * (n + n) as u64);
        let unfused_bytes: u64 = (0..4)
            .map(|_| op_cost(&HloOp::Unary(ElemUnary::Neg), &[&x], &x).bytes)
            .sum();
        assert!(fused_cost.bytes < unfused_bytes);
    }

    #[test]
    fn fused_cost_counts_compiled_ir_not_raw_instructions() {
        // Raw list: 5 arithmetic instructions. Compiled IR: the 2·3
        // product folds to a constant, the dead exp is eliminated, and
        // mul+add collapse into one MulBin — 2 FLOPs/element, and only
        // the two live inputs move bytes.
        let n = 1000usize;
        let x = s(&[n]);
        let y = s(&[n]);
        let dead = s(&[n]);
        let insts = vec![
            FusedInst::Input(0), // x
            FusedInst::Imm(2.0),
            FusedInst::Imm(3.0),
            FusedInst::Binary(ElemBinary::Mul, 1, 2), // folds to 6
            FusedInst::Input(2),                      // never reaches the output
            FusedInst::Unary(ElemUnary::Exp, 4),      // dead
            FusedInst::Binary(ElemBinary::Mul, 0, 3), // x·6
            FusedInst::Input(1),                      // y
            FusedInst::Binary(ElemBinary::Add, 7, 6), // y + x·6 → MulBin
        ];
        let fused = HloOp::Fused { insts, n_inputs: 3 };
        let c = op_cost(&fused, &[&x, &y, &dead], &x);
        assert_eq!(c.flops, 2 * n as u64, "one MulBin = 2 FLOPs/element");
        assert_eq!(
            c.bytes,
            4 * (n + n + n) as u64,
            "two live inputs + output; the dead input moves nothing"
        );
    }

    #[test]
    fn shape_ops_cost_no_flops() {
        let x = s(&[2, 3]);
        assert_eq!(
            op_cost(&HloOp::Reshape(vec![6]), &[&x], &s(&[6])),
            OpCost::ZERO
        );
        let t = op_cost(&HloOp::Transpose(vec![1, 0]), &[&x], &s(&[3, 2]));
        assert_eq!(t.flops, 0);
        assert_eq!(t.bytes, 4 * 12);
    }
}
