//! Whole-program optimizations over [`HloGraph`]s — the domain-specific
//! compiler's payoff (paper §3.3): because the lazy trace exposes the whole
//! program, the compiler can fold constants, share subexpressions and —
//! most importantly — *fuse* chains of elementwise operations into single
//! kernels.

use crate::exec::apply_binary;
use crate::graph::{HloGraph, HloNode, NodeId};
use crate::op::{FusedInst, HloOp};
use s4tf_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Runs the full pipeline: constant folding → CSE → algebraic
/// simplification → elementwise fusion → DCE.
///
/// With `S4TF_DUMP` set, the graph is dumped before the pipeline (text +
/// Graphviz DOT) and after every pass, in sequence-numbered files.
pub fn optimize(g: &mut HloGraph) {
    let dumping = crate::diag::dump_enabled();
    if dumping {
        crate::diag::dump("xla", "before", "txt", &g.to_text());
        crate::diag::dump("xla", "before", "dot", &g.to_dot("xla-before"));
    }
    type Pass = fn(&mut HloGraph) -> bool;
    let passes: [(&str, Pass); 5] = [
        ("constant_fold", constant_fold),
        ("cse", cse),
        ("algebraic_simplify", algebraic_simplify),
        ("fuse_elementwise", fuse_elementwise),
        ("dce", dce),
    ];
    for (name, pass) in passes {
        {
            let _span = crate::prof::span(format!("xla.pass.{name}"));
            pass(g);
        }
        if dumping {
            crate::diag::dump("xla", &format!("pass.{name}"), "txt", &g.to_text());
        }
    }
    if dumping {
        crate::diag::dump("xla", "after", "dot", &g.to_dot("xla-after"));
    }
}

/// Replaces every use of keys in `replace` (chased to fixpoint) across
/// node inputs and graph outputs.
fn apply_replacements(g: &mut HloGraph, replace: &HashMap<NodeId, NodeId>) {
    if replace.is_empty() {
        return;
    }
    let chase = |mut id: NodeId| {
        while let Some(&next) = replace.get(&id) {
            id = next;
        }
        id
    };
    for node in &mut g.nodes {
        for input in &mut node.inputs {
            *input = chase(*input);
        }
    }
    for o in &mut g.outputs {
        *o = chase(*o);
    }
}

/// Folds elementwise operations over constants into constants.
pub fn constant_fold(g: &mut HloGraph) -> bool {
    let mut changed = false;
    for i in 0..g.nodes.len() {
        let node = &g.nodes[i];
        if !node.op.is_elementwise() {
            continue;
        }
        let inputs: Vec<Option<Tensor<f32>>> = node
            .inputs
            .iter()
            .map(|&id| match &g.node(id).op {
                HloOp::Constant(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        if inputs.iter().any(Option::is_none) {
            continue;
        }
        let folded = match (&node.op, inputs.len()) {
            (HloOp::Unary(u), 1) => {
                let u = *u;
                inputs[0].as_ref().unwrap().map(move |x| u.apply(x))
            }
            (HloOp::Binary(b), 2) => {
                let b = *b;
                apply_binary(
                    inputs[0].as_ref().unwrap(),
                    inputs[1].as_ref().unwrap(),
                    move |x, y| b.apply(x, y),
                )
            }
            _ => continue,
        };
        g.nodes[i].op = HloOp::Constant(folded);
        g.nodes[i].inputs.clear();
        changed = true;
    }
    changed
}

/// Common-subexpression elimination: structurally identical nodes merge.
pub fn cse(g: &mut HloGraph) -> bool {
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    let mut replace: HashMap<NodeId, NodeId> = HashMap::new();
    for i in 0..g.nodes.len() {
        // Inputs may reference earlier replaced nodes; normalize first.
        let inputs: Vec<NodeId> = g.nodes[i]
            .inputs
            .iter()
            .map(|id| *replace.get(id).unwrap_or(id))
            .collect();
        g.nodes[i].inputs = inputs.clone();
        let key = match &g.nodes[i].op {
            HloOp::Constant(t) => format!(
                "const:{:?}:{:?}",
                t.dims(),
                t.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            ),
            op => format!("{op:?}:{inputs:?}"),
        };
        match seen.get(&key) {
            Some(&prior) => {
                replace.insert(NodeId(i as u32), prior);
            }
            None => {
                seen.insert(key, NodeId(i as u32));
            }
        }
    }
    let changed = !replace.is_empty();
    apply_replacements(g, &replace);
    changed
}

/// Scalar-identity simplification: `x·1 → x`, `x+0 → x`, `x−0 → x`,
/// `x/1 → x`.
pub fn algebraic_simplify(g: &mut HloGraph) -> bool {
    use crate::op::ElemBinary::{Add, Div, Mul, Sub};
    let scalar_const = |g: &HloGraph, id: NodeId| -> Option<f32> {
        match &g.node(id).op {
            HloOp::Constant(t) if t.rank() == 0 => Some(t.scalar_value()),
            _ => None,
        }
    };
    let mut replace: HashMap<NodeId, NodeId> = HashMap::new();
    for i in 0..g.nodes.len() {
        let HloOp::Binary(b) = g.nodes[i].op else {
            continue;
        };
        let (l, r) = (g.nodes[i].inputs[0], g.nodes[i].inputs[1]);
        let (lc, rc) = (scalar_const(g, l), scalar_const(g, r));
        // Only valid when the surviving operand already has the output
        // shape (a scalar identity never changes the broadcast result).
        let this = NodeId(i as u32);
        let alias = |g: &HloGraph, keep: NodeId| g.node(keep).shape == g.node(this).shape;
        let target = match (b, lc, rc) {
            (Mul, _, Some(1.0))
            | (Add, _, Some(0.0))
            | (Sub, _, Some(0.0))
            | (Div, _, Some(1.0)) => Some(l),
            (Mul, Some(1.0), _) | (Add, Some(0.0), _) => Some(r),
            _ => None,
        };
        if let Some(keep) = target {
            if alias(g, keep) {
                replace.insert(this, keep);
            }
        }
    }
    let changed = !replace.is_empty();
    apply_replacements(g, &replace);
    changed
}

/// Elementwise fusion: maximal groups of same-shape elementwise nodes whose
/// interior members have no consumers outside the group collapse into one
/// [`HloOp::Fused`] kernel. Rank-0 constants feeding a group become
/// immediates.
pub fn fuse_elementwise(g: &mut HloGraph) -> bool {
    // Consumers of each node.
    let mut consumers: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (i, node) in g.nodes.iter().enumerate() {
        for &input in &node.inputs {
            consumers.entry(input).or_default().push(NodeId(i as u32));
        }
    }
    let output_set: HashSet<NodeId> = g.outputs.iter().copied().collect();

    let is_scalar_const =
        |g: &HloGraph, id: NodeId| matches!(&g.node(id).op, HloOp::Constant(t) if t.rank() == 0);
    // A node can sit inside a fused kernel of `shape` only if every input
    // edge indexes elementwise: same shape, a scalar immediate, or a
    // trailing-suffix broadcast (e.g. a `[C]` bias against `[N,H,W,C]`),
    // which the fused executor indexes as `e % len`.
    let inputs_fusable = |g: &HloGraph, id: NodeId, shape: &s4tf_tensor::Shape| {
        g.node(id).inputs.iter().all(|&i| {
            let in_shape = &g.node(i).shape;
            in_shape == shape
                || is_scalar_const(g, i)
                || crate::op::is_trailing_broadcast(in_shape, shape)
        })
    };

    // Build groups: walk roots from the end (consumers come after
    // producers in topological order).
    let mut assigned: HashSet<NodeId> = HashSet::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new(); // members, topo order
    for i in (0..g.nodes.len()).rev() {
        let root = NodeId(i as u32);
        if assigned.contains(&root) || !g.node(root).op.is_elementwise() {
            continue;
        }
        let shape = g.node(root).shape.clone();
        if !inputs_fusable(g, root, &shape) {
            continue;
        }
        let mut group: HashSet<NodeId> = HashSet::from([root]);
        // Grow towards producers until stable.
        loop {
            let mut grew = false;
            let members: Vec<NodeId> = group.iter().copied().collect();
            for m in members {
                for &input in &g.node(m).inputs {
                    if group.contains(&input) || assigned.contains(&input) {
                        continue;
                    }
                    let n = g.node(input);
                    let fusable = n.op.is_elementwise()
                        && n.shape == shape
                        && inputs_fusable(g, input, &shape)
                        && !output_set.contains(&input)
                        && consumers
                            .get(&input)
                            .map(|cs| cs.iter().all(|c| group.contains(c)))
                            .unwrap_or(false);
                    if fusable {
                        group.insert(input);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if group.len() >= 2 {
            let mut members: Vec<NodeId> = group.iter().copied().collect();
            members.sort(); // topological within the graph
            assigned.extend(&members);
            groups.push(members);
        }
    }
    if groups.is_empty() {
        return false;
    }

    // Root (last member) of each group, and membership lookup.
    let mut group_of: HashMap<NodeId, usize> = HashMap::new();
    for (gi, members) in groups.iter().enumerate() {
        for &m in members {
            group_of.insert(m, gi);
        }
    }

    // Rebuild the graph.
    let old_nodes = std::mem::take(&mut g.nodes);
    let old_outputs = std::mem::take(&mut g.outputs);
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut emitted_groups: HashSet<usize> = HashSet::new();

    for (i, node) in old_nodes.iter().enumerate() {
        let old_id = NodeId(i as u32);
        match group_of.get(&old_id) {
            None => {
                let mut n = node.clone();
                for input in &mut n.inputs {
                    *input = remap[input];
                }
                g.nodes.push(n);
                remap.insert(old_id, NodeId(g.nodes.len() as u32 - 1));
            }
            Some(&gi) => {
                let members = &groups[gi];
                let root = *members.last().expect("non-empty group");
                if old_id != root {
                    continue; // interior nodes emit with the root
                }
                debug_assert!(emitted_groups.insert(gi));
                // Kernel inputs: external edges; rank-0 constants inline.
                let mut kernel_inputs: Vec<NodeId> = Vec::new(); // old ids
                let mut insts: Vec<FusedInst> = Vec::new();
                let mut reg_of: HashMap<NodeId, usize> = HashMap::new();
                let member_set: HashSet<NodeId> = members.iter().copied().collect();
                for &m in members {
                    let mnode = &old_nodes[m.0 as usize];
                    let arg_reg = |input: NodeId,
                                   insts: &mut Vec<FusedInst>,
                                   kernel_inputs: &mut Vec<NodeId>,
                                   reg_of: &mut HashMap<NodeId, usize>|
                     -> usize {
                        if member_set.contains(&input) {
                            return reg_of[&input];
                        }
                        if let Some(r) = reg_of.get(&input) {
                            return *r;
                        }
                        let inst = match &old_nodes[input.0 as usize].op {
                            HloOp::Constant(t) if t.rank() == 0 => FusedInst::Imm(t.scalar_value()),
                            _ => {
                                let pos = kernel_inputs
                                    .iter()
                                    .position(|&k| k == input)
                                    .unwrap_or_else(|| {
                                        kernel_inputs.push(input);
                                        kernel_inputs.len() - 1
                                    });
                                FusedInst::Input(pos)
                            }
                        };
                        insts.push(inst);
                        let r = insts.len() - 1;
                        reg_of.insert(input, r);
                        r
                    };
                    let inst = match &mnode.op {
                        HloOp::Unary(u) => {
                            let a = arg_reg(
                                mnode.inputs[0],
                                &mut insts,
                                &mut kernel_inputs,
                                &mut reg_of,
                            );
                            FusedInst::Unary(*u, a)
                        }
                        HloOp::Binary(b) => {
                            let a = arg_reg(
                                mnode.inputs[0],
                                &mut insts,
                                &mut kernel_inputs,
                                &mut reg_of,
                            );
                            let c = arg_reg(
                                mnode.inputs[1],
                                &mut insts,
                                &mut kernel_inputs,
                                &mut reg_of,
                            );
                            FusedInst::Binary(*b, a, c)
                        }
                        _ => unreachable!("groups contain only elementwise ops"),
                    };
                    insts.push(inst);
                    reg_of.insert(m, insts.len() - 1);
                }
                let n_inputs = kernel_inputs.len();
                let inputs: Vec<NodeId> = kernel_inputs.iter().map(|k| remap[k]).collect();
                let shape = old_nodes[root.0 as usize].shape.clone();
                g.nodes.push(HloNode {
                    op: HloOp::Fused { insts, n_inputs },
                    inputs,
                    shape,
                });
                remap.insert(root, NodeId(g.nodes.len() as u32 - 1));
            }
        }
    }
    g.outputs = old_outputs.iter().map(|o| remap[o]).collect();
    true
}

/// Removes nodes unreachable from the outputs, compacting ids.
pub fn dce(g: &mut HloGraph) -> bool {
    let mut live: HashSet<NodeId> = HashSet::new();
    let mut work: Vec<NodeId> = g.outputs.clone();
    while let Some(id) = work.pop() {
        if !live.insert(id) {
            continue;
        }
        work.extend(g.node(id).inputs.iter().copied());
    }
    if live.len() == g.nodes.len() {
        return false;
    }
    let old_nodes = std::mem::take(&mut g.nodes);
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut n_params = 0usize;
    for (i, node) in old_nodes.into_iter().enumerate() {
        let old_id = NodeId(i as u32);
        if !live.contains(&old_id) {
            continue;
        }
        if matches!(node.op, HloOp::Parameter(_)) {
            n_params += 1;
        }
        let mut n = node;
        for input in &mut n.inputs {
            *input = remap[input];
        }
        g.nodes.push(n);
        remap.insert(old_id, NodeId(g.nodes.len() as u32 - 1));
    }
    // Dead parameters keep their indices (callers still pass them); the
    // parameter count is the max index + 1 of surviving parameters, but
    // the runtime supplies all original parameters, so keep n_params as
    // the original count.
    let _ = n_params;
    g.outputs = g.outputs.iter().map(|o| remap[o]).collect();
    true
}

// ------------------------------------------------------- memory planning

/// A buffer-assignment plan computed once at compile time (nodes execute
/// in topological order, so liveness is a static property of the graph):
/// which values die after each step, and which steps may write their
/// output into a dying operand's buffer.
///
/// The executor applies the plan only when the runtime conditions hold
/// (planner enabled, operand storage uniquely owned) — results are
/// bit-identical with the plan on or off.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlan {
    /// `drop_after[i]`: node ids whose value is dead once node `i` has
    /// executed (their last use was node `i`, or they are never used and
    /// `i` created them). Graph outputs never appear.
    pub drop_after: Vec<Vec<u32>>,
    /// `inplace[i]`: operand *position* of a same-shaped input that dies
    /// at node `i`, for ops whose kernel can run in place (elementwise
    /// unary/binary and fused programs). `None` when no operand
    /// qualifies statically; the executor still re-checks buffer
    /// uniqueness at run time.
    pub inplace: Vec<Option<usize>>,
    /// Peak live bytes the liveness schedule predicts for one execution:
    /// each node's output counts from its step until its `drop_after`
    /// step (out-of-place model, f32 elements). Planned, not measured —
    /// the planner's budget, compared against pool/live gauges at run
    /// time.
    pub planned_bytes: u64,
}

impl MemoryPlan {
    /// Number of in-place-eligible steps — surfaced in tests and stats.
    pub fn inplace_count(&self) -> usize {
        self.inplace.iter().filter(|p| p.is_some()).count()
    }
}

/// Computes per-node last-use liveness and in-place eligibility.
///
/// In-place eligibility is deliberately conservative:
/// * **Unary**: the sole operand dies here (unary preserves shape).
/// * **Binary**: both operands have the node's exact shape (no
///   broadcasting) and are *distinct* nodes, and the chosen one dies
///   here. Position 0 writes through `zip_apply_assign`, position 1
///   through `zip_apply_assign_rev`, preserving operand order.
/// * **Fused**: some *full-shape* input dies here. The interpreter reads
///   each chunk of a full-shape input before writing that chunk of the
///   output, so aliasing the two is safe; modulo-broadcast inputs are
///   never aliased (they are smaller, hence a different buffer).
pub fn plan_memory(g: &HloGraph) -> MemoryPlan {
    let n = g.nodes.len();
    let mut last_use: Vec<Option<usize>> = vec![None; n];
    for (i, node) in g.nodes.iter().enumerate() {
        for inp in &node.inputs {
            last_use[inp.0 as usize] = Some(i);
        }
    }
    let outputs: HashSet<u32> = g.outputs.iter().map(|o| o.0).collect();

    let mut drop_after: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (j, lu) in last_use.iter().enumerate() {
        if outputs.contains(&(j as u32)) {
            continue;
        }
        // Unused non-output values (possible without DCE) die immediately.
        let at = lu.unwrap_or(j);
        drop_after[at].push(j as u32);
    }

    let mut inplace: Vec<Option<usize>> = vec![None; n];
    for (i, node) in g.nodes.iter().enumerate() {
        let dies_here = |id: NodeId| {
            last_use[id.0 as usize] == Some(i)
                && !outputs.contains(&id.0)
                && !matches!(g.node(id).op, HloOp::Constant(_))
        };
        let full_shape = |id: NodeId| g.node(id).shape == node.shape;
        inplace[i] = match &node.op {
            HloOp::Unary(_) => {
                let a = node.inputs[0];
                (full_shape(a) && dies_here(a)).then_some(0)
            }
            HloOp::Binary(_) => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                if a == b || !full_shape(a) || !full_shape(b) {
                    None
                } else if dies_here(a) {
                    Some(0)
                } else if dies_here(b) {
                    Some(1)
                } else {
                    None
                }
            }
            HloOp::Fused { insts, .. } => {
                let qualifies = |id: NodeId| full_shape(id) && dies_here(id);
                // The accumulator pattern `p ← p ⊕ f(…)` (the fused
                // optimizer update) has the updated value as the lhs of
                // the root instruction: prefer it, so `param_new` writes
                // into the donated `param_old` buffer. Fall back to a
                // dying parameter, then to any dying full-shape input.
                let root_lhs = match insts.last() {
                    Some(FusedInst::Binary(_, a, _)) => match insts.get(*a) {
                        Some(FusedInst::Input(pos)) => Some(*pos),
                        _ => None,
                    },
                    _ => None,
                };
                root_lhs
                    .filter(|&pos| pos < node.inputs.len() && qualifies(node.inputs[pos]))
                    .or_else(|| {
                        node.inputs.iter().position(|&id| {
                            qualifies(id) && matches!(g.node(id).op, HloOp::Parameter(_))
                        })
                    })
                    .or_else(|| node.inputs.iter().position(|&id| qualifies(id)))
            }
            _ => None,
        };
    }
    // The schedule's analytic memory budget: replay the liveness walk,
    // charging each output at creation and crediting it at its drop step.
    // Graph outputs never drop, so they stay charged through the end.
    let bytes_of = |j: usize| (g.nodes[j].shape.num_elements() * std::mem::size_of::<f32>()) as u64;
    let mut live = 0u64;
    let mut planned_bytes = 0u64;
    for (i, drops) in drop_after.iter().enumerate() {
        live += bytes_of(i);
        planned_bytes = planned_bytes.max(live);
        for &dead in drops {
            live -= bytes_of(dead as usize);
        }
    }

    MemoryPlan {
        drop_after,
        inplace,
        planned_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{compile_unoptimized, Executable};
    use crate::op::{ElemBinary, ElemUnary};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_equivalent(g: &HloGraph, opt: &HloGraph, param_dims: &[&[usize]]) {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let params: Vec<Tensor<f32>> = param_dims
            .iter()
            .map(|d| Tensor::<f32>::randn(d, &mut rng))
            .collect();
        let refs: Vec<&Tensor<f32>> = params.iter().collect();
        let a = compile_unoptimized(g).run(&refs);
        let b = Executable::run(&compile_unoptimized(opt), &refs);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(x.allclose(y, 1e-5), "pass changed semantics");
        }
    }

    #[test]
    fn constant_fold_folds_scalar_math() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[3]);
        let a = g.constant(Tensor::scalar(2.0));
        let b = g.constant(Tensor::scalar(3.0));
        let c = g.binary(ElemBinary::Mul, a, b);
        let y = g.binary(ElemBinary::Add, x, c);
        g.mark_output(y);
        let mut opt = g.clone();
        assert!(constant_fold(&mut opt));
        assert!(matches!(&opt.node(NodeId(3)).op, HloOp::Constant(t) if t.scalar_value() == 6.0));
        assert_equivalent(&g, &opt, &[&[3]]);
    }

    #[test]
    fn cse_merges_identical_subgraphs() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let a = g.unary(ElemUnary::Exp, x);
        let b = g.unary(ElemUnary::Exp, x);
        let s = g.binary(ElemBinary::Add, a, b);
        g.mark_output(s);
        let mut opt = g.clone();
        assert!(cse(&mut opt));
        dce(&mut opt);
        assert_eq!(opt.len(), 3, "one exp remains");
        assert_equivalent(&g, &opt, &[&[4]]);
    }

    #[test]
    fn simplify_identities() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let one = g.constant(Tensor::scalar(1.0));
        let zero = g.constant(Tensor::scalar(0.0));
        let a = g.binary(ElemBinary::Mul, x, one);
        let b = g.binary(ElemBinary::Add, a, zero);
        let c = g.binary(ElemBinary::Div, b, one);
        g.mark_output(c);
        let mut opt = g.clone();
        assert!(algebraic_simplify(&mut opt));
        dce(&mut opt);
        assert_eq!(opt.len(), 1, "everything folds to the parameter");
        assert_equivalent(&g, &opt, &[&[4]]);
    }

    #[test]
    fn fusion_groups_chains() {
        // relu(x·2 + 1): 3 elementwise → 1 fused kernel.
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[8]);
        let two = g.constant(Tensor::scalar(2.0));
        let one = g.constant(Tensor::scalar(1.0));
        let m = g.binary(ElemBinary::Mul, x, two);
        let a = g.binary(ElemBinary::Add, m, one);
        let r = g.unary(ElemUnary::Relu, a);
        g.mark_output(r);
        let mut opt = g.clone();
        assert!(fuse_elementwise(&mut opt));
        dce(&mut opt);
        let fused: Vec<_> = opt
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Fused { .. }))
            .collect();
        assert_eq!(fused.len(), 1);
        assert_equivalent(&g, &opt, &[&[8]]);
    }

    #[test]
    fn fusion_respects_external_consumers() {
        // y = exp(x); out1 = y + 1; out2 = y·2 — y has two consumers in
        // different groups and is itself an output: it must not fuse away.
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let y = g.unary(ElemUnary::Exp, x);
        let one = g.constant(Tensor::scalar(1.0));
        let two = g.constant(Tensor::scalar(2.0));
        let o1 = g.binary(ElemBinary::Add, y, one);
        let o2 = g.binary(ElemBinary::Mul, y, two);
        g.mark_output(y);
        g.mark_output(o1);
        g.mark_output(o2);
        let mut opt = g.clone();
        fuse_elementwise(&mut opt);
        dce(&mut opt);
        assert_equivalent(&g, &opt, &[&[4]]);
    }

    #[test]
    fn fusion_handles_trailing_broadcast_bias() {
        // relu(x + bias) with a [3] bias against [2,3]: a trailing-suffix
        // broadcast, fusable via modulo indexing (the conv-bias pattern).
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 3]);
        let b = g.parameter(1, &[3]);
        let s = g.binary(ElemBinary::Add, x, b);
        let r = g.unary(ElemUnary::Relu, s);
        g.mark_output(r);
        let mut opt = g.clone();
        assert!(fuse_elementwise(&mut opt));
        dce(&mut opt);
        assert_eq!(
            opt.nodes
                .iter()
                .filter(|n| matches!(n.op, HloOp::Fused { .. }))
                .count(),
            1
        );
        assert_equivalent(&g, &opt, &[&[2, 3], &[3]]);
    }

    #[test]
    fn fusion_skips_interior_broadcast_shapes() {
        // A [2,1] column broadcast is NOT a trailing suffix of [2,3]:
        // modulo indexing would be wrong, so it must not fuse.
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 3]);
        let col = g.parameter(1, &[2, 1]);
        let s = g.binary(ElemBinary::Add, x, col);
        let r = g.unary(ElemUnary::Relu, s);
        g.mark_output(r);
        let mut opt = g.clone();
        fuse_elementwise(&mut opt);
        dce(&mut opt);
        assert!(
            !opt.nodes
                .iter()
                .any(|n| matches!(&n.op, HloOp::Fused { n_inputs, .. } if *n_inputs > 1)),
            "interior broadcasts must stay out of fused kernels"
        );
        assert_equivalent(&g, &opt, &[&[2, 3], &[2, 1]]);
    }

    #[test]
    fn fusion_batchnorm_affine_pattern() {
        // (x − mean)/std·γ + β over NHWC with [C]-shaped statistics: the
        // whole affine chain fuses into one kernel.
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 4, 4, 3]);
        let mean = g.parameter(1, &[3]);
        let std = g.parameter(2, &[3]);
        let gamma = g.parameter(3, &[3]);
        let beta = g.parameter(4, &[3]);
        let c = g.binary(ElemBinary::Sub, x, mean);
        let h = g.binary(ElemBinary::Div, c, std);
        let s = g.binary(ElemBinary::Mul, h, gamma);
        let y = g.binary(ElemBinary::Add, s, beta);
        g.mark_output(y);
        let mut opt = g.clone();
        assert!(fuse_elementwise(&mut opt));
        dce(&mut opt);
        let fused: Vec<_> = opt
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Fused { .. }))
            .collect();
        assert_eq!(fused.len(), 1, "one fused kernel for the whole affine");
        assert_equivalent(&g, &opt, &[&[2, 4, 4, 3], &[3], &[3], &[3], &[3]]);
    }

    #[test]
    fn dce_removes_dead_branches() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let dead = g.unary(ElemUnary::Exp, x);
        let _dead2 = g.unary(ElemUnary::Neg, dead);
        let live = g.unary(ElemUnary::Relu, x);
        g.mark_output(live);
        let mut opt = g.clone();
        assert!(dce(&mut opt));
        assert_eq!(opt.len(), 2);
        assert_equivalent(&g, &opt, &[&[4]]);
    }

    #[test]
    fn full_pipeline_on_composite_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[5, 4]);
        let w = g.parameter(1, &[4, 3]);
        let mm = g.add(
            HloOp::MatMul {
                t_lhs: false,
                t_rhs: false,
            },
            &[x, w],
        );
        let one = g.constant(Tensor::scalar(1.0));
        let zero = g.constant(Tensor::scalar(0.0));
        let a = g.binary(ElemBinary::Mul, mm, one); // identity
        let b = g.binary(ElemBinary::Add, a, zero); // identity
        let c = g.unary(ElemUnary::Tanh, b);
        let d = g.unary(ElemUnary::Square, c);
        let e = g.binary(ElemBinary::Add, c, d); // fusable chain
        g.mark_output(e);
        let mut opt = g.clone();
        optimize(&mut opt);
        assert!(opt.len() < g.len());
        let xs = Tensor::<f32>::randn(&[5, 4], &mut rng);
        let ws = Tensor::<f32>::randn(&[4, 3], &mut rng);
        let before = compile_unoptimized(&g).run(&[&xs, &ws]);
        let after = compile_unoptimized(&opt).run(&[&xs, &ws]);
        assert!(before[0].allclose(&after[0], 1e-5));
    }

    #[test]
    fn plan_last_use_on_diamond() {
        // x → (exp, neg) → add: both branches die at the join; the
        // parameter's last use is the *later* branch.
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let a = g.unary(ElemUnary::Exp, x);
        let b = g.unary(ElemUnary::Neg, x);
        let s = g.binary(ElemBinary::Add, a, b);
        g.mark_output(s);
        let plan = plan_memory(&g);
        assert_eq!(plan.drop_after[b.0 as usize], vec![x.0], "x dies at neg");
        let mut at_join = plan.drop_after[s.0 as usize].clone();
        at_join.sort_unstable();
        assert_eq!(at_join, vec![a.0, b.0], "both branches die at the join");
        assert!(
            plan.drop_after[s.0 as usize + 1..]
                .iter()
                .all(Vec::is_empty),
            "the output is never dropped"
        );
        // The join may overwrite either dying same-shaped operand.
        assert_eq!(plan.inplace[s.0 as usize], Some(0));
    }

    #[test]
    fn plan_last_use_on_fan_out() {
        // One value consumed by three users: it dies only at the last.
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let v = g.unary(ElemUnary::Square, x);
        let u1 = g.unary(ElemUnary::Exp, v);
        let u2 = g.unary(ElemUnary::Neg, v);
        let u3 = g.unary(ElemUnary::Relu, v);
        let s1 = g.binary(ElemBinary::Add, u1, u2);
        let s2 = g.binary(ElemBinary::Add, s1, u3);
        g.mark_output(s2);
        let plan = plan_memory(&g);
        assert!(!plan.drop_after[u1.0 as usize].contains(&v.0));
        assert!(!plan.drop_after[u2.0 as usize].contains(&v.0));
        assert!(plan.drop_after[u3.0 as usize].contains(&v.0));
        // u1/u2 keep v alive, so they may not run in place on it…
        assert_eq!(plan.inplace[u1.0 as usize], None);
        assert_eq!(plan.inplace[u2.0 as usize], None);
        // …but v's final consumer may.
        assert_eq!(plan.inplace[u3.0 as usize], Some(0));
    }

    #[test]
    fn plan_never_drops_or_overwrites_outputs() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4]);
        let a = g.unary(ElemUnary::Exp, x);
        let b = g.unary(ElemUnary::Neg, a); // a is an output AND an operand
        g.mark_output(a);
        g.mark_output(b);
        let plan = plan_memory(&g);
        assert!(plan.drop_after.iter().all(|d| !d.contains(&a.0)));
        assert_eq!(
            plan.inplace[b.0 as usize], None,
            "an output operand must not be overwritten"
        );
    }

    #[test]
    fn plan_refuses_inplace_on_broadcast_or_self_pairs() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 3]);
        let bias = g.parameter(1, &[3]);
        let bc = g.binary(ElemBinary::Add, x, bias); // shapes differ
        let dbl = g.binary(ElemBinary::Add, bc, bc); // same node twice
        g.mark_output(dbl);
        let plan = plan_memory(&g);
        assert_eq!(plan.inplace[bc.0 as usize], None, "broadcast operand");
        assert_eq!(plan.inplace[dbl.0 as usize], None, "self-aliasing pair");
    }
}
