//! The HLO-like operation set and its shape inference.

use s4tf_tensor::{Padding, Shape, Tensor};

/// Elementwise unary operations (fusable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemUnary {
    /// `-x`
    Neg,
    /// `e^x`
    Exp,
    /// `ln x`
    Ln,
    /// `√x`
    Sqrt,
    /// `tanh x`
    Tanh,
    /// logistic sigmoid
    Sigmoid,
    /// `max(x, 0)`
    Relu,
    /// `x²`
    Square,
    /// `1/x`
    Recip,
}

impl ElemUnary {
    /// Applies the operation to one element.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ElemUnary::Neg => -x,
            ElemUnary::Exp => x.exp(),
            ElemUnary::Ln => x.ln(),
            ElemUnary::Sqrt => x.sqrt(),
            ElemUnary::Tanh => x.tanh(),
            ElemUnary::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ElemUnary::Relu => x.max(0.0),
            ElemUnary::Square => x * x,
            ElemUnary::Recip => 1.0 / x,
        }
    }

    /// `dst[i] = op(src[i])` over a chunk, with the opcode match hoisted
    /// out of the loop so each arm is a tight single-op loop the lane
    /// path can vectorize (the fused interpreter calls this inside
    /// `s4tf_tensor::simd::vectorize`; `inline(always)` keeps the loop
    /// bodies inside that target-feature frame).
    #[inline(always)]
    pub fn apply_slice(self, dst: &mut [f32], src: &[f32]) {
        #[inline(always)]
        fn map1(dst: &mut [f32], src: &[f32], f: impl Fn(f32) -> f32) {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = f(s);
            }
        }
        match self {
            ElemUnary::Neg => map1(dst, src, |x| -x),
            ElemUnary::Exp => map1(dst, src, f32::exp),
            ElemUnary::Ln => map1(dst, src, f32::ln),
            ElemUnary::Sqrt => map1(dst, src, f32::sqrt),
            ElemUnary::Tanh => map1(dst, src, f32::tanh),
            ElemUnary::Sigmoid => map1(dst, src, |x| 1.0 / (1.0 + (-x).exp())),
            ElemUnary::Relu => map1(dst, src, |x| x.max(0.0)),
            ElemUnary::Square => map1(dst, src, |x| x * x),
            ElemUnary::Recip => map1(dst, src, |x| 1.0 / x),
        }
    }
}

/// Elementwise binary operations (fusable when shapes agree; broadcast
/// otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemBinary {
    /// `a + b`
    Add,
    /// `a − b`
    Sub,
    /// `a · b`
    Mul,
    /// `a / b`
    Div,
    /// `max(a, b)`
    Max,
    /// `min(a, b)`
    Min,
    /// `1.0 if a > b else 0.0`
    GreaterMask,
    /// `a^b`
    Pow,
}

impl ElemBinary {
    /// Applies the operation to one element pair.
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            ElemBinary::Add => a + b,
            ElemBinary::Sub => a - b,
            ElemBinary::Mul => a * b,
            ElemBinary::Div => a / b,
            ElemBinary::Max => a.max(b),
            ElemBinary::Min => a.min(b),
            ElemBinary::GreaterMask => {
                if a > b {
                    1.0
                } else {
                    0.0
                }
            }
            ElemBinary::Pow => a.powf(b),
        }
    }

    /// `dst[i] = op(lhs[i], rhs[i])` over a chunk; see
    /// [`ElemUnary::apply_slice`] for why the match is hoisted.
    #[inline(always)]
    pub fn apply_slice(self, dst: &mut [f32], lhs: &[f32], rhs: &[f32]) {
        #[inline(always)]
        fn map2(dst: &mut [f32], lhs: &[f32], rhs: &[f32], f: impl Fn(f32, f32) -> f32) {
            for ((d, &a), &b) in dst.iter_mut().zip(lhs).zip(rhs) {
                *d = f(a, b);
            }
        }
        match self {
            ElemBinary::Add => map2(dst, lhs, rhs, |a, b| a + b),
            ElemBinary::Sub => map2(dst, lhs, rhs, |a, b| a - b),
            ElemBinary::Mul => map2(dst, lhs, rhs, |a, b| a * b),
            ElemBinary::Div => map2(dst, lhs, rhs, |a, b| a / b),
            ElemBinary::Max => map2(dst, lhs, rhs, f32::max),
            ElemBinary::Min => map2(dst, lhs, rhs, f32::min),
            ElemBinary::GreaterMask => map2(dst, lhs, rhs, |a, b| if a > b { 1.0 } else { 0.0 }),
            ElemBinary::Pow => map2(dst, lhs, rhs, f32::powf),
        }
    }
}

/// Reduction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceKind {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Maximum.
    Max,
}

/// True if `input` broadcasts to `out` as a *trailing suffix*: after
/// stripping leading extent-1 dims, `input`'s dims equal the last dims of
/// `out`. Such an input can be indexed inside a fused elementwise kernel as
/// `flat_index % input_len` (e.g. a `[C]` bias against `[N,H,W,C]`).
pub fn is_trailing_broadcast(input: &Shape, out: &Shape) -> bool {
    let dims: Vec<usize> = input
        .dims()
        .iter()
        .copied()
        .skip_while(|&d| d == 1)
        .collect();
    if dims.len() > out.rank() || input == out {
        return false;
    }
    dims.iter()
        .rev()
        .zip(out.dims().iter().rev())
        .all(|(a, b)| a == b)
}

/// One instruction of a fused elementwise kernel (register machine over
/// per-element values).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedInst {
    /// Load fused-kernel input `i` at the current element.
    Input(usize),
    /// A scalar immediate.
    Imm(f32),
    /// Unary over a register.
    Unary(ElemUnary, usize),
    /// Binary over two registers.
    Binary(ElemBinary, usize, usize),
}

/// One HLO operation. Operands are positional graph edges; static
/// configuration lives in the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum HloOp {
    /// The `i`-th runtime input.
    Parameter(usize),
    /// An embedded constant.
    Constant(Tensor<f32>),
    /// Elementwise unary.
    Unary(ElemUnary),
    /// Elementwise binary with NumPy broadcasting.
    Binary(ElemBinary),
    /// Matrix product, with optional implicit transposes.
    MatMul {
        /// Transpose the left operand.
        t_lhs: bool,
        /// Transpose the right operand.
        t_rhs: bool,
    },
    /// 2-D convolution (operands: input, filter).
    Conv2D {
        /// Spatial strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Gradient of conv2d w.r.t. input (operands: filter, grad_out).
    Conv2DBackwardInput {
        /// The forward input's dims.
        input_dims: Vec<usize>,
        /// Spatial strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Gradient of conv2d w.r.t. filter (operands: input, grad_out).
    Conv2DBackwardFilter {
        /// The filter's dims.
        filter_dims: Vec<usize>,
        /// Spatial strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Average pooling (operand: input).
    AvgPool {
        /// Window.
        pool: (usize, usize),
        /// Strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Gradient of average pooling (operands: input, grad_out).
    AvgPoolGrad {
        /// Window.
        pool: (usize, usize),
        /// Strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Max pooling (operand: input).
    MaxPool {
        /// Window.
        pool: (usize, usize),
        /// Strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Gradient of max pooling (operands: input, grad_out).
    MaxPoolGrad {
        /// Window.
        pool: (usize, usize),
        /// Strides.
        strides: (usize, usize),
        /// Padding strategy.
        padding: Padding,
    },
    /// Row gather (operands: table `[R, d…]`, indices `[B]` carried as a
    /// float tensor, rounded at execution) → `[B, d…]`. Indices are a
    /// runtime *parameter*, so per-batch index changes keep the trace
    /// fingerprint (and the program cache entry) stable.
    GatherRows,
    /// Gradient of [`HloOp::GatherRows`]: scatter-add (operands: indices
    /// `[B]`, grad `[B, d…]`) → `[table_rows, d…]`.
    GatherRowsGrad {
        /// Number of rows of the forward table.
        table_rows: usize,
    },
    /// Reduction over all elements (rank-0 result) or one axis.
    Reduce {
        /// Reduction kind.
        kind: ReduceKind,
        /// `None` = all elements; `Some(axis)` reduces one axis
        /// (not keeping it).
        axis: Option<usize>,
    },
    /// Shape change (same element count).
    Reshape(Vec<usize>),
    /// Dimension permutation.
    Transpose(Vec<usize>),
    /// Materialized broadcast to dims.
    Broadcast(Vec<usize>),
    /// Sum-reduce a gradient back to dims (inverse of broadcast).
    ReduceToShape(Vec<usize>),
    /// A fused elementwise kernel (created by the fusion pass; all inputs
    /// share the output shape or are scalars folded to immediates).
    Fused {
        /// The register program; the last instruction is the output.
        insts: Vec<FusedInst>,
        /// Number of kernel inputs.
        n_inputs: usize,
    },
}

impl HloOp {
    /// A short mnemonic for display/DOT.
    pub fn mnemonic(&self) -> String {
        match self {
            HloOp::Parameter(i) => format!("param{i}"),
            HloOp::Constant(t) => {
                if t.rank() == 0 {
                    format!("const {}", t.scalar_value())
                } else {
                    format!("const {}", t.shape())
                }
            }
            HloOp::Unary(u) => format!("{u:?}").to_lowercase(),
            HloOp::Binary(b) => format!("{b:?}").to_lowercase(),
            HloOp::MatMul { t_lhs, t_rhs } => match (t_lhs, t_rhs) {
                (false, false) => "matmul".into(),
                (true, false) => "matmul_tn".into(),
                (false, true) => "matmul_nt".into(),
                (true, true) => "matmul_tt".into(),
            },
            HloOp::Conv2D { .. } => "conv2d".into(),
            HloOp::Conv2DBackwardInput { .. } => "conv2d_bwd_input".into(),
            HloOp::Conv2DBackwardFilter { .. } => "conv2d_bwd_filter".into(),
            HloOp::AvgPool { .. } => "avg_pool".into(),
            HloOp::AvgPoolGrad { .. } => "avg_pool_grad".into(),
            HloOp::MaxPool { .. } => "max_pool".into(),
            HloOp::MaxPoolGrad { .. } => "max_pool_grad".into(),
            HloOp::GatherRows => "gather_rows".into(),
            HloOp::GatherRowsGrad { .. } => "gather_rows_grad".into(),
            HloOp::Reduce { kind, axis } => match axis {
                Some(a) => format!("{kind:?}[{a}]").to_lowercase(),
                None => format!("{kind:?}").to_lowercase(),
            },
            HloOp::Reshape(d) => format!("reshape{d:?}"),
            HloOp::Transpose(p) => format!("transpose{p:?}"),
            HloOp::Broadcast(d) => format!("broadcast{d:?}"),
            HloOp::ReduceToShape(d) => format!("reduce_to{d:?}"),
            HloOp::Fused { insts, .. } => {
                // Name the constituent ops, not just the count: error
                // attribution and trace dumps both read this.
                let ops: Vec<String> = insts
                    .iter()
                    .filter_map(|inst| match inst {
                        FusedInst::Unary(u, _) => Some(format!("{u:?}").to_lowercase()),
                        FusedInst::Binary(b, _, _) => Some(format!("{b:?}").to_lowercase()),
                        _ => None,
                    })
                    .collect();
                format!("fused[{}]", ops.join(","))
            }
        }
    }

    /// Coarse kernel-family name: the aggregation key for roofline and
    /// critical-path reporting (where `mnemonic()` would split hairs —
    /// and allocate — per instance).
    pub fn family(&self) -> &'static str {
        match self {
            HloOp::Parameter(_) => "param",
            HloOp::Constant(_) => "const",
            HloOp::Unary(_) | HloOp::Binary(_) => "elementwise",
            HloOp::MatMul { .. } => "matmul",
            HloOp::Conv2D { .. } => "conv2d",
            HloOp::Conv2DBackwardInput { .. } => "conv2d_bwd_input",
            HloOp::Conv2DBackwardFilter { .. } => "conv2d_bwd_filter",
            HloOp::AvgPool { .. } | HloOp::MaxPool { .. } => "pool",
            HloOp::AvgPoolGrad { .. } | HloOp::MaxPoolGrad { .. } => "pool_grad",
            HloOp::GatherRows => "gather",
            HloOp::GatherRowsGrad { .. } => "gather_grad",
            HloOp::Reduce { .. } | HloOp::ReduceToShape(_) => "reduce",
            HloOp::Reshape(_) | HloOp::Transpose(_) | HloOp::Broadcast(_) => "shape",
            HloOp::Fused { .. } => "fused",
        }
    }

    /// Infers the output shape from operand shapes.
    ///
    /// # Panics
    /// Panics on operand-count or shape mismatches — the graph builder
    /// surfaces these at trace-record time, mirroring how shape errors in
    /// the lazy backend appear when the op is recorded, not when the trace
    /// runs.
    pub fn infer_shape(&self, operands: &[&Shape]) -> Shape {
        let expect = |n: usize| {
            assert_eq!(
                operands.len(),
                n,
                "{} expects {n} operands, got {}",
                self.mnemonic(),
                operands.len()
            );
        };
        match self {
            HloOp::Parameter(_) | HloOp::Constant(_) => {
                unreachable!("leaf shapes are set at construction")
            }
            HloOp::Unary(_) => {
                expect(1);
                operands[0].clone()
            }
            HloOp::Binary(_) => {
                expect(2);
                Shape::broadcast(operands[0], operands[1]).unwrap_or_else(|e| panic!("{e}"))
            }
            HloOp::MatMul { t_lhs, t_rhs } => {
                expect(2);
                assert_eq!(operands[0].rank(), 2, "matmul lhs must be rank 2");
                assert_eq!(operands[1].rank(), 2, "matmul rhs must be rank 2");
                let (m, k1) = if *t_lhs {
                    (operands[0].dim(1), operands[0].dim(0))
                } else {
                    (operands[0].dim(0), operands[0].dim(1))
                };
                let (k2, n) = if *t_rhs {
                    (operands[1].dim(1), operands[1].dim(0))
                } else {
                    (operands[1].dim(0), operands[1].dim(1))
                };
                assert_eq!(k1, k2, "matmul inner dims differ");
                Shape::new(&[m, n])
            }
            HloOp::Conv2D { strides, padding } => {
                expect(2);
                let (i, f) = (operands[0], operands[1]);
                assert_eq!(i.rank(), 4, "conv2d input must be NHWC");
                assert_eq!(f.rank(), 4, "conv2d filter must be HWIO");
                assert_eq!(i.dim(3), f.dim(2), "conv2d channel mismatch");
                Shape::new(&[
                    i.dim(0),
                    padding.output_dim(i.dim(1), f.dim(0), strides.0),
                    padding.output_dim(i.dim(2), f.dim(1), strides.1),
                    f.dim(3),
                ])
            }
            HloOp::Conv2DBackwardInput { input_dims, .. } => {
                expect(2);
                Shape::new(input_dims)
            }
            HloOp::Conv2DBackwardFilter { filter_dims, .. } => {
                expect(2);
                Shape::new(filter_dims)
            }
            HloOp::AvgPool {
                pool,
                strides,
                padding,
            }
            | HloOp::MaxPool {
                pool,
                strides,
                padding,
            } => {
                expect(1);
                let i = operands[0];
                assert_eq!(i.rank(), 4, "pooling input must be NHWC");
                Shape::new(&[
                    i.dim(0),
                    padding.output_dim(i.dim(1), pool.0, strides.0),
                    padding.output_dim(i.dim(2), pool.1, strides.1),
                    i.dim(3),
                ])
            }
            HloOp::AvgPoolGrad { .. } | HloOp::MaxPoolGrad { .. } => {
                expect(2);
                operands[0].clone()
            }
            HloOp::GatherRows => {
                expect(2);
                let (table, indices) = (operands[0], operands[1]);
                assert!(table.rank() >= 1, "gather table must be rank >= 1");
                assert_eq!(indices.rank(), 1, "gather indices must be rank 1");
                let mut dims = vec![indices.dim(0)];
                dims.extend_from_slice(&table.dims()[1..]);
                Shape::new(&dims)
            }
            HloOp::GatherRowsGrad { table_rows } => {
                expect(2);
                let (indices, grad) = (operands[0], operands[1]);
                assert_eq!(indices.rank(), 1, "gather indices must be rank 1");
                assert_eq!(indices.dim(0), grad.dim(0), "one gradient row per index");
                let mut dims = vec![*table_rows];
                dims.extend_from_slice(&grad.dims()[1..]);
                Shape::new(&dims)
            }
            HloOp::Reduce { axis, .. } => {
                expect(1);
                match axis {
                    None => Shape::scalar(),
                    Some(a) => operands[0].removing(*a),
                }
            }
            HloOp::Reshape(dims) => {
                expect(1);
                let s = Shape::new(dims);
                assert_eq!(
                    s.num_elements(),
                    operands[0].num_elements(),
                    "reshape element count mismatch"
                );
                s
            }
            HloOp::Transpose(perm) => {
                expect(1);
                assert_eq!(perm.len(), operands[0].rank(), "transpose perm rank");
                Shape::new(&perm.iter().map(|&p| operands[0].dim(p)).collect::<Vec<_>>())
            }
            HloOp::Broadcast(dims) => {
                expect(1);
                let target = Shape::new(dims);
                let out = Shape::broadcast(operands[0], &target).unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(out, target, "operand does not broadcast to {target}");
                target
            }
            HloOp::ReduceToShape(dims) => {
                expect(1);
                Shape::new(dims)
            }
            HloOp::Fused { n_inputs, .. } => {
                expect(*n_inputs);
                operands[0].clone()
            }
        }
    }

    /// True if the op is a fusable elementwise operation.
    pub fn is_elementwise(&self) -> bool {
        matches!(self, HloOp::Unary(_) | HloOp::Binary(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_apply() {
        assert_eq!(ElemUnary::Relu.apply(-2.0), 0.0);
        assert_eq!(ElemUnary::Neg.apply(3.0), -3.0);
        assert_eq!(ElemUnary::Square.apply(3.0), 9.0);
        assert_eq!(ElemUnary::Recip.apply(4.0), 0.25);
        assert_eq!(ElemBinary::Add.apply(1.0, 2.0), 3.0);
        assert_eq!(ElemBinary::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(ElemBinary::GreaterMask.apply(3.0, 2.0), 1.0);
        assert_eq!(ElemBinary::GreaterMask.apply(1.0, 2.0), 0.0);
        assert_eq!(ElemBinary::Pow.apply(2.0, 3.0), 8.0);
    }

    #[test]
    fn shape_inference_elementwise() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::new(&[3]);
        assert_eq!(HloOp::Unary(ElemUnary::Exp).infer_shape(&[&a]), a);
        assert_eq!(HloOp::Binary(ElemBinary::Add).infer_shape(&[&a, &b]), a);
    }

    #[test]
    fn shape_inference_matmul_variants() {
        let a = Shape::new(&[5, 3]);
        let b = Shape::new(&[3, 7]);
        let mm = |tl, tr| HloOp::MatMul {
            t_lhs: tl,
            t_rhs: tr,
        };
        assert_eq!(mm(false, false).infer_shape(&[&a, &b]), Shape::new(&[5, 7]));
        assert_eq!(
            mm(true, false).infer_shape(&[&Shape::new(&[3, 5]), &b]),
            Shape::new(&[5, 7])
        );
        assert_eq!(
            mm(false, true).infer_shape(&[&a, &Shape::new(&[7, 3])]),
            Shape::new(&[5, 7])
        );
    }

    #[test]
    fn shape_inference_conv_and_pool() {
        let i = Shape::new(&[2, 28, 28, 1]);
        let f = Shape::new(&[5, 5, 1, 6]);
        let conv = HloOp::Conv2D {
            strides: (1, 1),
            padding: Padding::Same,
        };
        assert_eq!(conv.infer_shape(&[&i, &f]), Shape::new(&[2, 28, 28, 6]));
        let pool = HloOp::AvgPool {
            pool: (2, 2),
            strides: (2, 2),
            padding: Padding::Valid,
        };
        let o = Shape::new(&[2, 28, 28, 6]);
        assert_eq!(pool.infer_shape(&[&o]), Shape::new(&[2, 14, 14, 6]));
    }

    #[test]
    fn shape_inference_reduce_and_shapes() {
        let a = Shape::new(&[2, 3, 4]);
        assert_eq!(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: None
            }
            .infer_shape(&[&a]),
            Shape::scalar()
        );
        assert_eq!(
            HloOp::Reduce {
                kind: ReduceKind::Max,
                axis: Some(1)
            }
            .infer_shape(&[&a]),
            Shape::new(&[2, 4])
        );
        assert_eq!(
            HloOp::Reshape(vec![6, 4]).infer_shape(&[&a]),
            Shape::new(&[6, 4])
        );
        assert_eq!(
            HloOp::Transpose(vec![2, 0, 1]).infer_shape(&[&a]),
            Shape::new(&[4, 2, 3])
        );
        assert_eq!(
            HloOp::Broadcast(vec![5, 2, 3, 4]).infer_shape(&[&a]),
            Shape::new(&[5, 2, 3, 4])
        );
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_mismatch_panics() {
        HloOp::MatMul {
            t_lhs: false,
            t_rhs: false,
        }
        .infer_shape(&[&Shape::new(&[2, 3]), &Shape::new(&[4, 5])]);
    }

    #[test]
    fn trailing_broadcast_detection() {
        let s = |d: &[usize]| Shape::new(d);
        assert!(is_trailing_broadcast(&s(&[3]), &s(&[2, 3])));
        assert!(is_trailing_broadcast(&s(&[4, 3]), &s(&[2, 4, 3])));
        assert!(is_trailing_broadcast(&s(&[1, 1, 3]), &s(&[2, 4, 3])));
        assert!(is_trailing_broadcast(&Shape::scalar(), &s(&[2, 3])));
        // Same shape is not a *broadcast*.
        assert!(!is_trailing_broadcast(&s(&[2, 3]), &s(&[2, 3])));
        // Interior broadcasts are not suffixes.
        assert!(!is_trailing_broadcast(&s(&[2, 1]), &s(&[2, 3])));
        assert!(!is_trailing_broadcast(&s(&[4, 1, 3]), &s(&[4, 2, 3])));
        // Bigger than the output is never a suffix.
        assert!(!is_trailing_broadcast(&s(&[5, 2, 3]), &s(&[2, 3])));
    }

    #[test]
    fn mnemonics() {
        assert_eq!(HloOp::Parameter(2).mnemonic(), "param2");
        assert_eq!(HloOp::Unary(ElemUnary::Relu).mnemonic(), "relu");
        assert_eq!(
            HloOp::MatMul {
                t_lhs: true,
                t_rhs: false
            }
            .mnemonic(),
            "matmul_tn"
        );
        assert!(HloOp::Unary(ElemUnary::Exp).is_elementwise());
        assert!(!HloOp::Reshape(vec![1]).is_elementwise());
    }
}
