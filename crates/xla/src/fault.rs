//! Internal shim over `s4tf-fault`: with the `fault` feature this
//! re-exports the real injection layer; without it, the shared no-op
//! mirror (`crates/fault/src/noop_shim.rs`) is `include!`d, so injection
//! sites compile identically and cost nothing.

// Not every crate uses every hook; keep the shim surface uniform.
#![allow(dead_code, unused_imports, unused_macros)]

#[cfg(feature = "fault")]
pub(crate) use s4tf_fault::{backoff_delay, injection_enabled, should_inject, suppress, FaultSite};

#[cfg(not(feature = "fault"))]
include!("../../fault/src/noop_shim.rs");
