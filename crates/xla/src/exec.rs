//! Compilation and execution: an [`Executable`] is the optimized,
//! topologically ordered kernel plan for one trace.

use crate::fault;
use crate::graph::{HloGraph, NodeId};
use crate::op::{FusedInst, HloOp, ReduceKind};
use crate::passes;
use crate::prof;
use s4tf_tensor::{panic_message, RuntimeError, Tensor};

/// A compiled trace: the optimized graph plus execution bookkeeping.
#[derive(Debug, Clone)]
pub struct Executable {
    graph: HloGraph,
    /// Nodes that actually execute (excludes parameters/constants).
    kernel_count: usize,
}

/// Compiles a graph: runs the whole-program pass pipeline (constant
/// folding, CSE, algebraic simplification, fusion, DCE) and fixes the
/// execution plan.
pub fn compile(graph: &HloGraph) -> Executable {
    let mut span = prof::span("xla.compile");
    let mut g = graph.clone();
    passes::optimize(&mut g);
    let kernel_count = g
        .nodes
        .iter()
        .filter(|n| !matches!(n.op, HloOp::Parameter(_) | HloOp::Constant(_)))
        .count();
    if span.is_recording() {
        span.annotate_f64("nodes_in", graph.len() as f64);
        span.annotate_f64("kernels_out", kernel_count as f64);
        let fused = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Fused { .. }))
            .count();
        prof::counter_add("xla.fused_kernels", fused as u64);
    }
    Executable {
        graph: g,
        kernel_count,
    }
}

/// Compiles without optimization (for pass-effect comparisons).
pub fn compile_unoptimized(graph: &HloGraph) -> Executable {
    let g = graph.clone();
    let kernel_count = g
        .nodes
        .iter()
        .filter(|n| !matches!(n.op, HloOp::Parameter(_) | HloOp::Constant(_)))
        .count();
    Executable {
        graph: g,
        kernel_count,
    }
}

impl Executable {
    /// The optimized graph.
    pub fn graph(&self) -> &HloGraph {
        &self.graph
    }

    /// Number of kernel launches per run (post-fusion) — the metric the
    /// fusion experiments report.
    pub fn kernel_count(&self) -> usize {
        self.kernel_count
    }

    /// Executes the plan on runtime parameters.
    ///
    /// # Panics
    /// Panics if the number or shapes of `params` disagree with the trace.
    pub fn run(&self, params: &[&Tensor<f32>]) -> Vec<Tensor<f32>> {
        self.run_with_backend(params, "xla")
    }

    /// [`run`](Executable::run) with an explicit backend label for
    /// numerics-violation provenance: the lazy device executes through
    /// this plan too, and its violations should say `lazy`, not `xla`.
    ///
    /// # Panics
    /// Panics with the attributed [`RuntimeError`] if a kernel fails; the
    /// lazy device uses [`try_run_with_backend`](Executable::try_run_with_backend)
    /// to poison its handles instead.
    pub fn run_with_backend(
        &self,
        params: &[&Tensor<f32>],
        backend: &'static str,
    ) -> Vec<Tensor<f32>> {
        self.try_run_with_backend(params, backend)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes the plan, returning the *first* kernel failure (a panic
    /// caught on this node, or an injected fault) as an attributed error
    /// instead of unwinding. Nodes run in topological order, so the error
    /// names the op that introduced the failure, not a downstream consumer.
    ///
    /// # Panics
    /// Still panics on caller bugs: wrong parameter count or shapes
    /// (shape errors are synchronous, paper §4), and numerics-check
    /// panics in [`NumericsMode::Panic`](s4tf_diag::NumericsMode) — those
    /// are an explicitly requested abort, not a runtime fault.
    pub fn try_run_with_backend(
        &self,
        params: &[&Tensor<f32>],
        backend: &'static str,
    ) -> std::result::Result<Vec<Tensor<f32>>, RuntimeError> {
        let mut span = prof::span("xla.execute");
        if span.is_recording() {
            span.annotate_f64("kernels", self.kernel_count as f64);
            span.annotate_f64("threads_used", s4tf_threads::num_threads() as f64);
            prof::counter_add("xla.kernels_run", self.kernel_count as u64);
        }
        assert_eq!(
            params.len(),
            self.graph.n_params,
            "executable expects {} parameters, got {}",
            self.graph.n_params,
            params.len()
        );
        let mut values: Vec<Option<Tensor<f32>>> = vec![None; self.graph.nodes.len()];
        for (i, node) in self.graph.nodes.iter().enumerate() {
            let get = |id: NodeId| -> &Tensor<f32> {
                values[id.0 as usize]
                    .as_ref()
                    .expect("topological order guarantees operands are ready")
            };
            let out = match &node.op {
                HloOp::Parameter(p) => {
                    let t = params[*p];
                    assert_eq!(
                        t.shape(),
                        &node.shape,
                        "parameter {p} has shape {}, trace recorded {}",
                        t.shape(),
                        node.shape
                    );
                    t.clone()
                }
                HloOp::Constant(c) => c.clone(),
                op => {
                    let inputs: Vec<&Tensor<f32>> = node.inputs.iter().map(|&i| get(i)).collect();
                    let mnemonic = node.op.mnemonic();
                    if fault::should_inject(fault::FaultSite::Kernel) {
                        crate::diag::event!(
                            "fault.injected",
                            site = "kernel",
                            op = mnemonic,
                            backend = backend,
                        );
                        return Err(RuntimeError::injected(mnemonic, backend, "kernel")
                            .with_span(prof::current_span()));
                    }
                    // Only the kernel itself is caught: the numerics scan
                    // below stays outside so a Panic-mode abort unwinds to
                    // the caller as requested, not as a poisoned value.
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
                            // Fused kernels take their output shape from
                            // the plan (a trailing-broadcast input may tie
                            // the element count).
                            HloOp::Fused { insts, .. } => {
                                run_fused(insts, &inputs, node.shape.dims())
                            }
                            op => eval_op(op, &inputs),
                        }));
                    match result {
                        Ok(t) => t,
                        Err(payload) => {
                            let err =
                                RuntimeError::kernel(mnemonic, backend, panic_message(&*payload))
                                    .with_span(prof::current_span());
                            crate::diag::event!(
                                "fault.kernel_panic",
                                op = node.op.mnemonic(),
                                backend = backend,
                            );
                            return Err(err);
                        }
                    }
                }
            };
            debug_assert_eq!(
                out.shape(),
                &node.shape,
                "{} produced {}, inference said {}",
                node.op.mnemonic(),
                out.shape(),
                node.shape
            );
            // Nodes execute in topological order, so the first violating
            // node here is the op that *introduced* the NaN/Inf — not
            // whichever downstream op a caller observed it through.
            if crate::diag::numerics_enabled() {
                let _ = crate::diag::check_f32s(
                    &node.op.mnemonic(),
                    backend,
                    out.dims(),
                    out.as_slice(),
                    prof::current_span().as_deref(),
                );
            }
            values[i] = Some(out);
        }
        // Per-backend live-bytes breakdown, surfaced through the profile
        // gauge mechanism (report + Chrome-trace counter tracks).
        if prof::enabled() {
            let live = crate::diag::memory_stats().live_bytes as f64;
            prof::gauge_set("mem.live_bytes", live);
            prof::gauge_set(format!("mem.live_bytes.{backend}"), live);
        }
        Ok(self
            .graph
            .outputs
            .iter()
            .map(|o| values[o.0 as usize].clone().expect("outputs computed"))
            .collect())
    }
}

/// Evaluates one (non-leaf) operation on materialized tensors — the shared
/// kernel-dispatch used by the compiled executor here and by the naive and
/// eager devices in `s4tf-runtime` (all backends run the *same* kernels;
/// they differ only in execution strategy, §3).
///
/// # Panics
/// Panics on [`HloOp::Parameter`]/[`HloOp::Constant`] (leaves have no
/// kernel) and on operand-shape mismatches.
pub fn eval_op(op: &HloOp, inputs: &[&Tensor<f32>]) -> Tensor<f32> {
    match op {
        HloOp::Parameter(_) | HloOp::Constant(_) => {
            unreachable!("leaves are materialized by the caller")
        }
        HloOp::Unary(u) => {
            let u = *u;
            inputs[0].map(move |x| u.apply(x))
        }
        HloOp::Binary(b) => {
            let b = *b;
            apply_binary(inputs[0], inputs[1], move |a, c| b.apply(a, c))
        }
        HloOp::MatMul { t_lhs, t_rhs } => match (t_lhs, t_rhs) {
            (false, false) => inputs[0].matmul(inputs[1]),
            (true, false) => inputs[0].matmul_tn(inputs[1]),
            (false, true) => inputs[0].matmul_nt(inputs[1]),
            (true, true) => inputs[0].t().matmul(&inputs[1].t()),
        },
        HloOp::Conv2D { strides, padding } => inputs[0].conv2d(inputs[1], *strides, *padding),
        HloOp::Conv2DBackwardInput {
            input_dims,
            strides,
            padding,
        } => {
            let phantom = Tensor::zeros(input_dims);
            phantom.conv2d_backward_input(inputs[0], inputs[1], *strides, *padding)
        }
        HloOp::Conv2DBackwardFilter {
            filter_dims,
            strides,
            padding,
        } => inputs[0].conv2d_backward_filter(filter_dims, inputs[1], *strides, *padding),
        HloOp::AvgPool {
            pool,
            strides,
            padding,
        } => inputs[0].avg_pool2d(*pool, *strides, *padding),
        HloOp::AvgPoolGrad {
            pool,
            strides,
            padding,
        } => inputs[0].avg_pool2d_backward(inputs[1], *pool, *strides, *padding),
        HloOp::MaxPool {
            pool,
            strides,
            padding,
        } => inputs[0].max_pool2d(*pool, *strides, *padding),
        HloOp::MaxPoolGrad {
            pool,
            strides,
            padding,
        } => inputs[0].max_pool2d_backward(inputs[1], *pool, *strides, *padding),
        HloOp::GatherRows => {
            let idx: Vec<usize> = inputs[1]
                .as_slice()
                .iter()
                .map(|&x| x.round() as usize)
                .collect();
            inputs[0].gather_rows(&idx)
        }
        HloOp::GatherRowsGrad { table_rows } => {
            let idx: Vec<usize> = inputs[0]
                .as_slice()
                .iter()
                .map(|&x| x.round() as usize)
                .collect();
            let mut dims = vec![*table_rows];
            dims.extend_from_slice(&inputs[1].dims()[1..]);
            let mut out = Tensor::zeros(&dims);
            out.scatter_add_rows(&idx, inputs[1]);
            out
        }
        HloOp::Reduce { kind, axis } => {
            let x = inputs[0];
            match (kind, axis) {
                (ReduceKind::Sum, None) => x.sum(),
                (ReduceKind::Mean, None) => x.mean(),
                (ReduceKind::Max, None) => x.max(),
                (ReduceKind::Sum, Some(a)) => x.sum_axis(*a, false),
                (ReduceKind::Mean, Some(a)) => x.mean_axis(*a, false),
                (ReduceKind::Max, Some(a)) => x.max_axis(*a, false),
            }
        }
        HloOp::Reshape(dims) => inputs[0].reshape(dims),
        HloOp::Transpose(perm) => inputs[0].transpose(perm),
        HloOp::Broadcast(dims) => inputs[0].broadcast_to(dims),
        HloOp::ReduceToShape(dims) => inputs[0].reduce_to_shape(dims),
        HloOp::Fused { insts, .. } => {
            // Outside a compiled plan the output shape is the largest
            // input's (the fusion criteria guarantee one full-shape input).
            let dims = inputs
                .iter()
                .max_by_key(|t| t.num_elements())
                .map(|t| t.dims().to_vec())
                .unwrap_or_default();
            run_fused(insts, inputs, &dims)
        }
    }
}

pub(crate) fn apply_binary(
    a: &Tensor<f32>,
    b: &Tensor<f32>,
    f: impl Fn(f32, f32) -> f32 + Copy + Sync,
) -> Tensor<f32> {
    if a.shape() == b.shape() {
        a.zip_map(b, f)
    } else {
        let target =
            s4tf_tensor::Shape::broadcast(a.shape(), b.shape()).unwrap_or_else(|e| panic!("{e}"));
        let ab = a.broadcast_to(target.dims());
        let bb = b.broadcast_to(target.dims());
        ab.zip_map(&bb, f)
    }
}

/// Fused-kernel chunk width: big enough to amortize instruction dispatch,
/// small enough that the whole register file stays cache-resident.
const FUSED_CHUNK: usize = 512;

/// Executes a fused elementwise program: one pass over the elements, no
/// intermediate full-size buffers — the fusion payoff. Execution is a
/// *vectorized interpreter*: instructions dispatch once per chunk and then
/// run tight per-element loops, so dispatch cost is amortized 512×.
/// Inputs smaller than the output are trailing-suffix broadcasts, indexed
/// modulo their length (bias vectors, batch-norm scales, …).
/// Elements per pool task: several dispatch chunks, so a task amortizes
/// its private register-file allocation.
const FUSED_GRAIN: usize = 8 * FUSED_CHUNK;

fn run_fused(insts: &[FusedInst], inputs: &[&Tensor<f32>], out_dims: &[usize]) -> Tensor<f32> {
    let n: usize = out_dims.iter().product();
    let slices: Vec<&[f32]> = inputs.iter().map(|t| t.as_slice()).collect();
    let mut out = vec![0.0f32; n];
    // Outputs above the grain split across the thread pool; each task
    // interprets a disjoint output range with its own chunk-register
    // file, so per-element evaluation is unchanged by the split
    // (bit-identical for every thread count).
    s4tf_threads::parallel_chunks_mut(&mut out, 1, FUSED_GRAIN, |task_start, out_chunk| {
        // Chunk-wide registers, one row per instruction.
        let mut regs = vec![0.0f32; insts.len() * FUSED_CHUNK];
        let mut start = 0usize;
        while start < out_chunk.len() {
            let len = FUSED_CHUNK.min(out_chunk.len() - start);
            // Broadcast inputs index by *global* element position.
            let global = task_start + start;
            for (r, inst) in insts.iter().enumerate() {
                // Split the register file so an instruction can read earlier
                // rows while writing its own.
                let (read, write) = regs.split_at_mut(r * FUSED_CHUNK);
                let dst = &mut write[..len];
                match inst {
                    FusedInst::Input(i) => {
                        let src = slices[*i];
                        if src.len() == n {
                            dst.copy_from_slice(&src[global..global + len]);
                        } else {
                            let m = src.len();
                            for (j, d) in dst.iter_mut().enumerate() {
                                *d = src[(global + j) % m];
                            }
                        }
                    }
                    FusedInst::Imm(x) => dst.fill(*x),
                    FusedInst::Unary(u, a) => {
                        let src = &read[a * FUSED_CHUNK..a * FUSED_CHUNK + len];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = u.apply(s);
                        }
                    }
                    FusedInst::Binary(b, a, c) => {
                        let lhs = &read[a * FUSED_CHUNK..a * FUSED_CHUNK + len];
                        let rhs = &read[c * FUSED_CHUNK..c * FUSED_CHUNK + len];
                        for ((d, &x), &y) in dst.iter_mut().zip(lhs).zip(rhs) {
                            *d = b.apply(x, y);
                        }
                    }
                }
            }
            let last = (insts.len() - 1) * FUSED_CHUNK;
            out_chunk[start..start + len].copy_from_slice(&regs[last..last + len]);
            start += len;
        }
    });
    Tensor::from_vec(out, out_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ElemBinary, ElemUnary};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn runs_elementwise_chain() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[3]);
        let e = g.unary(ElemUnary::Exp, x);
        let s = g.binary(ElemBinary::Add, e, x);
        g.mark_output(s);
        for exe in [compile(&g), compile_unoptimized(&g)] {
            let out = exe.run(&[&t(&[0.0, 1.0, 2.0], &[3])]);
            for (i, &xv) in [0.0f32, 1.0, 2.0].iter().enumerate() {
                assert!((out[0].as_slice()[i] - (xv.exp() + xv)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn optimized_matches_unoptimized_on_mixed_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4, 5]);
        let w = g.parameter(1, &[5, 3]);
        let mm = g.add(
            HloOp::MatMul {
                t_lhs: false,
                t_rhs: false,
            },
            &[x, w],
        );
        let c = g.constant(Tensor::scalar(0.5));
        let scaled = g.binary(ElemBinary::Mul, mm, c);
        let r = g.unary(ElemUnary::Relu, scaled);
        let sum = g.add(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: None,
            },
            &[r],
        );
        g.mark_output(r);
        g.mark_output(sum);

        let xs = Tensor::<f32>::randn(&[4, 5], &mut rng);
        let ws = Tensor::<f32>::randn(&[5, 3], &mut rng);
        let fast = compile(&g).run(&[&xs, &ws]);
        let slow = compile_unoptimized(&g).run(&[&xs, &ws]);
        assert!(fast[0].allclose(&slow[0], 1e-6));
        assert!(fast[1].allclose(&slow[1], 1e-5));
    }

    #[test]
    fn fusion_reduces_kernel_count() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[1000]);
        let a = g.unary(ElemUnary::Neg, x);
        let b = g.unary(ElemUnary::Exp, a);
        let one = g.constant(Tensor::scalar(1.0));
        let c = g.binary(ElemBinary::Add, b, one);
        let d = g.unary(ElemUnary::Recip, c); // = sigmoid(x), 4 element ops
        g.mark_output(d);
        let unopt = compile_unoptimized(&g);
        let opt = compile(&g);
        assert_eq!(unopt.kernel_count(), 4);
        assert_eq!(opt.kernel_count(), 1, "whole chain fuses");
        let input = t(&[0.5, -0.5], &[2]);
        // shape mismatch with the trace is rejected below, so rebuild:
        let mut g2 = HloGraph::new();
        let x = g2.parameter(0, &[2]);
        let a = g2.unary(ElemUnary::Neg, x);
        let b = g2.unary(ElemUnary::Exp, a);
        let one = g2.constant(Tensor::scalar(1.0));
        let c = g2.binary(ElemBinary::Add, b, one);
        let d = g2.unary(ElemUnary::Recip, c);
        g2.mark_output(d);
        let out = compile(&g2).run(&[&input]);
        for (o, &xv) in out[0].as_slice().iter().zip(input.as_slice()) {
            assert!((o - 1.0 / (1.0 + (-xv).exp())).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "parameter 0 has shape")]
    fn shape_change_is_rejected_at_run_time() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[3]);
        let y = g.unary(ElemUnary::Neg, x);
        g.mark_output(y);
        compile(&g).run(&[&t(&[1.0, 2.0], &[2])]);
    }

    #[test]
    fn conv_pool_and_grads_execute() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x = Tensor::<f32>::randn(&[1, 8, 8, 2], &mut rng);
        let w = Tensor::<f32>::randn(&[3, 3, 2, 4], &mut rng);
        let mut g = HloGraph::new();
        let xp = g.parameter(0, &[1, 8, 8, 2]);
        let wp = g.parameter(1, &[3, 3, 2, 4]);
        let conv = g.add(
            HloOp::Conv2D {
                strides: (1, 1),
                padding: s4tf_tensor::Padding::Same,
            },
            &[xp, wp],
        );
        let pool = g.add(
            HloOp::AvgPool {
                pool: (2, 2),
                strides: (2, 2),
                padding: s4tf_tensor::Padding::Valid,
            },
            &[conv],
        );
        g.mark_output(pool);
        let out = compile(&g).run(&[&x, &w]);
        let expected = x.conv2d(&w, (1, 1), s4tf_tensor::Padding::Same).avg_pool2d(
            (2, 2),
            (2, 2),
            s4tf_tensor::Padding::Valid,
        );
        assert!(out[0].allclose(&expected, 1e-5));
    }

    #[test]
    fn reductions_and_shape_ops_execute() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 3]);
        let s = g.add(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: Some(0),
            },
            &[x],
        );
        let r = g.add(HloOp::Reshape(vec![3, 1]), &[s]);
        let b = g.add(HloOp::Broadcast(vec![3, 2]), &[r]);
        let back = g.add(HloOp::ReduceToShape(vec![3, 1]), &[b]);
        let tr = g.add(HloOp::Transpose(vec![1, 0]), &[back]);
        g.mark_output(tr);
        let out = compile(&g).run(&[&t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])]);
        assert_eq!(out[0].dims(), &[1, 3]);
        assert_eq!(out[0].as_slice(), &[10.0, 14.0, 18.0]);
    }
}
