//! Compilation and execution: an [`Executable`] is the optimized,
//! topologically ordered kernel plan for one trace.

use crate::codegen;
use crate::fault;
use crate::graph::HloGraph;
use crate::met;
use crate::op::{FusedInst, HloOp, ReduceKind};
use crate::passes::{self, MemoryPlan};
use crate::prof;
use s4tf_tensor::{panic_message, RuntimeError, Tensor};
use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Runtime override for the memory planner (−1 = unset, 0 = off, 1 = on).
static PLAN_OVERRIDE: AtomicI8 = AtomicI8::new(-1);
/// `S4TF_PLAN` read once; the planner defaults to on.
static PLAN_ENV: OnceLock<bool> = OnceLock::new();

/// Whether compiled executions apply their memory plan (drop values at
/// last use, run elementwise kernels in place on dying unique buffers).
///
/// Controlled by [`set_plan_enabled`], else the `S4TF_PLAN` environment
/// variable (`0`/`false`/`off`/`no` disable), else on. Results are
/// bit-identical either way; the plan changes only allocation traffic.
pub fn plan_enabled() -> bool {
    match PLAN_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *PLAN_ENV.get_or_init(|| {
            !std::env::var("S4TF_PLAN")
                .map(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    v == "0" || v == "false" || v == "off" || v == "no"
                })
                .unwrap_or(false)
        }),
    }
}

/// Programmatic override of [`plan_enabled`] (takes precedence over the
/// environment). Process-wide, for tests and experiments.
pub fn set_plan_enabled(enabled: bool) {
    PLAN_OVERRIDE.store(enabled as i8, Ordering::Relaxed);
}

fn plan_in_place_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        met::counter(
            "s4tf_plan_in_place_total",
            "Kernels that wrote their output in place into a dying operand's buffer",
        )
    })
}

fn plan_donated_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        met::counter(
            "s4tf_plan_donated_total",
            "In-place kernel commits that overwrote a caller-donated parameter buffer",
        )
    })
}

/// What the memory plan actually did at run time, accumulated across
/// every execution of one program (clones share the tally via `Arc`).
/// "Planned" numbers live on [`MemoryPlan`]; these are the outcomes.
#[derive(Debug, Default)]
pub struct PlanCounters {
    /// Kernels that committed to writing their output into a dying
    /// operand's buffer (the run-time uniqueness check passed).
    pub in_place: AtomicU64,
    /// The subset of in-place commits whose overwritten operand was a
    /// *parameter* — a caller-donated buffer (the optimizer-update
    /// pattern `p ← p − lr·g`).
    pub donated: AtomicU64,
}

/// A compiled trace: the optimized graph plus execution bookkeeping.
#[derive(Debug, Clone)]
pub struct Executable {
    graph: HloGraph,
    /// Nodes that actually execute (excludes parameters/constants).
    kernel_count: usize,
    /// Buffer liveness computed at compile time (paper §3.3: the trace
    /// exposes whole-program structure, so buffer assignment is static).
    plan: MemoryPlan,
    /// Run-time plan outcomes, shared across clones of this program.
    counters: Arc<PlanCounters>,
    /// Per-node compiled fused kernels (codegen IR), built once here so
    /// launches index instead of hashing; `None` for non-fused nodes and
    /// programs outside the compilable envelope. Built even when codegen
    /// is disabled so the `S4TF_CODEGEN` toggle works per-run.
    fused: Vec<Option<Arc<codegen::CompiledKernel>>>,
}

/// Compiles a graph: runs the whole-program pass pipeline (constant
/// folding, CSE, algebraic simplification, fusion, DCE) and fixes the
/// execution plan.
pub fn compile(graph: &HloGraph) -> Executable {
    let mut span = prof::span("xla.compile");
    let mut g = graph.clone();
    passes::optimize(&mut g);
    let kernel_count = g
        .nodes
        .iter()
        .filter(|n| !matches!(n.op, HloOp::Parameter(_) | HloOp::Constant(_)))
        .count();
    if span.is_recording() {
        span.annotate_f64("nodes_in", graph.len() as f64);
        span.annotate_f64("kernels_out", kernel_count as f64);
        let fused = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HloOp::Fused { .. }))
            .count();
        prof::counter_add("xla.fused_kernels", fused as u64);
    }
    let plan = passes::plan_memory(&g);
    let fused = codegen::fused_table(&g);
    Executable {
        graph: g,
        kernel_count,
        plan,
        counters: Arc::default(),
        fused,
    }
}

/// Compiles without optimization (for pass-effect comparisons).
pub fn compile_unoptimized(graph: &HloGraph) -> Executable {
    let g = graph.clone();
    let kernel_count = g
        .nodes
        .iter()
        .filter(|n| !matches!(n.op, HloOp::Parameter(_) | HloOp::Constant(_)))
        .count();
    let plan = passes::plan_memory(&g);
    let fused = codegen::fused_table(&g);
    Executable {
        graph: g,
        kernel_count,
        plan,
        counters: Arc::default(),
        fused,
    }
}

impl Executable {
    /// The optimized graph.
    pub fn graph(&self) -> &HloGraph {
        &self.graph
    }

    /// Number of kernel launches per run (post-fusion) — the metric the
    /// fusion experiments report.
    pub fn kernel_count(&self) -> usize {
        self.kernel_count
    }

    /// The liveness schedule's analytic peak live bytes for one run.
    pub fn planned_bytes(&self) -> u64 {
        self.plan.planned_bytes
    }

    /// Run-time plan outcomes accumulated over this program's executions.
    pub fn plan_counters(&self) -> &PlanCounters {
        &self.counters
    }

    /// Executes the plan on runtime parameters.
    ///
    /// # Panics
    /// Panics if the number or shapes of `params` disagree with the trace.
    pub fn run(&self, params: &[&Tensor<f32>]) -> Vec<Tensor<f32>> {
        self.run_with_backend(params, "xla")
    }

    /// [`run`](Executable::run) with an explicit backend label for
    /// numerics-violation provenance: the lazy device executes through
    /// this plan too, and its violations should say `lazy`, not `xla`.
    ///
    /// # Panics
    /// Panics with the attributed [`RuntimeError`] if a kernel fails; the
    /// lazy device uses [`try_run_with_backend`](Executable::try_run_with_backend)
    /// to poison its handles instead.
    pub fn run_with_backend(
        &self,
        params: &[&Tensor<f32>],
        backend: &'static str,
    ) -> Vec<Tensor<f32>> {
        self.try_run_with_backend(params, backend)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes the plan, returning the *first* kernel failure (a panic
    /// caught on this node, or an injected fault) as an attributed error
    /// instead of unwinding. Nodes run in topological order, so the error
    /// names the op that introduced the failure, not a downstream consumer.
    ///
    /// # Panics
    /// Still panics on caller bugs: wrong parameter count or shapes
    /// (shape errors are synchronous, paper §4), and numerics-check
    /// panics in [`NumericsMode::Panic`](s4tf_diag::NumericsMode) — those
    /// are an explicitly requested abort, not a runtime fault.
    pub fn try_run_with_backend(
        &self,
        params: &[&Tensor<f32>],
        backend: &'static str,
    ) -> std::result::Result<Vec<Tensor<f32>>, RuntimeError> {
        // Borrowed parameters are cloned; the caller's handles keep the
        // buffers shared, so the planner's uniqueness checks refuse to
        // overwrite them (donation requires an owned run).
        let owned: Vec<Option<Tensor<f32>>> = params.iter().map(|t| Some((*t).clone())).collect();
        self.run_values(owned, backend)
    }

    /// [`try_run_with_backend`](Executable::try_run_with_backend), taking
    /// parameters *by value*: the caller donates its buffers. A donated
    /// parameter whose last graph use is an in-place-eligible elementwise
    /// node (the fused optimizer-update pattern `p ← p − lr·g`) is
    /// overwritten in place, so the updated parameter aliases the old
    /// one's buffer. Parameters the caller still holds other handles to
    /// are shared, hence copied — donation never breaks value semantics.
    pub fn try_run_owned(
        &self,
        params: Vec<Tensor<f32>>,
        backend: &'static str,
    ) -> std::result::Result<Vec<Tensor<f32>>, RuntimeError> {
        self.run_values(params.into_iter().map(Some).collect(), backend)
    }

    fn run_values(
        &self,
        mut params: Vec<Option<Tensor<f32>>>,
        backend: &'static str,
    ) -> std::result::Result<Vec<Tensor<f32>>, RuntimeError> {
        let mut span = prof::span("xla.execute");
        if span.is_recording() {
            span.annotate_f64("kernels", self.kernel_count as f64);
            span.annotate_f64("threads_used", s4tf_threads::num_threads() as f64);
            prof::counter_add("xla.kernels_run", self.kernel_count as u64);
        }
        assert_eq!(
            params.len(),
            self.graph.n_params,
            "executable expects {} parameters, got {}",
            self.graph.n_params,
            params.len()
        );
        let plan_on = plan_enabled();
        // Per-node op events for roofline and critical-path analysis.
        // `node_ids` maps graph nodes to the op ids of *this run* so data
        // dependencies become event edges; `prev_id` chains nodes serially
        // (execution is single-lane) starting from the thread's op root —
        // the lazy device sets it to its compile-phase event so kernels
        // chain after compilation.
        let profiling = prof::enabled();
        let mut node_ids: Vec<u64> = if profiling {
            vec![0; self.graph.nodes.len()]
        } else {
            Vec::new()
        };
        let entry_root = if profiling { prof::op_root() } else { 0 };
        let mut prev_id = entry_root;
        let (mut step_flops, mut step_bytes) = (0u64, 0u64);
        let met_on = met::enabled();
        let mut values: Vec<Option<Tensor<f32>>> = vec![None; self.graph.nodes.len()];
        for (i, node) in self.graph.nodes.iter().enumerate() {
            let node_start = if profiling { prof::now_us() } else { 0 };
            let node_timer = if met_on {
                Some(std::time::Instant::now())
            } else {
                None
            };
            let out = match &node.op {
                HloOp::Parameter(p) => {
                    let t = params[*p]
                        .take()
                        .expect("each parameter index appears in one node");
                    assert_eq!(
                        t.shape(),
                        &node.shape,
                        "parameter {p} has shape {}, trace recorded {}",
                        t.shape(),
                        node.shape
                    );
                    t
                }
                HloOp::Constant(c) => c.clone(),
                op => {
                    let mnemonic = node.op.mnemonic();
                    if fault::should_inject(fault::FaultSite::Kernel) {
                        crate::diag::event!(
                            "fault.injected",
                            site = "kernel",
                            op = mnemonic,
                            backend = backend,
                        );
                        return Err(RuntimeError::injected(mnemonic, backend, "kernel")
                            .with_span(prof::current_span()));
                    }
                    // The memory plan marks an operand this step may
                    // overwrite; commit to it only if that operand's
                    // buffer is uniquely owned right now (no other value
                    // slot, parameter handle, or caller clone shares it).
                    let inplace_at = if plan_on {
                        self.plan.inplace[i].filter(|&k| {
                            values[node.inputs[k].0 as usize]
                                .as_ref()
                                .is_some_and(|t| t.storage_unique())
                        })
                    } else {
                        None
                    };
                    // Only the kernel itself is caught: the numerics scan
                    // below stays outside so a Panic-mode abort unwinds to
                    // the caller as requested, not as a poisoned value.
                    let result = if let Some(k) = inplace_at {
                        let target_id = node.inputs[k].0 as usize;
                        self.counters.in_place.fetch_add(1, Ordering::Relaxed);
                        plan_in_place_counter().inc();
                        if matches!(self.graph.nodes[target_id].op, HloOp::Parameter(_)) {
                            self.counters.donated.fetch_add(1, Ordering::Relaxed);
                            plan_donated_counter().inc();
                        }
                        let target = values[target_id]
                            .take()
                            .expect("topological order guarantees operands are ready");
                        self.eval_inplace(i, k, target, &values)
                    } else {
                        let inputs: Vec<&Tensor<f32>> = node
                            .inputs
                            .iter()
                            .map(|&id| {
                                values[id.0 as usize]
                                    .as_ref()
                                    .expect("topological order guarantees operands are ready")
                            })
                            .collect();
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
                            // Fused kernels take their output shape from
                            // the plan (a trailing-broadcast input may tie
                            // the element count).
                            HloOp::Fused { insts, .. } => {
                                run_fused(insts, &inputs, node.shape.dims(), self.fused[i].as_ref())
                            }
                            op => eval_op(op, &inputs),
                        }))
                    };
                    match result {
                        Ok(t) => t,
                        Err(payload) => {
                            let err =
                                RuntimeError::kernel(mnemonic, backend, panic_message(&*payload))
                                    .with_span(prof::current_span());
                            crate::diag::event!(
                                "fault.kernel_panic",
                                op = node.op.mnemonic(),
                                backend = backend,
                            );
                            return Err(err);
                        }
                    }
                }
            };
            debug_assert_eq!(
                out.shape(),
                &node.shape,
                "{} produced {}, inference said {}",
                node.op.mnemonic(),
                out.shape(),
                node.shape
            );
            if let Some(t0) = node_timer {
                if !matches!(node.op, HloOp::Parameter(_) | HloOp::Constant(_)) {
                    met::dispatch_hist(backend, node.op.family())
                        .record(t0.elapsed().as_micros() as u64);
                }
            }
            if profiling && !matches!(node.op, HloOp::Parameter(_) | HloOp::Constant(_)) {
                let in_shapes: Vec<&s4tf_tensor::Shape> = node
                    .inputs
                    .iter()
                    .map(|&id| &self.graph.nodes[id.0 as usize].shape)
                    .collect();
                let cost = crate::cost::op_cost(&node.op, &in_shapes, &node.shape);
                let mut deps: Vec<u64> = node
                    .inputs
                    .iter()
                    .map(|&id| node_ids[id.0 as usize])
                    .collect();
                deps.push(prev_id);
                let id = prof::next_op_id();
                // Fused nodes that executed through the compiled path get
                // their own roofline rows (`fused@codegen`), keeping the
                // interpreter's `simd8`/`scalar` rows comparable per path.
                let path = if matches!(node.op, HloOp::Fused { .. })
                    && self.fused[i].is_some()
                    && codegen::codegen_enabled()
                {
                    "codegen"
                } else {
                    s4tf_tensor::path_label()
                };
                prof::op_event(
                    id,
                    node.op.family(),
                    backend,
                    "kernel",
                    path,
                    node_start,
                    node_start,
                    prof::now_us(),
                    deps,
                    cost.flops,
                    cost.bytes,
                );
                node_ids[i] = id;
                prev_id = id;
                step_flops += cost.flops;
                step_bytes += cost.bytes;
            }
            // Nodes execute in topological order, so the first violating
            // node here is the op that *introduced* the NaN/Inf — not
            // whichever downstream op a caller observed it through.
            if crate::diag::numerics_enabled() {
                let _ = crate::diag::check_f32s(
                    &node.op.mnemonic(),
                    backend,
                    out.dims(),
                    out.as_slice(),
                    prof::current_span().as_deref(),
                );
            }
            values[i] = Some(out);
            if plan_on {
                // Drop dead intermediates now: their buffers return to
                // the recycling pool for reuse by later steps instead of
                // staying live until the end of the run.
                for &dead in &self.plan.drop_after[i] {
                    values[dead as usize] = None;
                }
            }
        }
        if profiling {
            span.record_work(step_flops, step_bytes);
            // Leave the last kernel's id in the thread's op root (only
            // when a root was set, i.e. the lazy device is driving) so the
            // caller can chain the next step's trace after this execution.
            if entry_root != 0 {
                prof::set_op_root(prev_id);
            }
        }
        // Per-backend live-bytes breakdown, surfaced through the profile
        // gauge mechanism (report + Chrome-trace counter tracks).
        if prof::enabled() {
            let live = crate::diag::memory_stats().live_bytes as f64;
            prof::gauge_set("mem.live_bytes", live);
            prof::gauge_set(format!("mem.live_bytes.{backend}"), live);
            let pool = s4tf_tensor::pool_stats();
            prof::gauge_set("pool.hits", pool.hits as f64);
            prof::gauge_set("pool.misses", pool.misses as f64);
            prof::gauge_set("pool.recycled_bytes", pool.recycled_bytes as f64);
            prof::gauge_set("pool.pooled_bytes", pool.pooled_bytes as f64);
        }
        Ok(self
            .graph
            .outputs
            .iter()
            .map(|o| values[o.0 as usize].clone().expect("outputs computed"))
            .collect())
    }

    /// Runs node `i`'s kernel *in place* on `target` (the taken value of
    /// operand `k`, uniquely owned and shaped like the output). Per-element
    /// arithmetic, operand order and chunking are identical to the
    /// out-of-place kernels, so results are bit-identical.
    fn eval_inplace(
        &self,
        i: usize,
        k: usize,
        target: Tensor<f32>,
        values: &[Option<Tensor<f32>>],
    ) -> std::thread::Result<Tensor<f32>> {
        let node = &self.graph.nodes[i];
        let ready = |id: crate::graph::NodeId| -> &Tensor<f32> {
            values[id.0 as usize]
                .as_ref()
                .expect("topological order guarantees operands are ready")
        };
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &node.op {
            HloOp::Unary(u) => {
                let u = *u;
                let mut t = target;
                t.map_assign(move |x| u.apply(x));
                t
            }
            HloOp::Binary(b) => {
                let b = *b;
                let other = ready(node.inputs[1 - k]);
                let mut t = target;
                if k == 0 {
                    t.zip_apply_assign(other, move |x, y| b.apply(x, y));
                } else {
                    t.zip_apply_assign_rev(other, move |x, y| b.apply(x, y));
                }
                t
            }
            HloOp::Fused { insts, .. } => {
                // Input positions naming the aliased node read the output
                // buffer itself (each chunk is read before it is written).
                let alias = node.inputs[k];
                let slices: Vec<Option<&[f32]>> = node
                    .inputs
                    .iter()
                    .map(|&id| (id != alias).then(|| ready(id).as_slice()))
                    .collect();
                let mut t = target;
                let n = t.num_elements();
                dispatch_fused(self.fused[i].as_ref(), insts, &slices, n, t.as_mut_slice());
                t
            }
            op => unreachable!("plan marks only elementwise ops in-place, got {op:?}"),
        }))
    }
}

/// Evaluates one (non-leaf) operation on materialized tensors — the shared
/// kernel-dispatch used by the compiled executor here and by the naive and
/// eager devices in `s4tf-runtime` (all backends run the *same* kernels;
/// they differ only in execution strategy, §3).
///
/// # Panics
/// Panics on [`HloOp::Parameter`]/[`HloOp::Constant`] (leaves have no
/// kernel) and on operand-shape mismatches.
pub fn eval_op(op: &HloOp, inputs: &[&Tensor<f32>]) -> Tensor<f32> {
    match op {
        HloOp::Parameter(_) | HloOp::Constant(_) => {
            unreachable!("leaves are materialized by the caller")
        }
        HloOp::Unary(u) => {
            let u = *u;
            inputs[0].map(move |x| u.apply(x))
        }
        HloOp::Binary(b) => {
            let b = *b;
            apply_binary(inputs[0], inputs[1], move |a, c| b.apply(a, c))
        }
        HloOp::MatMul { t_lhs, t_rhs } => match (t_lhs, t_rhs) {
            (false, false) => inputs[0].matmul(inputs[1]),
            (true, false) => inputs[0].matmul_tn(inputs[1]),
            (false, true) => inputs[0].matmul_nt(inputs[1]),
            (true, true) => inputs[0].t().matmul(&inputs[1].t()),
        },
        HloOp::Conv2D { strides, padding } => inputs[0].conv2d(inputs[1], *strides, *padding),
        HloOp::Conv2DBackwardInput {
            input_dims,
            strides,
            padding,
        } => {
            let phantom = Tensor::zeros(input_dims);
            phantom.conv2d_backward_input(inputs[0], inputs[1], *strides, *padding)
        }
        HloOp::Conv2DBackwardFilter {
            filter_dims,
            strides,
            padding,
        } => inputs[0].conv2d_backward_filter(filter_dims, inputs[1], *strides, *padding),
        HloOp::AvgPool {
            pool,
            strides,
            padding,
        } => inputs[0].avg_pool2d(*pool, *strides, *padding),
        HloOp::AvgPoolGrad {
            pool,
            strides,
            padding,
        } => inputs[0].avg_pool2d_backward(inputs[1], *pool, *strides, *padding),
        HloOp::MaxPool {
            pool,
            strides,
            padding,
        } => inputs[0].max_pool2d(*pool, *strides, *padding),
        HloOp::MaxPoolGrad {
            pool,
            strides,
            padding,
        } => inputs[0].max_pool2d_backward(inputs[1], *pool, *strides, *padding),
        HloOp::GatherRows => {
            let idx: Vec<usize> = inputs[1]
                .as_slice()
                .iter()
                .map(|&x| x.round() as usize)
                .collect();
            inputs[0].gather_rows(&idx)
        }
        HloOp::GatherRowsGrad { table_rows } => {
            let idx: Vec<usize> = inputs[0]
                .as_slice()
                .iter()
                .map(|&x| x.round() as usize)
                .collect();
            let mut dims = vec![*table_rows];
            dims.extend_from_slice(&inputs[1].dims()[1..]);
            let mut out = Tensor::zeros(&dims);
            out.scatter_add_rows(&idx, inputs[1]);
            out
        }
        HloOp::Reduce { kind, axis } => {
            let x = inputs[0];
            match (kind, axis) {
                (ReduceKind::Sum, None) => x.sum(),
                (ReduceKind::Mean, None) => x.mean(),
                (ReduceKind::Max, None) => x.max(),
                (ReduceKind::Sum, Some(a)) => x.sum_axis(*a, false),
                (ReduceKind::Mean, Some(a)) => x.mean_axis(*a, false),
                (ReduceKind::Max, Some(a)) => x.max_axis(*a, false),
            }
        }
        HloOp::Reshape(dims) => inputs[0].reshape(dims),
        HloOp::Transpose(perm) => inputs[0].transpose(perm),
        HloOp::Broadcast(dims) => inputs[0].broadcast_to(dims),
        HloOp::ReduceToShape(dims) => inputs[0].reduce_to_shape(dims),
        HloOp::Fused { insts, .. } => {
            // Outside a compiled plan the output shape is the largest
            // input's (the fusion criteria guarantee one full-shape input).
            let dims = inputs
                .iter()
                .max_by_key(|t| t.num_elements())
                .map(|t| t.dims().to_vec())
                .unwrap_or_default();
            run_fused(insts, inputs, &dims, None)
        }
    }
}

/// [`eval_op`] over *owned* operands: when the planner is enabled and an
/// operand's buffer is uniquely owned (its handle died and no other value
/// shares the storage), elementwise kernels write into it instead of
/// allocating. The eager and naive devices route through here; results
/// are bit-identical to [`eval_op`].
pub fn eval_op_owned(op: &HloOp, mut operands: Vec<Tensor<f32>>) -> Tensor<f32> {
    if plan_enabled() {
        match op {
            HloOp::Unary(u) if operands[0].storage_unique() => {
                let u = *u;
                let mut t = operands.swap_remove(0);
                t.map_assign(move |x| u.apply(x));
                return t;
            }
            HloOp::Binary(b) if operands[0].shape() == operands[1].shape() => {
                let b = *b;
                if operands[0].storage_unique() {
                    let t = operands.swap_remove(0);
                    let mut t = t;
                    t.zip_apply_assign(&operands[0], move |x, y| b.apply(x, y));
                    return t;
                }
                if operands[1].storage_unique() {
                    let mut t = operands.swap_remove(1);
                    t.zip_apply_assign_rev(&operands[0], move |x, y| b.apply(x, y));
                    return t;
                }
            }
            _ => {}
        }
    }
    let refs: Vec<&Tensor<f32>> = operands.iter().collect();
    eval_op(op, &refs)
}

pub(crate) fn apply_binary(
    a: &Tensor<f32>,
    b: &Tensor<f32>,
    f: impl Fn(f32, f32) -> f32 + Copy + Sync,
) -> Tensor<f32> {
    if a.shape() == b.shape() {
        a.zip_map(b, f)
    } else {
        let target =
            s4tf_tensor::Shape::broadcast(a.shape(), b.shape()).unwrap_or_else(|e| panic!("{e}"));
        let ab = a.broadcast_to(target.dims());
        let bb = b.broadcast_to(target.dims());
        ab.zip_map(&bb, f)
    }
}

/// Fused-kernel chunk width: big enough to amortize instruction dispatch,
/// small enough that the whole register file stays cache-resident.
const FUSED_CHUNK: usize = 512;

/// Executes a fused elementwise program: one pass over the elements, no
/// intermediate full-size buffers — the fusion payoff. Execution is a
/// *vectorized interpreter*: instructions dispatch once per chunk and then
/// run tight per-element loops, so dispatch cost is amortized 512×.
/// Inputs smaller than the output are trailing-suffix broadcasts, indexed
/// modulo their length (bias vectors, batch-norm scales, …).
/// Elements per pool task: several dispatch chunks, so a task amortizes
/// its private register-file allocation.
const FUSED_GRAIN: usize = 8 * FUSED_CHUNK;

fn run_fused(
    insts: &[FusedInst],
    inputs: &[&Tensor<f32>],
    out_dims: &[usize],
    compiled: Option<&Arc<codegen::CompiledKernel>>,
) -> Tensor<f32> {
    let n: usize = out_dims.iter().product();
    let slices: Vec<Option<&[f32]>> = inputs.iter().map(|t| Some(t.as_slice())).collect();
    // The output buffer comes through the tensor constructors, which
    // recycle pooled capacity; the fill value is overwritten below.
    let mut out = Tensor::full(0.0f32, out_dims);
    dispatch_fused(compiled, insts, &slices, n, out.as_mut_slice());
    out
}

/// Routes one fused launch: the compiled kernel when codegen is enabled
/// (from the executable's per-node table, or the codegen cache for ad-hoc
/// [`eval_op`] launches), otherwise the interpreter below. Both paths are
/// bit-identical, so the choice is purely a performance dispatch.
fn dispatch_fused(
    compiled: Option<&Arc<codegen::CompiledKernel>>,
    insts: &[FusedInst],
    slices: &[Option<&[f32]>],
    n: usize,
    out: &mut [f32],
) {
    if codegen::codegen_enabled() {
        let looked_up;
        let kernel = match compiled {
            Some(k) => Some(k),
            None => {
                looked_up = codegen::get_or_compile(insts);
                looked_up.as_ref()
            }
        };
        if let Some(k) = kernel {
            k.run(slices, n, out);
            return;
        }
    }
    run_fused_kernel(insts, slices, n, out);
}

/// The fused interpreter core, writing into a caller-provided output
/// buffer. `slices[i]` is `None` when input `i` *aliases the output
/// buffer* (in-place execution on a dying operand): reads then come from
/// the output chunk itself, which still holds the operand's original
/// elements because every chunk is fully read into registers before its
/// output range is written. Only full-shape inputs may alias.
fn run_fused_kernel(insts: &[FusedInst], slices: &[Option<&[f32]>], n: usize, out: &mut [f32]) {
    // Launch-wide instruction decode: input slices resolve their
    // full-vs-broadcast-vs-alias class (and bound check) once here, not
    // once per instruction per chunk.
    enum Decoded<'a> {
        Imm(f32),
        Full(&'a [f32]),
        Bcast(&'a [f32]),
        Alias,
        Unary(crate::op::ElemUnary, usize),
        Binary(crate::op::ElemBinary, usize, usize),
    }
    let decoded: Vec<Decoded<'_>> = insts
        .iter()
        .map(|inst| match inst {
            FusedInst::Imm(x) => Decoded::Imm(*x),
            FusedInst::Input(i) => match slices[*i] {
                Some(src) if src.len() == n => Decoded::Full(src),
                Some(src) => Decoded::Bcast(src),
                None => Decoded::Alias,
            },
            FusedInst::Unary(u, a) => Decoded::Unary(*u, *a),
            FusedInst::Binary(b, a, c) => Decoded::Binary(*b, *a, *c),
        })
        .collect();
    // Outputs above the grain split across the thread pool; each task
    // interprets a disjoint output range with its own chunk-register
    // file, so per-element evaluation is unchanged by the split
    // (bit-identical for every thread count).
    s4tf_threads::parallel_chunks_mut(out, 1, FUSED_GRAIN, |task_start, out_chunk| {
        // Chunk-wide registers, one row per instruction — recycled
        // scratch when the pool has capacity parked.
        let regs_len = insts.len() * FUSED_CHUNK;
        let mut regs = match s4tf_tensor::pool::take_vec::<f32>(regs_len) {
            Some(mut v) => {
                v.resize(regs_len, 0.0);
                v
            }
            None => {
                // Round capacity up to a power of two so the freed
                // buffer parks in the bucket the next task searches.
                let mut v = Vec::with_capacity(regs_len.next_power_of_two());
                v.resize(regs_len, 0.0);
                v
            }
        };
        // The whole interpretation loop runs inside `vectorize`, so each
        // instruction's `apply_slice` chunk loop compiles with the lane
        // path's target features — fusion wins compound with vector
        // width. Per-element arithmetic is identical on both dispatch
        // paths (bit-identical results; see `s4tf_tensor::simd`).
        s4tf_tensor::simd::vectorize(|| {
            // Immediate rows materialize once per task: no later
            // instruction writes them, so they persist across chunks (the
            // chunk loop skips `Imm` entirely).
            for (r, d) in decoded.iter().enumerate() {
                if let Decoded::Imm(x) = d {
                    regs[r * FUSED_CHUNK..(r + 1) * FUSED_CHUNK].fill(*x);
                }
            }
            let mut start = 0usize;
            while start < out_chunk.len() {
                let len = FUSED_CHUNK.min(out_chunk.len() - start);
                // Broadcast inputs index by *global* element position.
                let global = task_start + start;
                for (r, inst) in decoded.iter().enumerate() {
                    // Split the register file so an instruction can read earlier
                    // rows while writing its own.
                    let (read, write) = regs.split_at_mut(r * FUSED_CHUNK);
                    let dst = &mut write[..len];
                    match inst {
                        Decoded::Imm(_) => {}
                        Decoded::Full(src) => {
                            dst.copy_from_slice(&src[global..global + len]);
                        }
                        Decoded::Bcast(src) => {
                            crate::codegen::fill_cycle(dst, src, global);
                        }
                        // Aliased input: its elements for this chunk sit
                        // in the not-yet-written output range.
                        Decoded::Alias => dst.copy_from_slice(&out_chunk[start..start + len]),
                        Decoded::Unary(u, a) => {
                            u.apply_slice(dst, &read[a * FUSED_CHUNK..a * FUSED_CHUNK + len]);
                        }
                        Decoded::Binary(b, a, c) => {
                            let lhs = &read[a * FUSED_CHUNK..a * FUSED_CHUNK + len];
                            let rhs = &read[c * FUSED_CHUNK..c * FUSED_CHUNK + len];
                            b.apply_slice(dst, lhs, rhs);
                        }
                    }
                }
                let last = (insts.len() - 1) * FUSED_CHUNK;
                out_chunk[start..start + len].copy_from_slice(&regs[last..last + len]);
                start += len;
            }
        });
        s4tf_tensor::pool::give_vec(regs);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ElemBinary, ElemUnary};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn runs_elementwise_chain() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[3]);
        let e = g.unary(ElemUnary::Exp, x);
        let s = g.binary(ElemBinary::Add, e, x);
        g.mark_output(s);
        for exe in [compile(&g), compile_unoptimized(&g)] {
            let out = exe.run(&[&t(&[0.0, 1.0, 2.0], &[3])]);
            for (i, &xv) in [0.0f32, 1.0, 2.0].iter().enumerate() {
                assert!((out[0].as_slice()[i] - (xv.exp() + xv)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn optimized_matches_unoptimized_on_mixed_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[4, 5]);
        let w = g.parameter(1, &[5, 3]);
        let mm = g.add(
            HloOp::MatMul {
                t_lhs: false,
                t_rhs: false,
            },
            &[x, w],
        );
        let c = g.constant(Tensor::scalar(0.5));
        let scaled = g.binary(ElemBinary::Mul, mm, c);
        let r = g.unary(ElemUnary::Relu, scaled);
        let sum = g.add(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: None,
            },
            &[r],
        );
        g.mark_output(r);
        g.mark_output(sum);

        let xs = Tensor::<f32>::randn(&[4, 5], &mut rng);
        let ws = Tensor::<f32>::randn(&[5, 3], &mut rng);
        let fast = compile(&g).run(&[&xs, &ws]);
        let slow = compile_unoptimized(&g).run(&[&xs, &ws]);
        assert!(fast[0].allclose(&slow[0], 1e-6));
        assert!(fast[1].allclose(&slow[1], 1e-5));
    }

    #[test]
    fn fusion_reduces_kernel_count() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[1000]);
        let a = g.unary(ElemUnary::Neg, x);
        let b = g.unary(ElemUnary::Exp, a);
        let one = g.constant(Tensor::scalar(1.0));
        let c = g.binary(ElemBinary::Add, b, one);
        let d = g.unary(ElemUnary::Recip, c); // = sigmoid(x), 4 element ops
        g.mark_output(d);
        let unopt = compile_unoptimized(&g);
        let opt = compile(&g);
        assert_eq!(unopt.kernel_count(), 4);
        assert_eq!(opt.kernel_count(), 1, "whole chain fuses");
        let input = t(&[0.5, -0.5], &[2]);
        // shape mismatch with the trace is rejected below, so rebuild:
        let mut g2 = HloGraph::new();
        let x = g2.parameter(0, &[2]);
        let a = g2.unary(ElemUnary::Neg, x);
        let b = g2.unary(ElemUnary::Exp, a);
        let one = g2.constant(Tensor::scalar(1.0));
        let c = g2.binary(ElemBinary::Add, b, one);
        let d = g2.unary(ElemUnary::Recip, c);
        g2.mark_output(d);
        let out = compile(&g2).run(&[&input]);
        for (o, &xv) in out[0].as_slice().iter().zip(input.as_slice()) {
            assert!((o - 1.0 / (1.0 + (-xv).exp())).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "parameter 0 has shape")]
    fn shape_change_is_rejected_at_run_time() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[3]);
        let y = g.unary(ElemUnary::Neg, x);
        g.mark_output(y);
        compile(&g).run(&[&t(&[1.0, 2.0], &[2])]);
    }

    #[test]
    fn conv_pool_and_grads_execute() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let x = Tensor::<f32>::randn(&[1, 8, 8, 2], &mut rng);
        let w = Tensor::<f32>::randn(&[3, 3, 2, 4], &mut rng);
        let mut g = HloGraph::new();
        let xp = g.parameter(0, &[1, 8, 8, 2]);
        let wp = g.parameter(1, &[3, 3, 2, 4]);
        let conv = g.add(
            HloOp::Conv2D {
                strides: (1, 1),
                padding: s4tf_tensor::Padding::Same,
            },
            &[xp, wp],
        );
        let pool = g.add(
            HloOp::AvgPool {
                pool: (2, 2),
                strides: (2, 2),
                padding: s4tf_tensor::Padding::Valid,
            },
            &[conv],
        );
        g.mark_output(pool);
        let out = compile(&g).run(&[&x, &w]);
        let expected = x.conv2d(&w, (1, 1), s4tf_tensor::Padding::Same).avg_pool2d(
            (2, 2),
            (2, 2),
            s4tf_tensor::Padding::Valid,
        );
        assert!(out[0].allclose(&expected, 1e-5));
    }

    #[test]
    fn reductions_and_shape_ops_execute() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 3]);
        let s = g.add(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: Some(0),
            },
            &[x],
        );
        let r = g.add(HloOp::Reshape(vec![3, 1]), &[s]);
        let b = g.add(HloOp::Broadcast(vec![3, 2]), &[r]);
        let back = g.add(HloOp::ReduceToShape(vec![3, 1]), &[b]);
        let tr = g.add(HloOp::Transpose(vec![1, 0]), &[back]);
        g.mark_output(tr);
        let out = compile(&g).run(&[&t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])]);
        assert_eq!(out[0].dims(), &[1, 3]);
        assert_eq!(out[0].as_slice(), &[10.0, 14.0, 18.0]);
    }

    /// The optimizer-update pattern `p ← p − lr·g`: an owned run donates
    /// the parameter buffer, so the updated parameter aliases it.
    fn update_graph(n: usize) -> HloGraph {
        let mut g = HloGraph::new();
        let p = g.parameter(0, &[n]);
        let grad = g.parameter(1, &[n]);
        let lr = g.constant(Tensor::scalar(0.1));
        let step = g.binary(ElemBinary::Mul, grad, lr);
        let new = g.binary(ElemBinary::Sub, p, step);
        g.mark_output(new);
        g
    }

    #[test]
    fn owned_run_donates_unique_param_buffer() {
        if !plan_enabled() {
            return; // planner switched off for this process
        }
        let n = 1000;
        let exe = compile(&update_graph(n));
        let param = Tensor::full(1.0f32, &[n]);
        let grad = Tensor::full(0.5f32, &[n]);
        let ptr = param.as_slice().as_ptr();
        let out = exe.try_run_owned(vec![param, grad], "xla").unwrap();
        assert_eq!(
            out[0].as_slice().as_ptr(),
            ptr,
            "param_new should alias param_old's buffer"
        );
        assert!(out[0].as_slice().iter().all(|&x| (x - 0.95).abs() < 1e-6));
    }

    #[test]
    fn donation_refuses_shared_storage() {
        let n = 1000;
        let exe = compile(&update_graph(n));
        let param = Tensor::full(1.0f32, &[n]);
        let keep = param.clone(); // a live handle shares the buffer
        let grad = Tensor::full(0.5f32, &[n]);
        let out = exe.try_run_owned(vec![param, grad], "xla").unwrap();
        assert_ne!(
            out[0].as_slice().as_ptr(),
            keep.as_slice().as_ptr(),
            "shared storage must not be overwritten"
        );
        assert!(keep.as_slice().iter().all(|&x| x == 1.0), "value semantics");
    }

    #[test]
    fn borrowed_run_never_touches_caller_buffers() {
        let n = 1000;
        let exe = compile(&update_graph(n));
        let param = Tensor::full(1.0f32, &[n]);
        let grad = Tensor::full(0.5f32, &[n]);
        let out = exe.try_run_with_backend(&[&param, &grad], "xla").unwrap();
        assert!(param.as_slice().iter().all(|&x| x == 1.0));
        assert!(out[0].as_slice().iter().all(|&x| (x - 0.95).abs() < 1e-6));
    }

    #[test]
    fn inplace_fused_chain_matches_eval_op() {
        // A fusable chain over a donated buffer: in-place fused execution
        // must agree exactly with the out-of-place interpreter.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2000]);
        let a = g.unary(ElemUnary::Tanh, x);
        let b = g.unary(ElemUnary::Square, a);
        let c = g.binary(ElemBinary::Add, a, b);
        g.mark_output(c);
        let xs = Tensor::<f32>::randn(&[2000], &mut rng);
        let expect = compile_unoptimized(&g).run(&[&xs]);
        let got = compile(&g).try_run_owned(vec![xs], "xla").unwrap();
        assert_eq!(
            expect[0].as_slice(),
            got[0].as_slice(),
            "fused in-place must be bit-identical"
        );
    }
}
