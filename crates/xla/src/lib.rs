//! # s4tf-xla
//!
//! An XLA-like domain-specific tensor compiler: the JIT behind the
//! LazyTensor backend (paper §3.3).
//!
//! The paper's LazyTensor records a dynamic trace of tensor operations and
//! hands it "as a program in its own domain-specific IR" to XLA, which
//! performs whole-program optimization (most importantly operation fusion)
//! and code generation. This crate is that compiler, built from scratch:
//!
//! * [`op`] — the HLO-like operation set with shape inference;
//! * [`graph`] — the operation DAG ([`HloGraph`]) with a structural
//!   fingerprint (the hash under which traces are cached, §3.4) and DOT
//!   export (paper Figure 4);
//! * [`passes`] — whole-program optimizations: dead-code elimination,
//!   common-subexpression elimination, constant folding, algebraic
//!   simplification and — the headline — *elementwise operation fusion*,
//!   which collapses chains of same-shape elementwise operations into
//!   single fused kernels with no intermediate buffers;
//! * [`exec`] — compilation to an [`Executable`]: a topologically ordered
//!   kernel plan whose fused nodes run as single loops;
//! * [`cache`] — the XLA-program cache: "trace fragments are hashed to
//!   become keys in an XLA-program cache; each unique trace is only
//!   compiled by XLA once" (§3.4).
//!
//! ## Example
//!
//! ```
//! use s4tf_xla::graph::HloGraph;
//! use s4tf_xla::op::{ElemBinary, ElemUnary};
//! use s4tf_xla::exec::compile;
//! use s4tf_tensor::Tensor;
//!
//! // y = relu(x·2 + 1) — three elementwise ops fuse into one kernel.
//! let mut g = HloGraph::new();
//! let x = g.parameter(0, &[4]);
//! let two = g.constant(Tensor::scalar(2.0));
//! let one = g.constant(Tensor::scalar(1.0));
//! let m = g.binary(ElemBinary::Mul, x, two);
//! let a = g.binary(ElemBinary::Add, m, one);
//! let r = g.unary(ElemUnary::Relu, a);
//! g.mark_output(r);
//!
//! let exe = compile(&g);
//! let out = exe.run(&[&Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4])]);
//! assert_eq!(out[0].as_slice(), &[0.0, 1.0, 3.0, 5.0]);
//! assert_eq!(exe.kernel_count(), 1, "fused into a single kernel");
//! ```

pub mod cache;
pub mod codegen;
pub mod cost;
mod diag;
pub mod exec;
mod fault;
pub mod graph;
mod met;
pub mod op;
pub mod passes;
mod prof;

pub use cache::{CacheStats, ProgramCache};
pub use codegen::{codegen_enabled, set_codegen_enabled, CodegenStats};
pub use cost::op_cost;
pub use exec::{
    compile, compile_unoptimized, eval_op, eval_op_owned, plan_enabled, set_plan_enabled,
    Executable, PlanCounters,
};
pub use graph::{HloGraph, NodeId};
pub use op::{ElemBinary, ElemUnary, HloOp, ReduceKind};
pub use passes::{plan_memory, MemoryPlan};
