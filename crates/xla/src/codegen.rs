//! Fused-kernel codegen: compiles [`FusedInst`] programs into a
//! register-allocated linear IR and executes them without per-element
//! interpretation (DESIGN.md §6j).
//!
//! The fusion pass hands the executor a stack-machine program — one
//! scratch register per instruction, immediates refilled per chunk, a
//! dispatch branch per instruction per chunk. This module is the compile
//! stage behind it:
//!
//! 1. **Lowering** ([`get_or_compile`]): constant folding (same scalar
//!    `apply` the interpreter uses, so folded values are bit-identical),
//!    dead-code elimination, a mul+add/mul−sub peephole ([`IrInst::MulBin`]
//!    — still two roundings, never a hardware FMA, so results match the
//!    two-instruction spelling bit for bit), and liveness-based virtual
//!    register allocation that replaces the one-row-per-instruction
//!    scratch stack with the 2–4 rows a typical chain actually needs.
//! 2. **Specialization**: the compiled IR is pattern-matched against a
//!    closed set of monomorphized single-pass loop nests — the shapes the
//!    tracer actually emits (bias+activation epilogues, the SGD
//!    `p ← p − lr·g` update, `a·k₁ + b·k₂` momentum updates, relu/mul/add
//!    map chains, mask·dy backward products). Each specialized loop reads
//!    its operands and writes the output in one traversal: no register
//!    tile traffic at all.
//! 3. **Fallback register machine**: everything else runs the IR one
//!    pass per instruction over [`L8`]-lane register tiles, with operand
//!    resolution and instruction dispatch hoisted out of the element
//!    loop.
//!
//! Compiled kernels are cached by FNV-1a hash of the instruction
//! sequence (collisions checked structurally, mirroring the executable
//! cache), gated by `S4TF_CODEGEN` / [`set_codegen_enabled`], and
//! bit-identical to the interpreter by construction: every arithmetic
//! step applies the same scalar operation in the same order, and the
//! explicit-lane paths use only exact single-rounding IEEE ops
//! (`add`/`sub`/`mul`/`div`).

use crate::op::{ElemBinary, ElemUnary, FusedInst};
use crate::{met, prof};
use s4tf_tensor::simd::{L8, LANES};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI8, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Chunk width of one register row; matches the interpreter's chunking so
/// broadcast/alias materialization is shared and cache-resident.
pub(crate) const FUSED_CHUNK: usize = 512;
/// Elements per pool task (several chunks amortize the row allocation).
pub(crate) const FUSED_GRAIN: usize = 8 * FUSED_CHUNK;

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// Runtime override for fused-kernel codegen (−1 = unset, 0 = off, 1 = on).
static CODEGEN_OVERRIDE: AtomicI8 = AtomicI8::new(-1);
/// `S4TF_CODEGEN` read once; codegen defaults to on.
static CODEGEN_ENV: OnceLock<bool> = OnceLock::new();

/// Whether fused kernels execute through the compiled path.
///
/// Controlled by [`set_codegen_enabled`], else the `S4TF_CODEGEN`
/// environment variable (`0`/`false`/`off`/`no` disable), else on.
/// Results are bit-identical either way; the flag exists for A/B
/// measurement and as a safety valve.
pub fn codegen_enabled() -> bool {
    match CODEGEN_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *CODEGEN_ENV.get_or_init(|| {
            !std::env::var("S4TF_CODEGEN")
                .map(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    v == "0" || v == "false" || v == "off" || v == "no"
                })
                .unwrap_or(false)
        }),
    }
}

/// Programmatic override of [`codegen_enabled`] (takes precedence over
/// the environment). Process-wide, for tests and experiments.
pub fn set_codegen_enabled(enabled: bool) {
    CODEGEN_OVERRIDE.store(enabled as i8, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static SPECIALIZED: AtomicU64 = AtomicU64::new(0);
static FALLBACK: AtomicU64 = AtomicU64::new(0);
static DISTINCT_SPECIALIZED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the codegen cache and execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenStats {
    /// Cache lookups that found an already-compiled kernel.
    pub hits: u64,
    /// Cache lookups that compiled a new kernel.
    pub misses: u64,
    /// Kernel launches that ran a specialized loop nest.
    pub specialized: u64,
    /// Kernel launches that ran the generic register machine.
    pub fallback: u64,
    /// Distinct compiled kernels that have executed specialized at least
    /// once — the "how many fused patterns did codegen close over" number.
    pub distinct_specialized: u64,
}

/// Process-wide codegen counters (also exported as
/// `s4tf_xla_codegen_total{result=…}` metrics and `xla.codegen.*`
/// profile counters).
pub fn stats() -> CodegenStats {
    CodegenStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        specialized: SPECIALIZED.load(Ordering::Relaxed),
        fallback: FALLBACK.load(Ordering::Relaxed),
        distinct_specialized: DISTINCT_SPECIALIZED.load(Ordering::Relaxed),
    }
}

fn result_counter(result: &str, help: &'static str) -> &'static met::Counter {
    met::counter(
        &format!("s4tf_xla_codegen_total{{result=\"{result}\"}}"),
        help,
    )
}

fn hit_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| result_counter("hit", "Fused-kernel codegen cache lookups, by outcome"))
}

fn miss_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| result_counter("miss", "Fused-kernel codegen cache lookups, by outcome"))
}

fn specialized_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        result_counter(
            "specialized",
            "Fused-kernel launches that ran a specialized loop nest",
        )
    })
}

fn fallback_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        result_counter(
            "fallback",
            "Fused-kernel launches that ran the generic register machine",
        )
    })
}

fn patterns_counter() -> &'static met::Counter {
    static C: OnceLock<&'static met::Counter> = OnceLock::new();
    C.get_or_init(|| {
        met::counter(
            "s4tf_xla_codegen_patterns",
            "Distinct compiled fused kernels that have run specialized",
        )
    })
}

// ---------------------------------------------------------------------------
// IR
// ---------------------------------------------------------------------------

/// Destination sentinel: the instruction writes the kernel output
/// directly (always and only the final instruction).
pub const DST_OUT: u8 = u8::MAX;

/// An operand of a compiled instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A virtual register (a `FUSED_CHUNK`-wide row).
    Reg(u8),
    /// Kernel input `i`, read directly (full-shape) or from a
    /// materialized broadcast/alias row.
    In(u8),
    /// Immediate pool entry `k` (materialized into a row once per task).
    Imm(u8),
}

/// One compiled instruction. `dst` is a virtual register or [`DST_OUT`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IrInst {
    /// `dst = a` — degenerate programs whose output is an input or a
    /// folded constant.
    Copy {
        /// Destination register.
        dst: u8,
        /// Source operand.
        a: Src,
    },
    /// `dst = op(a)`.
    Unary {
        /// Operation.
        op: ElemUnary,
        /// Destination register.
        dst: u8,
        /// Operand.
        a: Src,
    },
    /// `dst = op(a, b)`.
    Binary {
        /// Operation.
        op: ElemBinary,
        /// Destination register.
        dst: u8,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// The mul+add/sub peephole: `op(a·b, c)` when `mul_first`, else
    /// `op(c, a·b)`. Computed as two single-rounding IEEE ops (the
    /// product is rounded, then combined), so the value is bit-identical
    /// to the separate mul and add/sub instructions it replaced — the
    /// win is one traversal instead of two, not contraction.
    MulBin {
        /// Combining operation (`Add` or `Sub`).
        op: ElemBinary,
        /// Destination register.
        dst: u8,
        /// Product left operand.
        a: Src,
        /// Product right operand.
        b: Src,
        /// The non-product operand.
        c: Src,
        /// Whether the product is `op`'s left operand.
        mul_first: bool,
    },
}

impl IrInst {
    fn dst(&self) -> u8 {
        match *self {
            IrInst::Copy { dst, .. }
            | IrInst::Unary { dst, .. }
            | IrInst::Binary { dst, .. }
            | IrInst::MulBin { dst, .. } => dst,
        }
    }
}

/// The closed set of specialized loop nests, detected by matching the
/// compiled IR. Operand positions come from the IR at launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Spec {
    /// Output is a folded constant.
    Fill(f32),
    /// Output is an input passthrough.
    CopyIn,
    /// `out = u(x)`.
    Act1(ElemUnary),
    /// `out = u2(u1(x))`.
    Act2(ElemUnary, ElemUnary),
    /// `out = act(a ⊕ b)` — bias/residual + activation epilogues.
    BinAct(ElemBinary, Option<ElemUnary>),
    /// `out = act(op(a·b, c))` (operand order per `mul_first`) — the SGD
    /// update `p + g·(−lr)`, affine maps `relu(x·m + k)`, saxpy.
    MulBinAct(ElemBinary, Option<ElemUnary>),
    /// `out = op₂(op₁(p, q), r)` / `op₂(r, op₁(p, q))` — loss-gradient
    /// scalings `(softmax − labels)/B`, relu-backward `mask(x)·dy`.
    BinBin(ElemBinary, ElemBinary),
    /// `out = op(a·b, c·d)` — the momentum update `v·μ + g·(−lr)`.
    Axpby(ElemBinary),
}

impl Spec {
    fn name(self) -> &'static str {
        match self {
            Spec::Fill(_) => "fill",
            Spec::CopyIn => "copy",
            Spec::Act1(_) => "act1",
            Spec::Act2(..) => "act2",
            Spec::BinAct(..) => "bin_act",
            Spec::MulBinAct(..) => "mulbin_act",
            Spec::BinBin(..) => "bin_bin",
            Spec::Axpby(_) => "axpby",
        }
    }
}

/// A fused program compiled to linear IR, ready to launch.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The source program (kept for cache collision checks).
    insts: Vec<FusedInst>,
    ir: Vec<IrInst>,
    n_regs: usize,
    imms: Vec<f32>,
    /// Which kernel inputs the compiled IR actually reads.
    input_live: Vec<bool>,
    spec: Option<Spec>,
    /// Scalar ops per output element in the compiled IR (`MulBin` = 2,
    /// `Copy` = 0) — the honest FLOP count for the cost model.
    flops_per_elem: u64,
    /// First-specialized-run latch for the distinct-pattern counter.
    ran_specialized: AtomicBool,
}

impl CompiledKernel {
    /// The compiled instruction sequence.
    pub fn ir(&self) -> &[IrInst] {
        &self.ir
    }

    /// Virtual registers the fallback machine needs (vs one scratch row
    /// per instruction in the interpreter).
    pub fn register_count(&self) -> usize {
        self.n_regs
    }

    /// Name of the specialized loop nest this kernel dispatches to, or
    /// `None` when it runs the generic register machine.
    pub fn specialization(&self) -> Option<&'static str> {
        self.spec.map(Spec::name)
    }

    /// Scalar ops per output element in the compiled IR.
    pub fn flops_per_elem(&self) -> u64 {
        self.flops_per_elem
    }

    /// Whether the compiled IR reads kernel input `i` (dead and folded
    /// inputs cost no memory traffic).
    pub fn input_live(&self, i: usize) -> bool {
        self.input_live.get(i).copied().unwrap_or(false)
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Per-slot value classification after constant folding.
#[derive(Clone, Copy, PartialEq)]
enum Slot {
    Const(f32),
    In(usize),
    Dyn,
}

/// Pre-allocation instruction: operands are still source-slot indices.
#[derive(Clone, Copy)]
enum PreOp {
    Copy(usize),
    Unary(ElemUnary, usize),
    Binary(ElemBinary, usize, usize),
    MulBin(ElemBinary, usize, usize, usize, bool),
}

/// Upper bound on compilable program length (virtual registers are `u8`
/// with [`DST_OUT`] reserved; real fused chains are far shorter).
const MAX_INSTS: usize = 128;

/// Lowers a fused program. `Err` means the program is outside the
/// compilable envelope (too long, malformed operand references) and must
/// run on the interpreter.
fn lower(insts: &[FusedInst]) -> Result<CompiledKernel, &'static str> {
    if insts.is_empty() {
        return Err("empty program");
    }
    if insts.len() > MAX_INSTS {
        return Err("program too long");
    }
    let len = insts.len();
    let n_inputs = insts
        .iter()
        .map(|i| match i {
            FusedInst::Input(i) => i + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    // 1. Classify slots, folding constants with the same scalar `apply`
    // the interpreter's chunk loops use (bit-identical by construction).
    let mut val = Vec::with_capacity(len);
    for (i, inst) in insts.iter().enumerate() {
        let v = match inst {
            FusedInst::Input(p) => Slot::In(*p),
            FusedInst::Imm(x) => Slot::Const(*x),
            FusedInst::Unary(u, a) => {
                if *a >= i {
                    return Err("forward operand reference");
                }
                match val[*a] {
                    Slot::Const(x) => Slot::Const(u.apply(x)),
                    _ => Slot::Dyn,
                }
            }
            FusedInst::Binary(b, a, c) => {
                if *a >= i || *c >= i {
                    return Err("forward operand reference");
                }
                match (val[*a], val[*c]) {
                    (Slot::Const(x), Slot::Const(y)) => Slot::Const(b.apply(x, y)),
                    _ => Slot::Dyn,
                }
            }
        };
        val.push(v);
    }

    // 2. Liveness from the output slot backward (operands always refer
    // to earlier slots, so one reverse sweep suffices).
    let out_slot = len - 1;
    let mut live = vec![false; len];
    live[out_slot] = true;
    for i in (0..len).rev() {
        if !live[i] || val[i] != Slot::Dyn {
            continue;
        }
        match insts[i] {
            FusedInst::Unary(_, a) => live[a] = true,
            FusedInst::Binary(_, a, c) => {
                live[a] = true;
                live[c] = true;
            }
            _ => {}
        }
    }

    // Degenerate outputs: the whole program is a fill or a passthrough.
    let mut prog: Vec<(usize, PreOp)> = Vec::new();
    match val[out_slot] {
        Slot::Const(_) | Slot::In(_) => prog.push((out_slot, PreOp::Copy(out_slot))),
        Slot::Dyn => {
            // 3. Use counts among live dynamic consumers, for the peephole's
            // single-use test.
            let mut uses = vec![0usize; len];
            for i in 0..len {
                if !live[i] || val[i] != Slot::Dyn {
                    continue;
                }
                match insts[i] {
                    FusedInst::Unary(_, a) => uses[a] += 1,
                    FusedInst::Binary(_, a, c) => {
                        uses[a] += 1;
                        uses[c] += 1;
                    }
                    _ => {}
                }
            }

            // 4. Peephole: a single-use dynamic Mul feeding an Add/Sub is
            // absorbed into one MulBin traversal (operand order preserved).
            let mut absorbed = vec![false; len];
            let absorbable = |s: usize, absorbed: &[bool]| {
                live[s]
                    && !absorbed[s]
                    && val[s] == Slot::Dyn
                    && uses[s] == 1
                    && matches!(insts[s], FusedInst::Binary(ElemBinary::Mul, _, _))
            };
            for i in 0..len {
                if !live[i] || val[i] != Slot::Dyn {
                    continue;
                }
                let pre = match insts[i] {
                    FusedInst::Unary(u, a) => PreOp::Unary(u, a),
                    FusedInst::Binary(op @ (ElemBinary::Add | ElemBinary::Sub), a, c) => {
                        if absorbable(a, &absorbed) {
                            absorbed[a] = true;
                            let FusedInst::Binary(_, ma, mb) = insts[a] else {
                                unreachable!()
                            };
                            PreOp::MulBin(op, ma, mb, c, true)
                        } else if absorbable(c, &absorbed) {
                            absorbed[c] = true;
                            let FusedInst::Binary(_, ma, mb) = insts[c] else {
                                unreachable!()
                            };
                            PreOp::MulBin(op, ma, mb, a, false)
                        } else {
                            PreOp::Binary(op, a, c)
                        }
                    }
                    FusedInst::Binary(op, a, c) => PreOp::Binary(op, a, c),
                    _ => unreachable!("Input/Imm slots are never Dyn"),
                };
                prog.push((i, pre));
            }
            prog.retain(|(slot, _)| !absorbed[*slot]);
        }
    }

    // 5. Register allocation: last-use liveness with a free list. The
    // destination is drawn *before* operands are released, so an
    // instruction never writes the row it is reading (keeps the
    // execution borrows disjoint).
    let mut last_use: Vec<Option<usize>> = vec![None; len];
    for (pi, (_, pre)) in prog.iter().enumerate() {
        let mut mark = |s: usize| {
            if val[s] == Slot::Dyn {
                last_use[s] = Some(pi);
            }
        };
        match *pre {
            PreOp::Copy(a) | PreOp::Unary(_, a) => mark(a),
            PreOp::Binary(_, a, b) => {
                mark(a);
                mark(b);
            }
            PreOp::MulBin(_, a, b, c, _) => {
                mark(a);
                mark(b);
                mark(c);
            }
        }
    }

    let mut imms: Vec<f32> = Vec::new();
    let imm_index = |x: f32, imms: &mut Vec<f32>| -> u8 {
        match imms.iter().position(|v| v.to_bits() == x.to_bits()) {
            Some(k) => k as u8,
            None => {
                imms.push(x);
                (imms.len() - 1) as u8
            }
        }
    };
    let mut reg_of: Vec<Option<u8>> = vec![None; len];
    let mut free: Vec<u8> = Vec::new();
    let mut n_regs: usize = 0;
    let mut input_live = vec![false; n_inputs];
    let mut ir = Vec::with_capacity(prog.len());
    for (pi, &(slot, pre)) in prog.iter().enumerate() {
        let src = |s: usize, imms: &mut Vec<f32>, input_live: &mut [bool]| -> Src {
            match val[s] {
                Slot::Const(x) => Src::Imm(imm_index(x, imms)),
                Slot::In(i) => {
                    input_live[i] = true;
                    Src::In(i as u8)
                }
                Slot::Dyn => Src::Reg(reg_of[s].expect("operand register allocated")),
            }
        };
        let (inst, operands): (IrInst, [Option<usize>; 3]) = {
            let dst = if slot == out_slot {
                DST_OUT
            } else {
                free.pop().unwrap_or_else(|| {
                    n_regs += 1;
                    (n_regs - 1) as u8
                })
            };
            match pre {
                PreOp::Copy(a) => (
                    IrInst::Copy {
                        dst,
                        a: src(a, &mut imms, &mut input_live),
                    },
                    [Some(a), None, None],
                ),
                PreOp::Unary(op, a) => (
                    IrInst::Unary {
                        op,
                        dst,
                        a: src(a, &mut imms, &mut input_live),
                    },
                    [Some(a), None, None],
                ),
                PreOp::Binary(op, a, b) => (
                    IrInst::Binary {
                        op,
                        dst,
                        a: src(a, &mut imms, &mut input_live),
                        b: src(b, &mut imms, &mut input_live),
                    },
                    [Some(a), Some(b), None],
                ),
                PreOp::MulBin(op, a, b, c, mul_first) => (
                    IrInst::MulBin {
                        op,
                        dst,
                        a: src(a, &mut imms, &mut input_live),
                        b: src(b, &mut imms, &mut input_live),
                        c: src(c, &mut imms, &mut input_live),
                        mul_first,
                    },
                    [Some(a), Some(b), Some(c)],
                ),
            }
        };
        if slot != out_slot {
            reg_of[slot] = Some(inst.dst());
        }
        // Release operand registers at their last use (deduplicated: an
        // instruction may reference one slot twice).
        let mut released: [Option<usize>; 3] = [None; 3];
        for o in operands.into_iter().flatten() {
            if val[o] == Slot::Dyn && last_use[o] == Some(pi) && !released.contains(&Some(o)) {
                released[released.iter().position(|r| r.is_none()).unwrap()] = Some(o);
                free.push(reg_of[o].expect("operand register allocated"));
            }
        }
        ir.push(inst);
    }

    let flops_per_elem: u64 = ir
        .iter()
        .map(|i| match i {
            IrInst::Copy { .. } => 0,
            IrInst::Unary { .. } | IrInst::Binary { .. } => 1,
            IrInst::MulBin { .. } => 2,
        })
        .sum();

    let spec = detect_spec(&ir, &imms);
    Ok(CompiledKernel {
        insts: insts.to_vec(),
        ir,
        n_regs,
        imms,
        input_live,
        spec,
        flops_per_elem,
        ran_specialized: AtomicBool::new(false),
    })
}

/// `Src` is not a register?
fn leaf(s: Src) -> bool {
    !matches!(s, Src::Reg(_))
}

/// Matches the compiled IR against the specialized loop-nest set.
fn detect_spec(ir: &[IrInst], imms: &[f32]) -> Option<Spec> {
    match *ir {
        [IrInst::Copy { a: Src::Imm(k), .. }] => Some(Spec::Fill(imms[k as usize])),
        [IrInst::Copy { a: Src::In(_), .. }] => Some(Spec::CopyIn),
        [IrInst::Unary { op, a, .. }] if leaf(a) => Some(Spec::Act1(op)),
        [IrInst::Unary {
            op: u1,
            dst: d0,
            a: a0,
        }, IrInst::Unary {
            op: u2,
            a: Src::Reg(r),
            ..
        }] if leaf(a0) && r == d0 => Some(Spec::Act2(u1, u2)),
        [IrInst::Binary { op, a, b, .. }] if leaf(a) && leaf(b) => Some(Spec::BinAct(op, None)),
        [IrInst::Binary { op, dst: d0, a, b }, IrInst::Unary {
            op: act,
            a: Src::Reg(r),
            ..
        }] if leaf(a) && leaf(b) && r == d0 => Some(Spec::BinAct(op, Some(act))),
        [IrInst::MulBin { op, a, b, c, .. }] if leaf(a) && leaf(b) && leaf(c) => {
            Some(Spec::MulBinAct(op, None))
        }
        [IrInst::MulBin {
            op,
            dst: d0,
            a,
            b,
            c,
            ..
        }, IrInst::Unary {
            op: act,
            a: Src::Reg(r),
            ..
        }] if leaf(a) && leaf(b) && leaf(c) && r == d0 => Some(Spec::MulBinAct(op, Some(act))),
        // Momentum update: a standalone product feeding the non-product
        // side of a MulBin — `op(a·b, p·q)` in program order.
        [IrInst::Binary {
            op: ElemBinary::Mul,
            dst: d0,
            a: p,
            b: q,
        }, IrInst::MulBin {
            op,
            a,
            b,
            c: Src::Reg(r),
            ..
        }] if leaf(p) && leaf(q) && leaf(a) && leaf(b) && r == d0 => Some(Spec::Axpby(op)),
        [IrInst::Binary {
            op: op1,
            dst: d0,
            a: p,
            b: q,
        }, IrInst::Binary { op: op2, a, b, .. }]
            if leaf(p) && leaf(q) =>
        {
            match (a, b) {
                (Src::Reg(r), other) if r == d0 && leaf(other) => Some(Spec::BinBin(op1, op2)),
                (other, Src::Reg(r)) if r == d0 && leaf(other) => Some(Spec::BinBin(op1, op2)),
                _ => None,
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// FNV-1a fingerprint of a fused program (the codegen cache key; mirrors
/// the executable cache's graph fingerprint).
pub fn fingerprint(insts: &[FusedInst]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for inst in insts {
        match inst {
            FusedInst::Input(i) => {
                eat(&[0]);
                eat(&(*i as u64).to_le_bytes());
            }
            FusedInst::Imm(x) => {
                eat(&[1]);
                eat(&x.to_bits().to_le_bytes());
            }
            FusedInst::Unary(u, a) => {
                eat(&[2, *u as u8]);
                eat(&(*a as u64).to_le_bytes());
            }
            FusedInst::Binary(b, a, c) => {
                eat(&[3, *b as u8]);
                eat(&(*a as u64).to_le_bytes());
                eat(&(*c as u64).to_le_bytes());
            }
        }
    }
    h
}

#[derive(Default)]
struct Cache {
    kernels: HashMap<u64, Vec<Arc<CompiledKernel>>>,
    /// Fingerprints of programs `lower` rejected, so the interpreter
    /// fallback is decided once. (A colliding *compilable* program would
    /// merely skip codegen — a perf miss, never a correctness issue.)
    failed: HashSet<u64>,
}

fn cache() -> &'static Mutex<Cache> {
    static C: OnceLock<Mutex<Cache>> = OnceLock::new();
    C.get_or_init(Mutex::default)
}

fn lookup(insts: &[FusedInst], count: bool) -> Option<Arc<CompiledKernel>> {
    let h = fingerprint(insts);
    let mut c = cache().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(bucket) = c.kernels.get(&h) {
        if let Some(k) = bucket.iter().find(|k| k.insts == insts) {
            if count {
                HITS.fetch_add(1, Ordering::Relaxed);
                hit_counter().inc();
                prof::counter_add("xla.codegen.hit", 1);
            }
            return Some(k.clone());
        }
    }
    if c.failed.contains(&h) {
        return None;
    }
    if count {
        MISSES.fetch_add(1, Ordering::Relaxed);
        miss_counter().inc();
        prof::counter_add("xla.codegen.miss", 1);
    }
    match lower(insts) {
        Ok(k) => {
            crate::diag::event!(
                "xla.codegen.compile",
                insts = insts.len(),
                ir = k.ir.len(),
                regs = k.n_regs,
                spec = k.spec.map(Spec::name).unwrap_or("fallback"),
            );
            let arc = Arc::new(k);
            c.kernels.entry(h).or_default().push(arc.clone());
            Some(arc)
        }
        Err(why) => {
            crate::diag::event!("xla.codegen.reject", insts = insts.len(), why = why);
            c.failed.insert(h);
            None
        }
    }
}

/// Compiles `insts` (or returns the cached kernel). `None` means the
/// program is outside the compilable envelope and must be interpreted.
pub fn get_or_compile(insts: &[FusedInst]) -> Option<Arc<CompiledKernel>> {
    lookup(insts, true)
}

/// [`get_or_compile`] without touching the hit/miss counters — for
/// consumers that want the IR (cost model, introspection), not a launch.
pub(crate) fn peek_or_compile(insts: &[FusedInst]) -> Option<Arc<CompiledKernel>> {
    lookup(insts, false)
}

/// Per-node compiled-kernel table for an optimized graph, built at
/// executable-compile time so launch-path lookups are a vector index.
pub(crate) fn fused_table(graph: &crate::graph::HloGraph) -> Vec<Option<Arc<CompiledKernel>>> {
    graph
        .nodes
        .iter()
        .map(|node| match &node.op {
            crate::op::HloOp::Fused { insts, .. } => get_or_compile(insts),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// How a kernel input resolves for one launch.
#[derive(Clone, Copy)]
enum InClass {
    /// Full-shape: read directly at the global offset.
    Full,
    /// Trailing-suffix broadcast: materialized into a row per chunk.
    Bcast,
    /// Aliases the output buffer (in-place launch): materialized from
    /// the not-yet-written output chunk.
    Alias,
    /// Never read by the compiled IR.
    Dead,
}

/// Cyclically copies `src` into `dst` starting at global element
/// position `global` — the broadcast materialization `dst[j] =
/// src[(global + j) % src.len()]`, as slice copies instead of a
/// per-element modulo.
pub(crate) fn fill_cycle(dst: &mut [f32], src: &[f32], global: usize) {
    let m = src.len();
    if m == 1 {
        dst.fill(src[0]);
        return;
    }
    let mut pos = global % m;
    let mut w = 0;
    while w < dst.len() {
        let take = (m - pos).min(dst.len() - w);
        dst[w..w + take].copy_from_slice(&src[pos..pos + take]);
        w += take;
        pos += take;
        if pos == m {
            pos = 0;
        }
    }
}

/// Everything a chunk needs to resolve operands to slices.
struct ChunkCtx<'a> {
    slices: &'a [Option<&'a [f32]>],
    classes: &'a [InClass],
    input_row: &'a [Option<usize>],
    imm_base: usize,
    reg_base: usize,
    /// Global element index of this chunk's first element.
    global: usize,
    len: usize,
}

impl<'a> ChunkCtx<'a> {
    /// A leaf operand that is constant across the whole launch — an
    /// immediate, or a scalar input — as a hoistable scalar. Alias
    /// inputs never qualify (they track the output buffer).
    #[inline(always)]
    fn scalar_leaf(&self, imms: &[f32], s: Src) -> Option<f32> {
        match s {
            Src::Imm(k) => Some(imms[k as usize]),
            Src::In(i) => match self.slices[i as usize] {
                Some(src) if src.len() == 1 => Some(src[0]),
                _ => None,
            },
            Src::Reg(_) => None,
        }
    }

    /// Resolves a non-register operand against the read-only row file.
    /// `rows` is addressed with absolute row indices.
    #[inline(always)]
    fn leaf_operand<'r>(&self, rows: &'r [f32], s: Src) -> &'r [f32]
    where
        'a: 'r,
    {
        match s {
            Src::Imm(k) => {
                let off = (self.imm_base + k as usize) * FUSED_CHUNK;
                &rows[off..off + self.len]
            }
            Src::In(i) => match self.classes[i as usize] {
                InClass::Full => {
                    let src = self.slices[i as usize].expect("full input has a slice");
                    &src[self.global..self.global + self.len]
                }
                _ => {
                    let row = self.input_row[i as usize].expect("broadcast/alias input has a row");
                    let off = row * FUSED_CHUNK;
                    &rows[off..off + self.len]
                }
            },
            Src::Reg(_) => unreachable!("specialized loops have no register operands"),
        }
    }

    /// Resolves any operand when the row file is split around the
    /// destination row (`lo` = rows `< split`, `hi` = rows `> split`,
    /// both addressed with absolute row indices).
    #[inline(always)]
    fn operand<'r>(&self, lo: &'r [f32], hi: &'r [f32], split: usize, s: Src) -> &'r [f32]
    where
        'a: 'r,
    {
        let row = match s {
            Src::Reg(r) => self.reg_base + r as usize,
            Src::Imm(k) => self.imm_base + k as usize,
            Src::In(i) => match self.classes[i as usize] {
                InClass::Full => {
                    let src = self.slices[i as usize].expect("full input has a slice");
                    return &src[self.global..self.global + self.len];
                }
                _ => self.input_row[i as usize].expect("broadcast/alias input has a row"),
            },
        };
        debug_assert_ne!(row, split, "destination row is never an operand");
        if row < split {
            let off = row * FUSED_CHUNK;
            &lo[off..off + self.len]
        } else {
            let off = (row - split - 1) * FUSED_CHUNK;
            &hi[off..off + self.len]
        }
    }
}

// --- elementwise loop drivers -------------------------------------------
//
// Each driver is generic over the per-element function; the dispatch
// matches below instantiate them with *literal* enum values, so every
// (op, act) combination monomorphizes into its own closed-form loop with
// the `apply` calls constant-folded — the "macro-monomorphized loop
// nest" set, realized through generic instantiation.

/// A read stream feeding a specialized loop: either a slice or a
/// launch-constant scalar (immediates, scalar broadcasts) hoisted into
/// a register — the hoisted form removes an L1 row read per element and
/// lets the constant live in a vector register across the whole loop.
trait Rd: Copy {
    /// Narrows a slice stream to the loop extent so per-element reads
    /// are provably in bounds (no effect on scalars).
    fn clip(self, n: usize) -> Self;
    fn at(self, i: usize) -> f32;
}

impl Rd for f32 {
    #[inline(always)]
    fn clip(self, _n: usize) -> Self {
        self
    }
    #[inline(always)]
    fn at(self, _i: usize) -> f32 {
        self
    }
}

impl Rd for &[f32] {
    #[inline(always)]
    fn clip(self, n: usize) -> Self {
        &self[..n]
    }
    #[inline(always)]
    fn at(self, i: usize) -> f32 {
        self[i]
    }
}

#[inline(always)]
fn ew1(dst: &mut [f32], a: &[f32], f: impl Fn(f32) -> f32) {
    for (d, &x) in dst.iter_mut().zip(a) {
        *d = f(x);
    }
}

#[inline(always)]
fn ew2<A: Rd, B: Rd>(dst: &mut [f32], a: A, b: B, f: impl Fn(f32, f32) -> f32) {
    let n = dst.len();
    let (a, b) = (a.clip(n), b.clip(n));
    for (i, d) in dst.iter_mut().enumerate() {
        *d = f(a.at(i), b.at(i));
    }
}

#[inline(always)]
fn ew3<A: Rd, B: Rd, C: Rd>(dst: &mut [f32], a: A, b: B, c: C, f: impl Fn(f32, f32, f32) -> f32) {
    let n = dst.len();
    let (a, b, c) = (a.clip(n), b.clip(n), c.clip(n));
    for (i, d) in dst.iter_mut().enumerate() {
        *d = f(a.at(i), b.at(i), c.at(i));
    }
}

#[inline(always)]
fn ew4<A: Rd, B: Rd, C: Rd, E: Rd>(
    dst: &mut [f32],
    a: A,
    b: B,
    c: C,
    e: E,
    f: impl Fn(f32, f32, f32, f32) -> f32,
) {
    let n = dst.len();
    let (a, b, c, e) = (a.clip(n), b.clip(n), c.clip(n), e.clip(n));
    for (i, d) in dst.iter_mut().enumerate() {
        *d = f(a.at(i), b.at(i), c.at(i), e.at(i));
    }
}

/// Expands `$body` once per [`ElemUnary`] variant with `$f` bound to a
/// *distinct closure type* over the literal variant — each arm's loop
/// monomorphizes with the scalar op inlined (a function-pointer dispatch
/// here would cost an indirect call per element and block
/// vectorization). The scalar expression is the enum's own `apply`, so
/// folding, interpretation and specialized loops agree bit for bit.
macro_rules! with_unary {
    ($u:expr, $f:ident => $body:expr) => {
        match $u {
            ElemUnary::Neg => {
                let $f = |x: f32| ElemUnary::Neg.apply(x);
                $body
            }
            ElemUnary::Exp => {
                let $f = |x: f32| ElemUnary::Exp.apply(x);
                $body
            }
            ElemUnary::Ln => {
                let $f = |x: f32| ElemUnary::Ln.apply(x);
                $body
            }
            ElemUnary::Sqrt => {
                let $f = |x: f32| ElemUnary::Sqrt.apply(x);
                $body
            }
            ElemUnary::Tanh => {
                let $f = |x: f32| ElemUnary::Tanh.apply(x);
                $body
            }
            ElemUnary::Sigmoid => {
                let $f = |x: f32| ElemUnary::Sigmoid.apply(x);
                $body
            }
            ElemUnary::Relu => {
                let $f = |x: f32| ElemUnary::Relu.apply(x);
                $body
            }
            ElemUnary::Square => {
                let $f = |x: f32| ElemUnary::Square.apply(x);
                $body
            }
            ElemUnary::Recip => {
                let $f = |x: f32| ElemUnary::Recip.apply(x);
                $body
            }
        }
    };
}

/// Binary counterpart of [`with_unary!`].
macro_rules! with_binary {
    ($b:expr, $f:ident => $body:expr) => {
        match $b {
            ElemBinary::Add => {
                let $f = |x: f32, y: f32| ElemBinary::Add.apply(x, y);
                $body
            }
            ElemBinary::Sub => {
                let $f = |x: f32, y: f32| ElemBinary::Sub.apply(x, y);
                $body
            }
            ElemBinary::Mul => {
                let $f = |x: f32, y: f32| ElemBinary::Mul.apply(x, y);
                $body
            }
            ElemBinary::Div => {
                let $f = |x: f32, y: f32| ElemBinary::Div.apply(x, y);
                $body
            }
            ElemBinary::Max => {
                let $f = |x: f32, y: f32| ElemBinary::Max.apply(x, y);
                $body
            }
            ElemBinary::Min => {
                let $f = |x: f32, y: f32| ElemBinary::Min.apply(x, y);
                $body
            }
            ElemBinary::GreaterMask => {
                let $f = |x: f32, y: f32| ElemBinary::GreaterMask.apply(x, y);
                $body
            }
            ElemBinary::Pow => {
                let $f = |x: f32, y: f32| ElemBinary::Pow.apply(x, y);
                $body
            }
        }
    };
}

/// Binds `$x` to either the hoisted launch-constant scalar or the
/// resolved row slice of a leaf operand — two *distinct types*, so the
/// loop in `$body` monomorphizes both ways and the scalar form carries
/// no per-element row read.
macro_rules! with_rd {
    ($k:expr, $ctx:expr, $rows:expr, $s:expr, $x:ident => $body:expr) => {
        match $ctx.scalar_leaf(&$k.imms, $s) {
            Some(v) => {
                let $x = v;
                $body
            }
            None => {
                let $x = $ctx.leaf_operand($rows, $s);
                $body
            }
        }
    };
}

/// Optional-activation epilogue over a two-operand loop: expands to one
/// monomorphized loop per activation (and one without).
macro_rules! act_over2 {
    ($dst:expr, $a:expr, $b:expr, $act:expr, $f2:ident) => {
        match $act {
            None => ew2($dst, $a, $b, $f2),
            Some(u) => with_unary!(u, f1 => ew2($dst, $a, $b, |x, y| f1($f2(x, y)))),
        }
    };
}

/// Three-operand counterpart of [`act_over2!`] (`$f3` is a bound closure
/// name, so every (combiner, activation) pair gets its own loop).
macro_rules! act_over3 {
    ($dst:expr, $a:expr, $b:expr, $c:expr, $act:expr, $f3:ident) => {
        match $act {
            None => ew3($dst, $a, $b, $c, $f3),
            Some(u) => with_unary!(u, f1 => ew3($dst, $a, $b, $c, |x, y, z| f1($f3(x, y, z)))),
        }
    };
}

// --- explicit-lane drivers (fallback machine) ---------------------------

/// `dst[j] = fl(a[j], b[j])` over [`L8`] lanes with a scalar tail. Only
/// used for exact single-rounding ops (`fl` and `fs` must be the same
/// IEEE operation), so lane and scalar spellings are bit-identical.
#[inline(always)]
fn lanes2(
    dst: &mut [f32],
    a: &[f32],
    b: &[f32],
    fl: impl Fn(L8, L8) -> L8,
    fs: impl Fn(f32, f32) -> f32,
) {
    let n = dst.len();
    let mut j = 0;
    while j + LANES <= n {
        fl(L8::load(&a[j..]), L8::load(&b[j..])).store(&mut dst[j..]);
        j += LANES;
    }
    while j < n {
        dst[j] = fs(a[j], b[j]);
        j += 1;
    }
}

/// Three-operand lane driver for [`IrInst::MulBin`].
#[inline(always)]
fn lanes3(
    dst: &mut [f32],
    a: &[f32],
    b: &[f32],
    c: &[f32],
    fl: impl Fn(L8, L8, L8) -> L8,
    fs: impl Fn(f32, f32, f32) -> f32,
) {
    let n = dst.len();
    let mut j = 0;
    while j + LANES <= n {
        fl(L8::load(&a[j..]), L8::load(&b[j..]), L8::load(&c[j..])).store(&mut dst[j..]);
        j += LANES;
    }
    while j < n {
        dst[j] = fs(a[j], b[j], c[j]);
        j += 1;
    }
}

/// One `MulBin` pass: the product is rounded, then combined — per lane
/// and per scalar tail element alike, so all spellings agree bitwise.
#[inline(always)]
fn mulbin_pass(dst: &mut [f32], a: &[f32], b: &[f32], c: &[f32], op: ElemBinary, mul_first: bool) {
    match (op, mul_first) {
        (ElemBinary::Add, _) => {
            // IEEE addition is commutative, so operand order is free here.
            lanes3(
                dst,
                a,
                b,
                c,
                |x, y, z| x.mul(y).add(z),
                |x, y, z| (x * y) + z,
            );
        }
        (ElemBinary::Sub, true) => {
            lanes3(
                dst,
                a,
                b,
                c,
                |x, y, z| x.mul(y).sub(z),
                |x, y, z| (x * y) - z,
            );
        }
        (ElemBinary::Sub, false) => {
            lanes3(
                dst,
                a,
                b,
                c,
                |x, y, z| z.sub(x.mul(y)),
                |x, y, z| z - (x * y),
            );
        }
        _ => unreachable!("peephole emits only Add/Sub MulBin"),
    }
}

impl CompiledKernel {
    /// Executes the compiled kernel. `slices[i] = None` marks input `i`
    /// as aliasing `out` (in-place launch on a dying buffer), exactly as
    /// in the interpreter. Returns `true` when the specialized path ran.
    pub(crate) fn run(&self, slices: &[Option<&[f32]>], n: usize, out: &mut [f32]) -> bool {
        let use_spec = self.spec.is_some();
        if use_spec {
            SPECIALIZED.fetch_add(1, Ordering::Relaxed);
            specialized_counter().inc();
            prof::counter_add("xla.codegen.specialized", 1);
            if !self.ran_specialized.swap(true, Ordering::Relaxed) {
                DISTINCT_SPECIALIZED.fetch_add(1, Ordering::Relaxed);
                patterns_counter().inc();
            }
        } else {
            FALLBACK.fetch_add(1, Ordering::Relaxed);
            fallback_counter().inc();
            prof::counter_add("xla.codegen.fallback", 1);
        }

        // Launch-wide input classification and row layout: registers
        // first (fallback only), immediates, then one row per
        // broadcast/alias input the IR reads.
        let classes: Vec<InClass> = (0..slices.len())
            .map(|i| {
                if !self.input_live(i) {
                    return InClass::Dead;
                }
                match slices[i] {
                    None => InClass::Alias,
                    Some(s) if s.len() == n => InClass::Full,
                    Some(_) => InClass::Bcast,
                }
            })
            .collect();
        let reg_base = 0usize;
        let imm_base = if use_spec { 0 } else { self.n_regs };
        let mut next_row = imm_base + self.imms.len();
        let input_row: Vec<Option<usize>> = classes
            .iter()
            .map(|c| match c {
                InClass::Bcast | InClass::Alias => {
                    next_row += 1;
                    Some(next_row - 1)
                }
                _ => None,
            })
            .collect();
        let n_rows = next_row;

        // Whole-task fast path: when the specialized loop reads nothing
        // from the row file — no broadcast/alias inputs to materialize,
        // and immediates hoisted to scalars (`BinBin` is the one
        // specialization that still reads immediate rows) — one loop
        // call covers the entire task, with no 512-wide chunk stepping.
        if let Some(spec) = self.spec {
            let needs_rows = input_row.iter().any(|r| r.is_some())
                || (matches!(spec, Spec::BinBin(..)) && !self.imms.is_empty());
            if !needs_rows {
                s4tf_threads::parallel_chunks_mut(out, 1, FUSED_GRAIN, |task_start, out_chunk| {
                    s4tf_tensor::simd::vectorize(|| {
                        let ctx = ChunkCtx {
                            slices,
                            classes: &classes,
                            input_row: &input_row,
                            imm_base,
                            reg_base,
                            global: task_start,
                            len: out_chunk.len(),
                        };
                        self.run_spec(spec, &ctx, &[], out_chunk);
                    });
                });
                return true;
            }
        }

        s4tf_threads::parallel_chunks_mut(out, 1, FUSED_GRAIN, |task_start, out_chunk| {
            let rows_len = n_rows * FUSED_CHUNK;
            let mut rows = match s4tf_tensor::pool::take_vec::<f32>(rows_len) {
                Some(mut v) => {
                    v.resize(rows_len, 0.0);
                    v
                }
                None => {
                    let mut v = Vec::with_capacity(rows_len.next_power_of_two());
                    v.resize(rows_len, 0.0);
                    v
                }
            };
            s4tf_tensor::simd::vectorize(|| {
                // Immediates materialize once per task, never per chunk.
                for (k, &v) in self.imms.iter().enumerate() {
                    let off = (imm_base + k) * FUSED_CHUNK;
                    rows[off..off + FUSED_CHUNK].fill(v);
                }
                let mut start = 0usize;
                while start < out_chunk.len() {
                    let len = FUSED_CHUNK.min(out_chunk.len() - start);
                    let global = task_start + start;
                    // Materialize broadcast and alias rows for this chunk
                    // (alias rows must copy before the output range is
                    // written).
                    for (i, class) in classes.iter().enumerate() {
                        match class {
                            InClass::Bcast => {
                                let row = input_row[i].unwrap();
                                let off = row * FUSED_CHUNK;
                                let src = slices[i].expect("broadcast input has a slice");
                                fill_cycle(&mut rows[off..off + len], src, global);
                            }
                            InClass::Alias => {
                                let row = input_row[i].unwrap();
                                let off = row * FUSED_CHUNK;
                                rows[off..off + len]
                                    .copy_from_slice(&out_chunk[start..start + len]);
                            }
                            _ => {}
                        }
                    }
                    let ctx = ChunkCtx {
                        slices,
                        classes: &classes,
                        input_row: &input_row,
                        imm_base,
                        reg_base,
                        global,
                        len,
                    };
                    let dst = &mut out_chunk[start..start + len];
                    match self.spec {
                        Some(spec) => self.run_spec(spec, &ctx, &rows, dst),
                        None => self.run_machine(&ctx, &mut rows, dst),
                    }
                    start += len;
                }
            });
            s4tf_tensor::pool::give_vec(rows);
        });
        use_spec
    }

    /// One chunk through the matched specialized loop nest: a single
    /// fused traversal, operands read straight from inputs/rows.
    #[inline(always)]
    fn run_spec(&self, spec: Spec, ctx: &ChunkCtx<'_>, rows: &[f32], dst: &mut [f32]) {
        match spec {
            Spec::Fill(v) => dst.fill(v),
            Spec::CopyIn => {
                let IrInst::Copy { a, .. } = self.ir[0] else {
                    unreachable!()
                };
                dst.copy_from_slice(ctx.leaf_operand(rows, a));
            }
            Spec::Act1(u) => {
                let IrInst::Unary { a, .. } = self.ir[0] else {
                    unreachable!()
                };
                let a = ctx.leaf_operand(rows, a);
                with_unary!(u, f1 => ew1(dst, a, f1));
            }
            Spec::Act2(u1, u2) => {
                let IrInst::Unary { a, .. } = self.ir[0] else {
                    unreachable!()
                };
                let a = ctx.leaf_operand(rows, a);
                with_unary!(u1, f1 => with_unary!(u2, f2 => ew1(dst, a, |x| f2(f1(x)))));
            }
            Spec::BinAct(op, act) => {
                let IrInst::Binary { a, b, .. } = self.ir[0] else {
                    unreachable!()
                };
                with_rd!(self, ctx, rows, a, a => with_rd!(self, ctx, rows, b, b => {
                    with_binary!(op, f2 => act_over2!(dst, a, b, act, f2))
                }));
            }
            Spec::MulBinAct(op, act) => {
                let IrInst::MulBin {
                    a, b, c, mul_first, ..
                } = self.ir[0]
                else {
                    unreachable!()
                };
                // The product rounds, then combines: never contracted.
                with_rd!(self, ctx, rows, a, a => with_rd!(self, ctx, rows, b, b => {
                    with_rd!(self, ctx, rows, c, c => match (op, mul_first) {
                        (ElemBinary::Add, _) => {
                            let f3 = |x: f32, y: f32, z: f32| (x * y) + z;
                            act_over3!(dst, a, b, c, act, f3);
                        }
                        (ElemBinary::Sub, true) => {
                            let f3 = |x: f32, y: f32, z: f32| (x * y) - z;
                            act_over3!(dst, a, b, c, act, f3);
                        }
                        (ElemBinary::Sub, false) => {
                            let f3 = |x: f32, y: f32, z: f32| z - (x * y);
                            act_over3!(dst, a, b, c, act, f3);
                        }
                        _ => unreachable!("peephole emits only Add/Sub MulBin"),
                    })
                }));
            }
            Spec::BinBin(op1, op2) => {
                let IrInst::Binary {
                    a: p,
                    b: q,
                    dst: d0,
                    ..
                } = self.ir[0]
                else {
                    unreachable!()
                };
                let IrInst::Binary { a, b, .. } = self.ir[1] else {
                    unreachable!()
                };
                let (p, q) = (ctx.leaf_operand(rows, p), ctx.leaf_operand(rows, q));
                let (r, reg_lhs) = match (a, b) {
                    (Src::Reg(r0), other) if r0 == d0 => (ctx.leaf_operand(rows, other), true),
                    (other, _) => (ctx.leaf_operand(rows, other), false),
                };
                with_binary!(op1, f1 => with_binary!(op2, f2 => {
                    if reg_lhs {
                        ew3(dst, p, q, r, |x, y, z| f2(f1(x, y), z));
                    } else {
                        ew3(dst, p, q, r, |x, y, z| f2(z, f1(x, y)));
                    }
                }));
            }
            Spec::Axpby(op) => {
                let IrInst::Binary { a: p, b: q, .. } = self.ir[0] else {
                    unreachable!()
                };
                let IrInst::MulBin {
                    a, b, mul_first, ..
                } = self.ir[1]
                else {
                    unreachable!()
                };
                // Both products round independently; only the combining
                // operand order matters for bit-identity. The scale
                // factors (lr, momentum) hoist to scalars here.
                with_rd!(self, ctx, rows, a, a => with_rd!(self, ctx, rows, b, b => {
                    with_rd!(self, ctx, rows, p, p => with_rd!(self, ctx, rows, q, q => {
                        match (op, mul_first) {
                            (ElemBinary::Add, _) => {
                                ew4(dst, a, b, p, q, |x, y, z, w| (x * y) + (z * w));
                            }
                            (ElemBinary::Sub, true) => {
                                ew4(dst, a, b, p, q, |x, y, z, w| (x * y) - (z * w));
                            }
                            (ElemBinary::Sub, false) => {
                                ew4(dst, a, b, p, q, |x, y, z, w| (z * w) - (x * y));
                            }
                            _ => unreachable!("Axpby combines with Add/Sub only"),
                        }
                    }))
                }));
            }
        }
    }

    /// One chunk through the generic register machine: one pass per IR
    /// instruction over `FUSED_CHUNK`-wide register rows, dispatch and
    /// operand resolution hoisted out of the element loop, arithmetic
    /// over explicit [`L8`] lanes where the op is exact.
    #[inline(always)]
    fn run_machine(&self, ctx: &ChunkCtx<'_>, rows: &mut [f32], out: &mut [f32]) {
        for inst in &self.ir {
            let dst = inst.dst();
            if dst == DST_OUT {
                // The final instruction writes the output directly; the
                // whole row file is readable (split point past the end).
                let split = usize::MAX;
                Self::exec_inst(inst, ctx, rows, &[], split, out);
            } else {
                let row = ctx.reg_base + dst as usize;
                let off = row * FUSED_CHUNK;
                let (lo, rest) = rows.split_at_mut(off);
                let (d, hi) = rest.split_at_mut(FUSED_CHUNK);
                Self::exec_inst(inst, ctx, lo, hi, row, &mut d[..ctx.len]);
            }
        }
    }

    #[inline(always)]
    fn exec_inst(
        inst: &IrInst,
        ctx: &ChunkCtx<'_>,
        lo: &[f32],
        hi: &[f32],
        split: usize,
        dst: &mut [f32],
    ) {
        match *inst {
            IrInst::Copy { a, .. } => dst.copy_from_slice(ctx.operand(lo, hi, split, a)),
            IrInst::Unary { op, a, .. } => op.apply_slice(dst, ctx.operand(lo, hi, split, a)),
            IrInst::Binary { op, a, b, .. } => {
                let (a, b) = (ctx.operand(lo, hi, split, a), ctx.operand(lo, hi, split, b));
                // Exact ops run over explicit lanes; the rest keep the
                // interpreter's own hoisted-dispatch slice loops.
                match op {
                    ElemBinary::Add => lanes2(dst, a, b, L8::add, |x, y| x + y),
                    ElemBinary::Sub => lanes2(dst, a, b, L8::sub, |x, y| x - y),
                    ElemBinary::Mul => lanes2(dst, a, b, L8::mul, |x, y| x * y),
                    ElemBinary::Div => lanes2(dst, a, b, L8::div, |x, y| x / y),
                    op => op.apply_slice(dst, a, b),
                }
            }
            IrInst::MulBin {
                op,
                a,
                b,
                c,
                mul_first,
                ..
            } => {
                let (a, b, c) = (
                    ctx.operand(lo, hi, split, a),
                    ctx.operand(lo, hi, split, b),
                    ctx.operand(lo, hi, split, c),
                );
                mulbin_pass(dst, a, b, c, op, mul_first);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(insts: &[FusedInst]) -> Arc<CompiledKernel> {
        get_or_compile(insts).expect("compilable")
    }

    /// Reference interpreter semantics, scalar and obvious.
    fn reference(insts: &[FusedInst], inputs: &[Vec<f32>], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n];
        let mut regs = vec![0.0f32; insts.len()];
        for (e, o) in out.iter_mut().enumerate() {
            for (r, inst) in insts.iter().enumerate() {
                regs[r] = match inst {
                    FusedInst::Input(i) => inputs[*i][e % inputs[*i].len()],
                    FusedInst::Imm(x) => *x,
                    FusedInst::Unary(u, a) => u.apply(regs[*a]),
                    FusedInst::Binary(b, a, c) => b.apply(regs[*a], regs[*c]),
                };
            }
            *o = regs[insts.len() - 1];
        }
        out
    }

    fn run_compiled(insts: &[FusedInst], inputs: &[Vec<f32>], n: usize) -> Vec<f32> {
        let k = compile(insts);
        let slices: Vec<Option<&[f32]>> = inputs.iter().map(|v| Some(&v[..])).collect();
        let mut out = vec![0.0f32; n];
        k.run(&slices, n, &mut out);
        out
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn sgd_update_compiles_to_one_mulbin_and_specializes() {
        // p + g·(−lr): Mul(g, imm) absorbed into the Add.
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Imm(-0.1),
            FusedInst::Binary(ElemBinary::Mul, 0, 1),
            FusedInst::Input(1),
            FusedInst::Binary(ElemBinary::Add, 3, 2),
        ];
        let k = compile(&insts);
        assert_eq!(k.ir().len(), 1);
        assert!(matches!(
            k.ir()[0],
            IrInst::MulBin {
                op: ElemBinary::Add,
                ..
            }
        ));
        assert_eq!(k.specialization(), Some("mulbin_act"));
        assert_eq!(k.flops_per_elem(), 2);
        let g: Vec<f32> = (0..1000).map(|i| (i as f32) * 0.01 - 3.0).collect();
        let p: Vec<f32> = (0..1000).map(|i| (i as f32) * -0.02 + 1.0).collect();
        let inputs = vec![g, p];
        assert_eq!(
            bits(&run_compiled(&insts, &inputs, 1000)),
            bits(&reference(&insts, &inputs, 1000))
        );
    }

    #[test]
    fn bias_relu_epilogue_specializes_with_broadcast() {
        // relu(x + bias[c]) over a [N, C] output.
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Input(1),
            FusedInst::Binary(ElemBinary::Add, 0, 1),
            FusedInst::Unary(ElemUnary::Relu, 2),
        ];
        let k = compile(&insts);
        assert_eq!(k.specialization(), Some("bin_act"));
        let n = 700 * 6;
        let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.003 - 5.0).collect();
        let bias: Vec<f32> = (0..6).map(|i| i as f32 - 2.5).collect();
        let inputs = vec![x, bias];
        assert_eq!(
            bits(&run_compiled(&insts, &inputs, n)),
            bits(&reference(&insts, &inputs, n))
        );
    }

    #[test]
    fn momentum_update_detects_axpby() {
        // v·μ + g·(−lr).
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Imm(0.9),
            FusedInst::Binary(ElemBinary::Mul, 0, 1),
            FusedInst::Input(1),
            FusedInst::Imm(-0.05),
            FusedInst::Binary(ElemBinary::Mul, 3, 4),
            FusedInst::Binary(ElemBinary::Add, 2, 5),
        ];
        let k = compile(&insts);
        assert_eq!(k.specialization(), Some("axpby"));
        let v: Vec<f32> = (0..513).map(|i| (i as f32).sin()).collect();
        let g: Vec<f32> = (0..513).map(|i| (i as f32).cos()).collect();
        let inputs = vec![v, g];
        assert_eq!(
            bits(&run_compiled(&insts, &inputs, 513)),
            bits(&reference(&insts, &inputs, 513))
        );
    }

    #[test]
    fn mask_mul_backward_detects_binbin() {
        // dy · (x > 0): GreaterMask then Mul.
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Imm(0.0),
            FusedInst::Binary(ElemBinary::GreaterMask, 0, 1),
            FusedInst::Input(1),
            FusedInst::Binary(ElemBinary::Mul, 3, 2),
        ];
        let k = compile(&insts);
        assert_eq!(k.specialization(), Some("bin_bin"));
        let x: Vec<f32> = (0..100).map(|i| i as f32 - 50.0).collect();
        let dy: Vec<f32> = (0..100).map(|i| (i as f32) * 0.1).collect();
        let inputs = vec![x, dy];
        assert_eq!(
            bits(&run_compiled(&insts, &inputs, 100)),
            bits(&reference(&insts, &inputs, 100))
        );
    }

    #[test]
    fn dead_code_and_constants_fold_out() {
        // exp(x) computed but unused; 2·3 folds; output = x + 6.
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Unary(ElemUnary::Exp, 0),
            FusedInst::Imm(2.0),
            FusedInst::Imm(3.0),
            FusedInst::Binary(ElemBinary::Mul, 2, 3),
            FusedInst::Binary(ElemBinary::Add, 0, 4),
        ];
        let k = compile(&insts);
        assert_eq!(k.ir().len(), 1, "dead exp and const mul eliminated");
        assert_eq!(k.flops_per_elem(), 1);
        assert_eq!(k.imms, vec![6.0]);
        let x: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let inputs = vec![x];
        assert_eq!(
            bits(&run_compiled(&insts, &inputs, 50)),
            bits(&reference(&insts, &inputs, 50))
        );
    }

    #[test]
    fn register_reuse_beats_one_row_per_instruction() {
        // A 9-instruction chain over one input: the interpreter spends 9
        // scratch rows; liveness reuse needs a small constant.
        let mut insts = vec![FusedInst::Input(0)];
        for i in 0..8 {
            insts.push(FusedInst::Unary(ElemUnary::Square, i));
        }
        let k = compile(&insts);
        assert!(
            k.register_count() <= 2,
            "chain should reuse registers, used {}",
            k.register_count()
        );
        let x: Vec<f32> = (0..40).map(|i| 1.0 + (i as f32) * 1e-4).collect();
        let inputs = vec![x];
        assert_eq!(
            bits(&run_compiled(&insts, &inputs, 40)),
            bits(&reference(&insts, &inputs, 40))
        );
    }

    #[test]
    fn fallback_machine_handles_long_mixed_programs() {
        // No specialized shape: a 4-op sigmoid-from-primitives chain.
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Unary(ElemUnary::Neg, 0),
            FusedInst::Unary(ElemUnary::Exp, 1),
            FusedInst::Imm(1.0),
            FusedInst::Binary(ElemBinary::Add, 2, 3),
            FusedInst::Unary(ElemUnary::Recip, 4),
        ];
        let k = compile(&insts);
        assert_eq!(k.specialization(), None);
        // Lengths straddling lane, chunk and grain boundaries.
        for n in [1usize, 7, 8, 9, 511, 512, 513, 4095, 4096, 4097] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.01 - 2.0).collect();
            let inputs = vec![x];
            assert_eq!(
                bits(&run_compiled(&insts, &inputs, n)),
                bits(&reference(&insts, &inputs, n)),
                "n={n}"
            );
        }
    }

    #[test]
    fn aliased_input_runs_in_place() {
        // p + g·(−lr) with p aliasing the output buffer.
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Imm(-0.5),
            FusedInst::Binary(ElemBinary::Mul, 0, 1),
            FusedInst::Input(1),
            FusedInst::Binary(ElemBinary::Add, 3, 2),
        ];
        let k = compile(&insts);
        let n = 1000;
        let g: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let p: Vec<f32> = (0..n).map(|i| i as f32 * -0.02).collect();
        let expect = reference(&insts, &[g.clone(), p.clone()], n);
        let mut out = p.clone();
        let slices: Vec<Option<&[f32]>> = vec![Some(&g[..]), None];
        k.run(&slices, n, &mut out);
        assert_eq!(bits(&out), bits(&expect));
    }

    #[test]
    fn cache_hits_and_collision_checks() {
        let insts = vec![
            FusedInst::Input(0),
            FusedInst::Unary(ElemUnary::Tanh, 0),
            FusedInst::Unary(ElemUnary::Square, 1),
        ];
        let before = stats();
        let a = get_or_compile(&insts).unwrap();
        let b = get_or_compile(&insts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let after = stats();
        assert!(after.hits > before.hits);
        assert_eq!(fingerprint(&insts), fingerprint(&insts.clone()));
        let other = vec![FusedInst::Input(0), FusedInst::Unary(ElemUnary::Tanh, 0)];
        assert_ne!(fingerprint(&insts), fingerprint(&other));
    }

    #[test]
    fn degenerate_outputs_fill_and_copy() {
        let fill = vec![FusedInst::Imm(2.0), FusedInst::Unary(ElemUnary::Square, 0)];
        let k = compile(&fill);
        assert_eq!(k.specialization(), Some("fill"));
        assert_eq!(run_compiled(&fill, &[], 10), vec![4.0f32; 10]);

        let copy = vec![FusedInst::Input(0), FusedInst::Input(1)];
        let k = compile(&copy);
        assert_eq!(k.specialization(), Some("copy"));
        assert!(!k.input_live(0), "unreferenced input is dead");
        assert!(k.input_live(1));
        let a = vec![1.0f32; 4];
        let b = vec![7.0f32, 8.0, 9.0, 10.0];
        assert_eq!(run_compiled(&copy, &[a, b.clone()], 4), b);
    }

    #[test]
    fn fill_cycle_matches_modulo_indexing() {
        for (n, m, global) in [
            (512usize, 6usize, 0usize),
            (512, 6, 509),
            (17, 5, 3),
            (8, 1, 5),
            (512, 600, 550),
        ] {
            let src: Vec<f32> = (0..m).map(|i| i as f32).collect();
            let mut dst = vec![0.0f32; n];
            fill_cycle(&mut dst, &src, global);
            let want: Vec<f32> = (0..n).map(|j| src[(global + j) % m]).collect();
            assert_eq!(dst, want, "n={n} m={m} global={global}");
        }
    }
}
