//! Pillar 2: IR and trace dumping.
//!
//! `S4TF_DUMP=<dir>` (or [`set_dump_dir`]) turns every compiler stage
//! into a file: the SIL module before/after each optimization pass and
//! AD synthesis stage, the lazy trace (Graphviz DOT), and the XLA graph
//! before/after each fusion/optimization pass. Filenames carry a
//! process-wide sequence number so `ls` shows pipeline order:
//!
//! ```text
//! 00000.sil.before.sil
//! 00001.sil.inline.sil
//! ...
//! 00007.lazy.trace.dot
//! 00008.xla.before.txt
//! 00009.xla.pass.constant_fold.txt
//! ```
//!
//! Rendering is pure string generation — the `dot` binary is never
//! invoked, so dump-enabled runs work on machines without Graphviz.

use crate::{lock_unpoisoned, Gate, GATE_OFF, GATE_ON};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn init_from_env() -> u8 {
    match std::env::var("S4TF_DUMP") {
        Ok(dir) if !dir.is_empty() => {
            *lock_unpoisoned(&DIR) = Some(PathBuf::from(dir));
            GATE_ON
        }
        _ => GATE_OFF,
    }
}

static GATE: Gate = Gate::new(init_from_env);

/// Whether dumping is active — the one-relaxed-load branch compiler
/// stages take before rendering anything.
#[inline]
pub fn dump_enabled() -> bool {
    GATE.on()
}

/// Points dumping at `dir` (created on first dump), or disables it with
/// `None`. Overrides `S4TF_DUMP`.
pub fn set_dump_dir(dir: Option<&Path>) {
    *lock_unpoisoned(&DIR) = dir.map(Path::to_path_buf);
    GATE.set(if dir.is_some() { GATE_ON } else { GATE_OFF });
}

/// The current dump directory, if dumping is enabled.
pub fn dump_dir() -> Option<PathBuf> {
    if !dump_enabled() {
        return None;
    }
    lock_unpoisoned(&DIR).clone()
}

/// Replaces anything that would be awkward in a filename.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes `contents` to `<dir>/<seq>.<category>.<name>.<ext>` and
/// returns the path, or `None` when dumping is off (in which case
/// `contents` should not even have been rendered — gate on
/// [`dump_enabled`] first) or the write failed.
pub fn dump(category: &str, name: &str, ext: &str, contents: &str) -> Option<PathBuf> {
    if !dump_enabled() {
        return None;
    }
    let dir = lock_unpoisoned(&DIR).clone()?;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "{seq:05}.{}.{}.{}",
        sanitize(category),
        sanitize(name),
        sanitize(ext)
    ));
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("[s4tf-diag] dump to {} failed: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sanitize;

    #[test]
    fn filenames_are_sanitized() {
        assert_eq!(
            sanitize("xla.pass/fuse elementwise"),
            "xla.pass_fuse_elementwise"
        );
    }
}
