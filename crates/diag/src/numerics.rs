//! Pillar 1: numerics checking — scan op outputs for NaN/Inf and report
//! the *first* offending op with provenance.
//!
//! # Policy for legitimately non-finite results
//!
//! Some ops produce non-finite values from perfectly finite inputs:
//! `log(0) = -inf`, `x / 0 = ±inf` (or NaN for `0/0`), `exp` overflow to
//! `+inf`. The checker does not try to second-guess intent — *any*
//! non-finite output is reported, but always attributed to the producing
//! op (name, shape, dtype, backend, enclosing profile span), never as a
//! generic failure. The [`NumericsMode`] knob then decides severity:
//!
//! * [`NumericsMode::Warn`] (the default when `S4TF_CHECK_NUMERICS=1`)
//!   prints one warning per distinct op mnemonic and records the first
//!   violation for [`first_violation`] — expected-infinity workloads keep
//!   running and stay debuggable.
//! * [`NumericsMode::Panic`] (`S4TF_CHECK_NUMERICS=panic`) panics at the
//!   check site with the full attribution — for flushing out the origin
//!   of a divergence under a debugger or in CI.
//! * [`NumericsMode::Off`] disables scanning (the default).

use crate::{events, lock_unpoisoned, Gate, GATE_OFF};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What the checker does when a scan finds a non-finite value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericsMode {
    /// No scanning at all (the hot-path check is one relaxed load).
    Off,
    /// Report (stderr, once per op mnemonic) and keep going.
    Warn,
    /// Panic at the check site with full attribution.
    Panic,
}

const GATE_PANIC: u8 = 3;

fn init_from_env() -> u8 {
    match std::env::var("S4TF_CHECK_NUMERICS").as_deref() {
        Ok("panic") | Ok("PANIC") | Ok("Panic") => GATE_PANIC,
        Ok(v)
            if matches!(
                v.to_ascii_lowercase().as_str(),
                "1" | "true" | "on" | "yes" | "warn"
            ) =>
        {
            crate::GATE_ON
        }
        _ => GATE_OFF,
    }
}

static GATE: Gate = Gate::new(init_from_env);

/// Whether numerics checking is active. One relaxed atomic load: this is
/// the branch every dispatch path takes before deciding to scan.
#[inline]
pub fn numerics_enabled() -> bool {
    GATE.raw() >= crate::GATE_ON
}

/// The current [`NumericsMode`].
pub fn numerics_mode() -> NumericsMode {
    match GATE.raw() {
        GATE_PANIC => NumericsMode::Panic,
        crate::GATE_ON => NumericsMode::Warn,
        _ => NumericsMode::Off,
    }
}

/// Sets the checking mode, overriding `S4TF_CHECK_NUMERICS`.
pub fn set_numerics_mode(mode: NumericsMode) {
    GATE.set(match mode {
        NumericsMode::Off => GATE_OFF,
        NumericsMode::Warn => crate::GATE_ON,
        NumericsMode::Panic => GATE_PANIC,
    });
}

/// A non-finite value found in an op's output, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Mnemonic of the producing op (e.g. `log`, `div`, `matmul`).
    pub op: String,
    /// Which executor produced it: `naive`, `eager`, `lazy`, or `xla`.
    pub backend: &'static str,
    /// Output shape.
    pub shape: Vec<usize>,
    /// Element dtype (currently always `f32` on the device paths).
    pub dtype: &'static str,
    /// `"NaN"`, `"+Inf"` or `"-Inf"`.
    pub kind: &'static str,
    /// Flat index of the first non-finite element.
    pub index: usize,
    /// Innermost enclosing profile span on the checking thread, if the
    /// profiler was recording one.
    pub span: Option<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op `{}` produced {} at index {} (shape {:?}, dtype {}, backend {}",
            self.op, self.kind, self.index, self.shape, self.dtype, self.backend
        )?;
        if let Some(span) = &self.span {
            write!(f, ", span `{span}`")?;
        }
        write!(f, ")")
    }
}

static FIRST: Mutex<Option<Violation>> = Mutex::new(None);
static WARNED_OPS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static SCANS: AtomicU64 = AtomicU64::new(0);

/// Scans `data` for the first non-finite element. Call sites gate on
/// [`numerics_enabled`] first so the disabled path never touches the
/// slice.
///
/// On a violation: records it as the process-wide first (if none is
/// recorded yet), pushes a `numerics.violation` event into the event
/// ring, and then either warns (once per op mnemonic) or panics
/// depending on [`numerics_mode`].
pub fn check_f32s(
    op: &str,
    backend: &'static str,
    dims: &[usize],
    data: &[f32],
    span: Option<&str>,
) -> Option<Violation> {
    if !numerics_enabled() {
        return None;
    }
    SCANS.fetch_add(1, Ordering::Relaxed);
    let (index, value) = data
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, v)| (i, *v))?;
    let violation = Violation {
        op: op.to_string(),
        backend,
        shape: dims.to_vec(),
        dtype: "f32",
        kind: if value.is_nan() {
            "NaN"
        } else if value > 0.0 {
            "+Inf"
        } else {
            "-Inf"
        },
        index,
        span: span.map(str::to_string),
    };
    lock_unpoisoned(&FIRST).get_or_insert_with(|| violation.clone());
    events::record_forced(
        "numerics.violation",
        vec![
            ("op".into(), violation.op.clone()),
            ("backend".into(), backend.to_string()),
            ("kind".into(), violation.kind.to_string()),
            ("shape".into(), format!("{dims:?}")),
        ],
    );
    match numerics_mode() {
        NumericsMode::Panic => panic!("numerics check failed: {violation}"),
        NumericsMode::Warn => {
            let mut warned = lock_unpoisoned(&WARNED_OPS);
            if !warned.iter().any(|w| w == &violation.op) {
                warned.push(violation.op.clone());
                eprintln!("[s4tf-diag] numerics warning: {violation}");
            }
        }
        NumericsMode::Off => {}
    }
    Some(violation)
}

/// The first violation seen since the last [`clear_numerics`] — the op
/// that introduced the NaN/Inf, not whichever op a caller happened to
/// observe it through.
pub fn first_violation() -> Option<Violation> {
    lock_unpoisoned(&FIRST).clone()
}

/// Number of output scans performed (only bumped while checking is on);
/// lets tests assert the disabled path really skips the scan.
pub fn scans_performed() -> u64 {
    SCANS.load(Ordering::Relaxed)
}

/// Forgets the recorded first violation, the once-per-op warn set, and
/// the scan count (the mode is left unchanged).
pub fn clear_numerics() {
    lock_unpoisoned(&FIRST).take();
    lock_unpoisoned(&WARNED_OPS).clear();
    SCANS.store(0, Ordering::Relaxed);
}
