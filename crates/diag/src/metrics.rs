//! Pillar 4b: the training telemetry stream.
//!
//! With `S4TF_METRICS_FILE=<path>` (or [`set_metrics_path`]) the
//! training loop appends one JSON object per optimization step:
//!
//! ```json
//! {"kind":"step","step":1,"loss":2.3025,"grad_norm":0.4812,
//!  "examples_per_sec":15873.0,"peak_bytes":1048576,"live_bytes":524288,
//!  "backend":"lazy"}
//! ```
//!
//! The sink itself (path resolution, the append-per-write file handling)
//! lives in `s4tf-metrics`, which shares the same file with its periodic
//! registry snapshots (`"kind":"snapshot"` lines) — one file, one
//! schema, discriminated by `kind`.

use crate::push_json_f64;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

static STEP: AtomicU64 = AtomicU64::new(0);

/// Whether a metrics sink is configured — the one-relaxed-load branch
/// the training loop takes before computing gradient norms or timings.
#[inline]
pub fn metrics_enabled() -> bool {
    s4tf_metrics::jsonl_enabled()
}

/// Points the stream at `path` (`None` disables). Overrides
/// `S4TF_METRICS_FILE`.
pub fn set_metrics_path(path: Option<&Path>) {
    s4tf_metrics::set_jsonl_path(path);
}

/// Next 1-based global step number (process-wide, shared by every
/// training loop so the stream stays monotonic).
pub fn next_step() -> u64 {
    STEP.fetch_add(1, Ordering::Relaxed) + 1
}

/// Rewinds the global step counter (tests).
pub fn reset_step_counter() {
    STEP.store(0, Ordering::Relaxed);
}

/// One training step's telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// 1-based step number (usually from [`next_step`]).
    pub step: u64,
    /// Scalar loss.
    pub loss: f64,
    /// Global L2 norm of the parameter gradient.
    pub grad_norm: f64,
    /// Batch size divided by wall-clock step time.
    pub examples_per_sec: f64,
    /// Peak tensor-storage bytes (see [`crate::memory_stats`]).
    pub peak_bytes: u64,
    /// Live tensor-storage bytes at the end of the step.
    pub live_bytes: u64,
    /// Device the step ran on (`naive` / `eager` / `lazy`).
    pub backend: &'static str,
}

impl StepRecord {
    /// The JSONL rendering (no trailing newline). The `kind`
    /// discriminator separates step records from the registry's
    /// `"kind":"snapshot"` lines in the shared stream.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"kind\":\"step\",\"step\":");
        out.push_str(&self.step.to_string());
        out.push_str(",\"loss\":");
        push_json_f64(&mut out, self.loss);
        out.push_str(",\"grad_norm\":");
        push_json_f64(&mut out, self.grad_norm);
        out.push_str(",\"examples_per_sec\":");
        push_json_f64(&mut out, self.examples_per_sec);
        out.push_str(",\"peak_bytes\":");
        out.push_str(&self.peak_bytes.to_string());
        out.push_str(",\"live_bytes\":");
        out.push_str(&self.live_bytes.to_string());
        out.push_str(",\"backend\":\"");
        out.push_str(self.backend);
        out.push_str("\"}");
        out
    }
}

/// Appends `record` to the metrics file (no-op when no sink is set).
pub fn record_step(record: &StepRecord) {
    if !metrics_enabled() {
        return;
    }
    s4tf_metrics::append_jsonl(&record.to_json());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_record_json_shape() {
        let r = StepRecord {
            step: 3,
            loss: 0.5,
            grad_norm: 1.25,
            examples_per_sec: 100.0,
            peak_bytes: 2048,
            live_bytes: 1024,
            backend: "naive",
        };
        assert_eq!(
            r.to_json(),
            "{\"kind\":\"step\",\"step\":3,\"loss\":0.5,\"grad_norm\":1.25,\
             \"examples_per_sec\":100,\
             \"peak_bytes\":2048,\"live_bytes\":1024,\"backend\":\"naive\"}"
        );
    }
}
