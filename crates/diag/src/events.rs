//! Pillar 4a: a bounded structured event log.
//!
//! A process-wide ring buffer (capacity [`RING_CAPACITY`]) of timestamped
//! records — op dispatches, compile start/finish, cache hits/misses,
//! numerics violations, allocation high-water marks — exportable as
//! JSONL via [`events_jsonl`]. Recording is gated (`S4TF_DIAG_EVENTS=1`
//! or [`set_events_enabled`]); numerics violations bypass the gate so a
//! violation is never lost just because event streaming was off.

use crate::{
    env_truthy, lock_unpoisoned, now_us, push_json_string, FieldList, Gate, GATE_OFF, GATE_ON,
};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Upper bound on retained events; the oldest are dropped first.
pub const RING_CAPACITY: usize = 4096;

fn init_from_env() -> u8 {
    if env_truthy("S4TF_DIAG_EVENTS") {
        GATE_ON
    } else {
        GATE_OFF
    }
}

static GATE: Gate = Gate::new(init_from_env);

/// Whether the event log is recording (one relaxed load). The
/// [`event!`](crate::event!) macro checks this before evaluating any of
/// its field expressions.
#[inline]
pub fn events_enabled() -> bool {
    GATE.on()
}

/// Turns event recording on or off, overriding `S4TF_DIAG_EVENTS`.
pub fn set_events_enabled(on: bool) {
    GATE.set(if on { GATE_ON } else { GATE_OFF });
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Microseconds since the diagnostics epoch.
    pub ts_us: u64,
    /// Event kind, e.g. `op.dispatch`, `xla.compile.finish`,
    /// `numerics.violation`, `mem.high_water`.
    pub kind: &'static str,
    /// Key/value payload.
    pub fields: Vec<(std::borrow::Cow<'static, str>, String)>,
}

static RING: Mutex<VecDeque<EventRecord>> = Mutex::new(VecDeque::new());

/// Appends an event, evicting the oldest past [`RING_CAPACITY`]. Most
/// call sites use the [`event!`](crate::event!) macro instead, which
/// skips field construction entirely when recording is off.
pub fn record_event(kind: &'static str, fields: FieldList) {
    if !events_enabled() {
        return;
    }
    record_forced(kind, fields);
}

/// Appends regardless of the gate — used for events that must not be
/// lost (numerics violations) once their own pillar is active.
pub(crate) fn record_forced(kind: &'static str, fields: FieldList) {
    let record = EventRecord {
        ts_us: now_us(),
        kind,
        fields,
    };
    let mut ring = lock_unpoisoned(&RING);
    if ring.len() == RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// Snapshot of the ring, oldest first.
pub fn events() -> Vec<EventRecord> {
    lock_unpoisoned(&RING).iter().cloned().collect()
}

/// Renders the ring as JSON Lines: one object per event with `ts_us`,
/// `kind`, and the payload keys flattened in.
pub fn events_jsonl() -> String {
    let ring = lock_unpoisoned(&RING);
    let mut out = String::new();
    for e in ring.iter() {
        out.push_str("{\"ts_us\":");
        out.push_str(&e.ts_us.to_string());
        out.push_str(",\"kind\":");
        push_json_string(&mut out, e.kind);
        for (k, v) in &e.fields {
            out.push(',');
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

/// Empties the ring (the gate is left unchanged).
pub fn clear_events() {
    lock_unpoisoned(&RING).clear();
}

/// Records a structured event — `event!("kind", key = value, ...)` —
/// into the diagnostics ring buffer.
///
/// Field values are formatted with `Display`. When recording is off the
/// whole expansion is one relaxed atomic load: none of the field
/// expressions are evaluated.
///
/// ```
/// s4tf_diag::set_events_enabled(true);
/// s4tf_diag::event!("xla.compile.start", nodes = 17, fingerprint = "ab12");
/// assert!(s4tf_diag::events_jsonl().contains("\"nodes\":\"17\""));
/// s4tf_diag::set_events_enabled(false);
/// s4tf_diag::clear_events();
/// ```
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::events_enabled() {
            $crate::record_event(
                $kind,
                vec![$((::std::borrow::Cow::Borrowed(stringify!($key)), $value.to_string())),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded() {
        set_events_enabled(true);
        clear_events();
        for i in 0..(RING_CAPACITY + 10) {
            crate::event!("test.tick", i = i);
        }
        let all = events();
        assert_eq!(all.len(), RING_CAPACITY);
        // Oldest were evicted: the first retained tick is number 10.
        assert_eq!(all[0].fields[0].1, "10");
        set_events_enabled(false);
        clear_events();
    }
}
