// Inert mirror of the `s4tf-diag` surface the runtime crates
// instrument against. Not compiled into `s4tf-diag` itself: consumer
// crates `include!` it from their `diag.rs` shim when their `diag`
// feature is off, so every instrumentation site compiles identically
// and costs nothing (see the matching pattern in
// `crates/profile/src/noop_shim.rs`).

/// Inert stand-in for `s4tf_diag::MemoryStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MemoryStats {
    pub live_bytes: u64,
    pub peak_bytes: u64,
    pub allocs: u64,
    pub frees: u64,
}

/// Inert stand-in for `s4tf_diag::StepRecord`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct StepRecord {
    pub step: u64,
    pub loss: f64,
    pub grad_norm: f64,
    pub examples_per_sec: f64,
    pub peak_bytes: u64,
    pub live_bytes: u64,
    pub backend: &'static str,
}

#[inline(always)]
pub(crate) fn numerics_enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn check_f32s(
    _op: &str,
    _backend: &'static str,
    _dims: &[usize],
    _data: &[f32],
    _span: Option<&str>,
) {
}

#[inline(always)]
pub(crate) fn dump_enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn dump(
    _category: &str,
    _name: &str,
    _ext: &str,
    _contents: &str,
) -> Option<std::path::PathBuf> {
    None
}

#[inline(always)]
pub(crate) fn events_enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn track_alloc(_bytes: usize) {}

#[inline(always)]
pub(crate) fn track_free(_bytes: usize) {}

#[inline(always)]
pub(crate) fn track_recycled_alloc(_bytes: usize) {}

#[inline(always)]
pub(crate) fn track_recycled_free(_bytes: usize) {}

#[inline(always)]
pub(crate) fn memory_stats() -> MemoryStats {
    MemoryStats::default()
}

#[inline(always)]
pub(crate) fn reset_peak_bytes() {}

#[inline(always)]
pub(crate) fn metrics_enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn next_step() -> u64 {
    0
}

#[inline(always)]
pub(crate) fn record_step(_record: &StepRecord) {}

/// Inert stand-in for `s4tf_diag::event!`: borrows the field expressions
/// (so call sites compile warning-free in both configurations) but never
/// stringifies or records them — the optimizer removes the whole site.
macro_rules! event {
    ($kind:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let _ = &$kind;
        $( let _ = &$value; )*
    }};
}
pub(crate) use event;
