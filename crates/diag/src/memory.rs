//! Pillar 3: tensor-storage memory tracking.
//!
//! `tensor::storage` reports every buffer allocation and free here;
//! live-bytes / peak-bytes / alloc / free counters are plain relaxed
//! atomics with no gate (cost: a few relaxed RMWs per buffer, dwarfed by
//! the allocation itself — the same bargain as the tensor crate's
//! copy-on-write counter). The runtime layers sample [`memory_stats`]
//! into profile gauges so the numbers show up in `profile::report()` and
//! the Chrome trace as counter tracks.
//!
//! When the event log is on, crossing a new high-water mark by at least
//! [`HIGH_WATER_STEP`] bytes emits a `mem.high_water` event — enough to
//! see the allocation envelope without flooding the ring.

use crate::events;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum peak growth between `mem.high_water` events.
pub const HIGH_WATER_STEP: u64 = 64 * 1024;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static LAST_REPORTED_PEAK: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the storage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes currently held by live tensor-storage buffers.
    pub live_bytes: u64,
    /// Highest `live_bytes` ever observed (see [`reset_peak_bytes`]).
    pub peak_bytes: u64,
    /// Buffers allocated (includes copy-on-write clones).
    pub allocs: u64,
    /// Buffers freed.
    pub frees: u64,
}

/// Records a buffer allocation of `bytes`.
#[inline]
pub fn track_alloc(bytes: usize) {
    if bytes == 0 {
        return;
    }
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    bump_live(bytes);
}

/// Records a buffer handed out by the storage recycling pool: the bytes
/// become live again (and can set a new peak), but no allocator call
/// happened, so [`MemoryStats::allocs`] is not incremented. Keeping
/// `allocs`/`frees` as *real allocator traffic* is what makes the pool's
/// effect measurable through [`memory_stats`].
#[inline]
pub fn track_recycled_alloc(bytes: usize) {
    if bytes == 0 {
        return;
    }
    bump_live(bytes);
}

/// Records a buffer returned to the recycling pool: no longer live, but
/// not an allocator free either ([`MemoryStats::frees`] is untouched).
#[inline]
pub fn track_recycled_free(bytes: usize) {
    if bytes == 0 {
        return;
    }
    LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

#[inline]
fn bump_live(bytes: usize) {
    let live = LIVE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                if events::events_enabled() {
                    let reported = LAST_REPORTED_PEAK.load(Ordering::Relaxed);
                    if live >= reported + HIGH_WATER_STEP {
                        LAST_REPORTED_PEAK.store(live, Ordering::Relaxed);
                        crate::event!("mem.high_water", live_bytes = live);
                    }
                }
                break;
            }
            Err(current) => peak = current,
        }
    }
}

/// Records that a buffer of `bytes` was freed.
#[inline]
pub fn track_free(bytes: usize) {
    if bytes == 0 {
        return;
    }
    FREES.fetch_add(1, Ordering::Relaxed);
    LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Current storage counters.
pub fn memory_stats() -> MemoryStats {
    MemoryStats {
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}

/// Restarts the peak-bytes watermark from the current live-bytes value
/// (e.g. per training step, so per-step peaks are meaningful).
pub fn reset_peak_bytes() {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    LAST_REPORTED_PEAK.store(live, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_balance() {
        let before = memory_stats();
        track_alloc(1 << 20);
        let during = memory_stats();
        assert!(during.live_bytes >= before.live_bytes + (1 << 20));
        assert!(during.peak_bytes >= before.live_bytes + (1 << 20));
        track_free(1 << 20);
        let after = memory_stats();
        assert_eq!(after.allocs, before.allocs + 1);
        assert_eq!(after.frees, before.frees + 1);
        // Live returns to baseline (other tests may run concurrently, so
        // compare against what this test added, not an absolute value).
        assert_eq!(
            after.live_bytes.wrapping_sub(before.live_bytes),
            during.live_bytes.wrapping_sub(before.live_bytes) - (1 << 20)
        );
    }
}
