//! Semantic diagnostics for the s4tf runtime: numerics checking, IR and
//! trace dumping, memory tracking, a bounded structured event log, and a
//! training-metrics stream.
//!
//! Where `s4tf-profile` answers *"where did the time go?"*, this crate
//! answers *"what did the program actually do?"* — which op produced the
//! first NaN, what the lazy trace and XLA graph looked like before and
//! after each pass, how many bytes of tensor storage are live, and what
//! each training step's loss and gradient norm were.
//!
//! Four pillars, each independently gated so the disabled path stays one
//! relaxed atomic load (the pattern established by `s4tf-profile`):
//!
//! | pillar | env var | API |
//! |--------|---------|-----|
//! | numerics checking | `S4TF_CHECK_NUMERICS=1`/`panic` | [`set_numerics_mode`], [`check_f32s`], [`first_violation`] |
//! | IR / trace dumps | `S4TF_DUMP=<dir>` | [`set_dump_dir`], [`dump`] |
//! | event log | `S4TF_DIAG_EVENTS=1` | [`set_events_enabled`], [`event!`], [`events_jsonl`] |
//! | training metrics | `S4TF_METRICS_FILE=<path>` | [`set_metrics_path`], [`record_step`] |
//!
//! Memory tracking ([`track_alloc`] / [`track_free`] / [`memory_stats`])
//! has no gate of its own: the counters are plain relaxed atomics bumped
//! by `tensor::storage`, in the same spirit as the tensor crate's
//! copy-on-write counter — the cost is a few relaxed RMWs per buffer
//! allocation, dwarfed by the allocation itself.
//!
//! This crate is std-only with zero dependencies so that `s4tf-tensor`
//! (which itself must stay dependency-light) can sit above it.

use std::borrow::Cow;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

mod dump;
mod events;
mod memory;
mod metrics;
mod numerics;

pub use dump::{dump, dump_dir, dump_enabled, set_dump_dir};
pub use events::{
    clear_events, events, events_enabled, events_jsonl, record_event, set_events_enabled,
    EventRecord,
};
pub use memory::{
    memory_stats, reset_peak_bytes, track_alloc, track_free, track_recycled_alloc,
    track_recycled_free, MemoryStats,
};
pub use metrics::{
    metrics_enabled, next_step, record_step, reset_step_counter, set_metrics_path, StepRecord,
};
pub use numerics::{
    check_f32s, clear_numerics, first_violation, numerics_enabled, numerics_mode, scans_performed,
    set_numerics_mode, NumericsMode, Violation,
};

// ----------------------------------------------------------- shared bits

/// Tri-state atomic gate shared by the pillars: `0` = uninitialized
/// (consult the environment once), [`GATE_OFF`], [`GATE_ON`].
pub(crate) struct Gate {
    state: AtomicU8,
    init: fn() -> u8,
}

pub(crate) const GATE_OFF: u8 = 1;
pub(crate) const GATE_ON: u8 = 2;

impl Gate {
    pub(crate) const fn new(init: fn() -> u8) -> Self {
        Gate {
            state: AtomicU8::new(0),
            init,
        }
    }

    /// The hot-path check: one relaxed load once initialized.
    #[inline]
    pub(crate) fn raw(&self) -> u8 {
        match self.state.load(Ordering::Relaxed) {
            0 => self.init_slow(),
            state => state,
        }
    }

    #[inline]
    pub(crate) fn on(&self) -> bool {
        self.raw() >= GATE_ON
    }

    #[cold]
    fn init_slow(&self) -> u8 {
        let computed = (self.init)();
        // Racing initializers compute the same value; only install when
        // still uninitialized so an explicit `set` in between wins.
        let _ = self
            .state
            .compare_exchange(0, computed, Ordering::Relaxed, Ordering::Relaxed);
        self.state.load(Ordering::Relaxed)
    }

    pub(crate) fn set(&self, state: u8) {
        self.state.store(state, Ordering::Relaxed);
    }
}

/// `1`/`true`/`on` (any case) counts as set.
pub(crate) fn env_truthy(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"),
        Err(_) => false,
    }
}

/// Microseconds since this crate's (lazily fixed) epoch.
pub(crate) fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

/// Locks a mutex, shrugging off poisoning: diagnostics must keep working
/// after a `NumericsMode::Panic` unwound through a holder.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// JSON string escaping shared by the JSONL exporters.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as JSON: finite values print plainly, non-finite
/// values (legal in a metrics stream that *reports on* NaNs) become
/// strings `"NaN"` / `"Infinity"` / `"-Infinity"`.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

pub(crate) type FieldList = Vec<(Cow<'static, str>, String)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_f64_non_finite() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        out.push(',');
        push_json_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_json_f64(&mut out, 1.5);
        assert_eq!(out, "\"NaN\",\"Infinity\",1.5");
    }
}
