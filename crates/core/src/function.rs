//! Differentiable function values and the differential operators over them
//! (paper §2.1, Figures 2 & 3).

use crate::differentiable::Differentiable;
use crate::vector_space::LossValue;
use std::rc::Rc;

/// A *differential*: the linear map a JVP returns
/// (`(A.TangentVector) -> B.TangentVector`).
pub type Differential<A, B> =
    Box<dyn Fn(&<A as Differentiable>::TangentVector) -> <B as Differentiable>::TangentVector>;

/// A *pullback*: the linear map a VJP returns
/// (`(B.TangentVector) -> A.TangentVector`).
pub type Pullback<A, B> =
    Box<dyn Fn(&<B as Differentiable>::TangentVector) -> <A as Differentiable>::TangentVector>;

type OrigFn<A, B> = Rc<dyn Fn(&A) -> B>;
type JvpFn<A, B> = Rc<dyn Fn(&A) -> (B, Differential<A, B>)>;
type VjpFn<A, B> = Rc<dyn Fn(&A) -> (B, Pullback<A, B>)>;

/// A differentiable function value: the bundle of the original function with
/// its JVP (forward mode) and VJP (reverse mode) derivative functions —
/// the paper's `@differentiable (A) -> B` function type family (Figure 3).
///
/// Where Swift's compiler builds these bundles implicitly when a plain
/// closure meets a `@differentiable` context, here they are built explicitly
/// ([`DifferentiableFn::new`], [`DifferentiableFn::from_vjp`], …) or
/// synthesized from IR by the `s4tf-sil` code transformation.
///
/// Bundles are cheaply clonable (the three function values are
/// reference-counted) and compose: [`DifferentiableFn::compose`] chain-rules
/// both derivative functions.
pub struct DifferentiableFn<A: Differentiable, B: Differentiable> {
    original: OrigFn<A, B>,
    jvp: JvpFn<A, B>,
    vjp: VjpFn<A, B>,
}

impl<A: Differentiable, B: Differentiable> Clone for DifferentiableFn<A, B> {
    fn clone(&self) -> Self {
        DifferentiableFn {
            original: Rc::clone(&self.original),
            jvp: Rc::clone(&self.jvp),
            vjp: Rc::clone(&self.vjp),
        }
    }
}

impl<A: Differentiable, B: Differentiable> std::fmt::Debug for DifferentiableFn<A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DifferentiableFn<{}, {}>",
            std::any::type_name::<A>(),
            std::any::type_name::<B>()
        )
    }
}

impl<A: Differentiable + 'static, B: Differentiable + 'static> DifferentiableFn<A, B> {
    /// Builds a bundle from all three elements.
    pub fn new(
        original: impl Fn(&A) -> B + 'static,
        jvp: impl Fn(&A) -> (B, Differential<A, B>) + 'static,
        vjp: impl Fn(&A) -> (B, Pullback<A, B>) + 'static,
    ) -> Self {
        DifferentiableFn {
            original: Rc::new(original),
            jvp: Rc::new(jvp),
            vjp: Rc::new(vjp),
        }
    }

    /// Builds a bundle from a VJP alone (the common case for reverse-mode
    /// work). The original function evaluates the VJP and discards the
    /// pullback; the JVP is unavailable and panics if requested.
    ///
    /// # Panics
    /// The resulting bundle's [`DifferentiableFn::jvp`] panics when called.
    pub fn from_vjp(vjp: impl Fn(&A) -> (B, Pullback<A, B>) + 'static) -> Self {
        let vjp = Rc::new(vjp);
        let vjp_for_f = Rc::clone(&vjp);
        DifferentiableFn {
            original: Rc::new(move |x| vjp_for_f(x).0),
            jvp: Rc::new(|_| {
                panic!("this differentiable function value was built from a VJP only")
            }),
            vjp,
        }
    }

    /// Calls the original function.
    pub fn call(&self, x: &A) -> B {
        (self.original)(x)
    }

    /// Evaluates the JVP: the value together with the differential at `x`.
    pub fn jvp(&self, x: &A) -> (B, Differential<A, B>) {
        (self.jvp)(x)
    }

    /// Evaluates the VJP: the value together with the pullback at `x`.
    pub fn vjp(&self, x: &A) -> (B, Pullback<A, B>) {
        (self.vjp)(x)
    }

    /// Chain rule: `g ∘ self`, with both derivative functions composed.
    pub fn compose<C: Differentiable + 'static>(
        &self,
        g: &DifferentiableFn<B, C>,
    ) -> DifferentiableFn<A, C> {
        let (f0, g0) = (Rc::clone(&self.original), Rc::clone(&g.original));
        let (fj, gj) = (Rc::clone(&self.jvp), Rc::clone(&g.jvp));
        let (fv, gv) = (Rc::clone(&self.vjp), Rc::clone(&g.vjp));
        DifferentiableFn {
            original: Rc::new(move |x| g0(&f0(x))),
            jvp: Rc::new(move |x| {
                let (y, df) = fj(x);
                let (z, dg) = gj(&y);
                (
                    z,
                    Box::new(move |dx: &A::TangentVector| dg(&df(dx))) as Differential<A, C>,
                )
            }),
            vjp: Rc::new(move |x| {
                let (y, pbf) = fv(x);
                let (z, pbg) = gv(&y);
                (
                    z,
                    Box::new(move |dz: &C::TangentVector| pbf(&pbg(dz))) as Pullback<A, C>,
                )
            }),
        }
    }
}

impl<A: Differentiable + 'static> DifferentiableFn<A, A> {
    /// The identity function, with identity derivatives.
    pub fn identity() -> Self
    where
        A::TangentVector: Clone,
    {
        DifferentiableFn::new(
            |x: &A| x.clone(),
            |x| {
                (
                    x.clone(),
                    Box::new(|dx: &A::TangentVector| dx.clone()) as Differential<A, A>,
                )
            },
            |x| {
                (
                    x.clone(),
                    Box::new(|dy: &A::TangentVector| dy.clone()) as Pullback<A, A>,
                )
            },
        )
    }
}

// --------------------------------------------------------------------------
// Differential operators (paper Figure 2).
// --------------------------------------------------------------------------

/// Evaluates `f` at `x`, returning the value and the reverse-mode pullback.
///
/// This is the primitive the other operators are defined in terms of
/// (paper §2.1).
pub fn value_with_pullback<A: Differentiable + 'static, B: Differentiable + 'static>(
    x: &A,
    f: &DifferentiableFn<A, B>,
) -> (B, Pullback<A, B>) {
    f.vjp(x)
}

/// Evaluates `f` at `x`, returning the value and the gradient with respect
/// to `x` — the paper's `valueWithGradient(at:in:)`.
pub fn value_with_gradient<A, B>(x: &A, f: &DifferentiableFn<A, B>) -> (B, A::TangentVector)
where
    A: Differentiable + 'static,
    B: LossValue + 'static,
{
    let (y, pullback) = f.vjp(x);
    let grad = pullback(&y.unit_tangent());
    (y, grad)
}

/// The gradient of a loss-valued `f` at `x` — the paper's Figure 2
/// `gradient(at:in:)`.
pub fn gradient<A, B>(x: &A, f: &DifferentiableFn<A, B>) -> A::TangentVector
where
    A: Differentiable + 'static,
    B: LossValue + 'static,
{
    value_with_gradient(x, f).1
}

/// Evaluates `f` at `x`, returning the value and the forward-mode
/// differential.
pub fn value_with_differential<A: Differentiable + 'static, B: Differentiable + 'static>(
    x: &A,
    f: &DifferentiableFn<A, B>,
) -> (B, Differential<A, B>) {
    f.jvp(x)
}

/// The scalar derivative of `f` at `x` via forward mode (`d/dx f(x)` for
/// `f: R → R`).
pub fn derivative<B>(x: f64, f: &DifferentiableFn<f64, B>) -> B::TangentVector
where
    B: Differentiable + 'static,
{
    let (_, differential) = f.jvp(&x);
    differential(&1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x ↦ x² with hand-written JVP and VJP.
    fn square() -> DifferentiableFn<f64, f64> {
        DifferentiableFn::new(
            |x: &f64| x * x,
            |x: &f64| {
                let x = *x;
                (
                    x * x,
                    Box::new(move |dx: &f64| 2.0 * x * dx) as Differential<f64, f64>,
                )
            },
            |x: &f64| {
                let x = *x;
                (
                    x * x,
                    Box::new(move |dy: &f64| 2.0 * x * dy) as Pullback<f64, f64>,
                )
            },
        )
    }

    /// x ↦ sin(x).
    fn sin_fn() -> DifferentiableFn<f64, f64> {
        DifferentiableFn::new(
            |x: &f64| x.sin(),
            |x: &f64| {
                let x = *x;
                (
                    x.sin(),
                    Box::new(move |dx: &f64| x.cos() * dx) as Differential<f64, f64>,
                )
            },
            |x: &f64| {
                let x = *x;
                (
                    x.sin(),
                    Box::new(move |dy: &f64| x.cos() * dy) as Pullback<f64, f64>,
                )
            },
        )
    }

    #[test]
    fn call_and_gradient() {
        let f = square();
        assert_eq!(f.call(&3.0), 9.0);
        assert_eq!(gradient(&3.0, &f), 6.0);
        let (v, g) = value_with_gradient(&3.0, &f);
        assert_eq!((v, g), (9.0, 6.0));
    }

    #[test]
    fn forward_mode() {
        let f = square();
        assert_eq!(derivative(3.0, &f), 6.0);
        let (v, df) = value_with_differential(&3.0, &f);
        assert_eq!(v, 9.0);
        assert_eq!(df(&2.0), 12.0); // linearity in the seed
    }

    #[test]
    fn composition_chain_rules_both_modes() {
        // h(x) = sin(x²); h'(x) = cos(x²)·2x
        let h = square().compose(&sin_fn());
        let x = 0.7f64;
        assert!((h.call(&x) - (x * x).sin()).abs() < 1e-12);
        let expected = (x * x).cos() * 2.0 * x;
        assert!((gradient(&x, &h) - expected).abs() < 1e-12);
        assert!((derivative(x, &h) - expected).abs() < 1e-12);
    }

    #[test]
    fn identity_function() {
        let id = DifferentiableFn::<f64, f64>::identity();
        assert_eq!(id.call(&5.0), 5.0);
        assert_eq!(gradient(&5.0, &id), 1.0);
        assert_eq!(derivative(5.0, &id), 1.0);
    }

    #[test]
    fn from_vjp_only() {
        let f = DifferentiableFn::<f64, f64>::from_vjp(|x| {
            let x = *x;
            (x * 3.0, Box::new(move |dy: &f64| 3.0 * dy))
        });
        assert_eq!(f.call(&2.0), 6.0);
        assert_eq!(gradient(&2.0, &f), 3.0);
    }

    #[test]
    #[should_panic(expected = "VJP only")]
    fn from_vjp_has_no_jvp() {
        let f = DifferentiableFn::<f64, f64>::from_vjp(|x| {
            let x = *x;
            (x, Box::new(move |dy: &f64| *dy))
        });
        let _ = f.jvp(&1.0);
    }

    #[test]
    fn pullback_is_linear() {
        let f = square();
        let (_, pb) = value_with_pullback(&4.0, &f);
        assert_eq!(pb(&1.0) + pb(&2.0), pb(&3.0));
    }

    #[test]
    fn tensor_valued_gradient() {
        use s4tf_tensor::Tensor;
        // f(x) = sum(x²): gradient is 2x.
        let f = DifferentiableFn::<Tensor<f32>, Tensor<f32>>::from_vjp(|x| {
            let x = x.clone();
            let y = x.square().sum();
            (
                y,
                Box::new(move |dy: &Tensor<f32>| x.mul_scalar(2.0).mul(dy)),
            )
        });
        let x = Tensor::from_vec(vec![1.0f32, -2.0, 3.0], &[3]);
        let g = gradient(&x, &f);
        assert_eq!(g.as_slice(), &[2.0, -4.0, 6.0]);
        let (v, _) = value_with_gradient(&x, &f);
        assert_eq!(v.scalar_value(), 14.0);
    }

    #[test]
    fn clone_and_debug() {
        let f = square();
        let g = f.clone();
        assert_eq!(g.call(&2.0), 4.0);
        assert!(format!("{f:?}").contains("DifferentiableFn"));
    }
}
