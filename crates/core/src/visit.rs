//! Leaf traversal over tangent vectors.
//!
//! A tangent vector is an aggregate of tensor leaves (plus scalar and
//! unit components for non-tensor state). Collectives — the distributed
//! data-parallel all-reduce in `s4tf::dist` — need to walk those leaves
//! generically to flatten a gradient onto the wire and scatter the
//! reduced values back, without knowing the concrete model type.
//!
//! [`VisitTangent<Leaf>`] is that traversal: `visit_leaves` calls `f`
//! once per leaf of type `Leaf`, in declaration order (the same stable
//! order on every worker, which is what makes the wire layout a pure
//! function of the model architecture). [`differentiable_struct!`]
//! synthesizes the impl for every generated tangent struct, so any model
//! declared through the macro is wire-reducible for free.
//!
//! Scalar (`f32`/`f64`) and unit components are *not* leaves for any
//! `Leaf` type: no layer stores trainable scalars, and a scalar that
//! never crosses the wire cannot desynchronize workers. The tensor leaf
//! instance lives here ([`Tensor<T>`]); the device-tensor instance
//! (`DTensor`) lives in `s4tf-runtime` next to the type.

use s4tf_tensor::{Float, Tensor};

/// Visits every `Leaf`-typed component of a tangent vector, in stable
/// declaration order.
pub trait VisitTangent<Leaf> {
    /// Calls `f` on each leaf, by reference.
    fn visit_leaves(&self, f: &mut dyn FnMut(&Leaf));

    /// Calls `f` on each leaf, by mutable reference (for scattering
    /// reduced values back into the tangent).
    fn visit_leaves_mut(&mut self, f: &mut dyn FnMut(&mut Leaf));

    /// Number of leaves the traversal visits.
    fn leaf_count(&self) -> usize {
        let mut n = 0;
        self.visit_leaves(&mut |_| n += 1);
        n
    }
}

/// A tensor tangent is a single leaf.
impl<T: Float> VisitTangent<Tensor<T>> for Tensor<T> {
    fn visit_leaves(&self, f: &mut dyn FnMut(&Tensor<T>)) {
        f(self);
    }

    fn visit_leaves_mut(&mut self, f: &mut dyn FnMut(&mut Tensor<T>)) {
        f(self);
    }
}

/// Scalar and unit tangent components carry no tensor leaves.
macro_rules! leafless {
    ($($ty:ty),* $(,)?) => {$(
        impl<Leaf> VisitTangent<Leaf> for $ty {
            fn visit_leaves(&self, _f: &mut dyn FnMut(&Leaf)) {}
            fn visit_leaves_mut(&mut self, _f: &mut dyn FnMut(&mut Leaf)) {}
        }
    )*};
}

leafless!((), f32, f64);

/// Pair tangents (e.g. `Chain`'s `(A::TangentVector, B::TangentVector)`)
/// traverse first then second.
impl<Leaf, A: VisitTangent<Leaf>, B: VisitTangent<Leaf>> VisitTangent<Leaf> for (A, B) {
    fn visit_leaves(&self, f: &mut dyn FnMut(&Leaf)) {
        self.0.visit_leaves(f);
        self.1.visit_leaves(f);
    }

    fn visit_leaves_mut(&mut self, f: &mut dyn FnMut(&mut Leaf)) {
        self.0.visit_leaves_mut(f);
        self.1.visit_leaves_mut(f);
    }
}

/// Sequence tangents traverse in element order.
impl<Leaf, A: VisitTangent<Leaf>> VisitTangent<Leaf> for Vec<A> {
    fn visit_leaves(&self, f: &mut dyn FnMut(&Leaf)) {
        for x in self {
            x.visit_leaves(f);
        }
    }

    fn visit_leaves_mut(&mut self, f: &mut dyn FnMut(&mut Leaf)) {
        for x in self {
            x.visit_leaves_mut(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_is_one_leaf() {
        let t = Tensor::<f32>::zeros(&[2, 3]);
        assert_eq!(VisitTangent::<Tensor<f32>>::leaf_count(&t), 1);
    }

    #[test]
    fn scalars_and_unit_are_leafless() {
        assert_eq!(VisitTangent::<Tensor<f32>>::leaf_count(&3.5f64), 0);
        assert_eq!(VisitTangent::<Tensor<f32>>::leaf_count(&()), 0);
    }

    #[test]
    fn pairs_and_vecs_compose_in_order() {
        let mut pair = (
            Tensor::<f32>::from_vec(vec![1.0], &[1]),
            vec![
                Tensor::<f32>::from_vec(vec![2.0], &[1]),
                Tensor::<f32>::from_vec(vec![3.0], &[1]),
            ],
        );
        let mut seen = Vec::new();
        pair.visit_leaves(&mut |t: &Tensor<f32>| seen.push(t.as_slice()[0]));
        assert_eq!(seen, vec![1.0, 2.0, 3.0], "declaration order");
        pair.visit_leaves_mut(&mut |t: &mut Tensor<f32>| *t = t.mul_scalar(2.0));
        assert_eq!(pair.0.as_slice(), &[2.0]);
        assert_eq!(pair.1[1].as_slice(), &[6.0]);
    }
}
