//! The [`Differentiable`] protocol (paper Figure 1).

use crate::vector_space::{AdditiveArithmetic, LossValue, VectorSpace};
use s4tf_tensor::{Float, Tensor};

/// A type whose values represent points on a differentiable manifold.
///
/// Direct transcription of the paper's Figure 1:
///
/// ```swift
/// protocol Differentiable {
///   associatedtype TangentVector: AdditiveArithmetic
///   mutating func move(along direction: TangentVector)
/// }
/// ```
///
/// `TangentVector` values are vectors in the tangent space at a point;
/// [`Differentiable::move_along`] is the exponential map, moving a value by
/// the distance and direction a tangent vector indicates. For flat manifolds
/// (`f64`, `Tensor`, structs of those) the tangent space is the type itself
/// (up to shape) and `move_along` is `+=` — which is why an optimizer can
/// update a model in place through a unique borrow (paper §4.2).
pub trait Differentiable: Clone {
    /// The type of tangent vectors at points of `Self`.
    type TangentVector: VectorSpace;

    /// Moves `self` along `direction` (the exponential map).
    fn move_along(&mut self, direction: &Self::TangentVector);

    /// Returns `self` moved along `direction` (the pure-functional spelling
    /// of [`Differentiable::move_along`]; see paper Figure 8 for why the
    /// two are equivalent).
    fn moved(mut self, direction: &Self::TangentVector) -> Self {
        self.move_along(direction);
        self
    }

    /// A zero tangent vector for this point.
    ///
    /// Defaults to `TangentVector::zero()`; types whose tangent zero depends
    /// on the point (e.g. `Tensor`, whose natural zero has the point's
    /// shape) override this.
    fn zero_tangent(&self) -> Self::TangentVector {
        Self::TangentVector::zero()
    }

    /// Moves `self` along `alpha · direction` without materializing the
    /// scaled tangent — the zero-allocation SGD update
    /// `model.move_along_scaled(&gradient, -lr)` (paper §4.2: the
    /// optimizer holds the model via a unique borrow, so the update is
    /// in place). Bit-identical to
    /// `self.move_along(&direction.scaled_by(alpha))`.
    fn move_along_scaled(&mut self, direction: &Self::TangentVector, alpha: f64) {
        self.move_along(&direction.scaled_by(alpha));
    }
}

impl Differentiable for f32 {
    type TangentVector = f32;
    fn move_along(&mut self, direction: &f32) {
        *self += direction;
    }
    fn move_along_scaled(&mut self, direction: &f32, alpha: f64) {
        *self += (*direction as f64 * alpha) as f32;
    }
}

impl Differentiable for f64 {
    type TangentVector = f64;
    fn move_along(&mut self, direction: &f64) {
        *self += direction;
    }
    fn move_along_scaled(&mut self, direction: &f64, alpha: f64) {
        *self += direction * alpha;
    }
}

impl<T: Float> Differentiable for Tensor<T> {
    type TangentVector = Tensor<T>;

    fn move_along(&mut self, direction: &Tensor<T>) {
        // A scalar direction is the broadcastable zero-or-uniform tangent.
        if direction.rank() == 0 {
            self.add_scalar_assign(direction.scalar_value());
        } else {
            self.add_assign_tensor(direction);
        }
    }

    fn move_along_scaled(&mut self, direction: &Tensor<T>, alpha: f64) {
        if direction.rank() == 0 {
            // Matches the default path: the tangent is scaled first, then
            // added (`(d·α) + x`, elementwise).
            self.add_scalar_assign(direction.scalar_value() * T::from_f64(alpha));
        } else if self.shape() == direction.shape() {
            self.scaled_add_assign(T::from_f64(alpha), direction);
        } else {
            // Trailing-broadcast tangent: no in-place kernel, scale then add.
            self.add_assign_tensor(&direction.mul_scalar(T::from_f64(alpha)));
        }
    }

    fn zero_tangent(&self) -> Tensor<T> {
        Tensor::zeros_like(self)
    }
}

impl Differentiable for () {
    type TangentVector = ();
    fn move_along(&mut self, _: &()) {}
}

impl<A: Differentiable, B: Differentiable> Differentiable for (A, B) {
    type TangentVector = (A::TangentVector, B::TangentVector);
    fn move_along(&mut self, direction: &Self::TangentVector) {
        self.0.move_along(&direction.0);
        self.1.move_along(&direction.1);
    }
    fn move_along_scaled(&mut self, direction: &Self::TangentVector, alpha: f64) {
        self.0.move_along_scaled(&direction.0, alpha);
        self.1.move_along_scaled(&direction.1, alpha);
    }
    fn zero_tangent(&self) -> Self::TangentVector {
        (self.0.zero_tangent(), self.1.zero_tangent())
    }
}

impl<A: Differentiable> Differentiable for Vec<A> {
    type TangentVector = Vec<A::TangentVector>;
    fn move_along(&mut self, direction: &Self::TangentVector) {
        if direction.is_empty() {
            return; // broadcastable zero
        }
        assert_eq!(self.len(), direction.len(), "tangent length mismatch");
        for (x, d) in self.iter_mut().zip(direction) {
            x.move_along(d);
        }
    }
    fn move_along_scaled(&mut self, direction: &Self::TangentVector, alpha: f64) {
        if direction.is_empty() {
            return; // broadcastable zero
        }
        assert_eq!(self.len(), direction.len(), "tangent length mismatch");
        for (x, d) in self.iter_mut().zip(direction) {
            x.move_along_scaled(d, alpha);
        }
    }
    fn zero_tangent(&self) -> Self::TangentVector {
        self.iter().map(|x| x.zero_tangent()).collect()
    }
}

impl LossValue for f32 {
    fn unit_tangent(&self) -> f32 {
        1.0
    }
    fn loss_value(&self) -> f64 {
        *self as f64
    }
}

impl LossValue for f64 {
    fn unit_tangent(&self) -> f64 {
        1.0
    }
    fn loss_value(&self) -> f64 {
        *self
    }
}

impl<T: Float> LossValue for Tensor<T> {
    /// A ones tensor of the point's shape. For the scalar-valued losses the
    /// `gradient` operator is meant for, this is the cotangent `1`.
    fn unit_tangent(&self) -> Tensor<T> {
        Tensor::ones(self.dims())
    }

    /// The mean of the elements (the value itself for scalar tensors).
    fn loss_value(&self) -> f64 {
        self.as_slice().iter().map(|x| x.to_f64()).sum::<f64>() / self.num_elements() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_move_along() {
        let mut x = 1.0f64;
        x.move_along(&0.5);
        assert_eq!(x, 1.5);
        assert_eq!(2.0f32.moved(&1.0), 3.0);
        assert_eq!(1.0f64.zero_tangent(), 0.0);
    }

    #[test]
    fn tensor_move_along() {
        let mut t = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        t.move_along(&Tensor::from_vec(vec![0.5, -0.5], &[2]));
        assert_eq!(t.as_slice(), &[1.5, 1.5]);
        // scalar (broadcastable) tangent
        t.move_along(&Tensor::scalar(1.0));
        assert_eq!(t.as_slice(), &[2.5, 2.5]);
        assert_eq!(t.zero_tangent().dims(), &[2]);
    }

    #[test]
    fn tuple_and_vec_move_along() {
        let mut p = (1.0f64, Tensor::from_vec(vec![1.0f32], &[1]));
        p.move_along(&(1.0, Tensor::from_vec(vec![2.0f32], &[1])));
        assert_eq!(p.0, 2.0);
        assert_eq!(p.1.as_slice(), &[3.0]);

        let mut v = vec![1.0f64, 2.0];
        v.move_along(&vec![10.0, 20.0]);
        assert_eq!(v, vec![11.0, 22.0]);
        v.move_along(&Vec::new()); // zero tangent is a no-op
        assert_eq!(v, vec![11.0, 22.0]);
    }

    #[test]
    fn loss_values() {
        assert_eq!(2.5f64.unit_tangent(), 1.0);
        assert_eq!(2.5f32.loss_value(), 2.5);
        let t = Tensor::scalar(4.0f32);
        assert_eq!(t.unit_tangent().scalar_value(), 1.0);
        assert_eq!(t.loss_value(), 4.0);
        let v = Tensor::from_vec(vec![1.0f32, 3.0], &[2]);
        assert_eq!(v.loss_value(), 2.0);
    }
}
