//! Array-subscript differentiation — the paper's §4.3 and Appendix B
//! (Figure 9), transcribed to Rust.
//!
//! The operation `my_op(values, a, b) = values[a] + values[b]` is O(1), but
//! the *functional* pullback formulation `(T) -> [T]` must materialize a
//! zero array per subscript read, making the derivative O(n) — violating the
//! efficient-gradient design goal. The *mutable-value-semantics* formulation
//! `(T, inout [T]) -> ()` accumulates into a caller-provided gradient buffer
//! in O(1).
//!
//! Both formulations are implemented below exactly as in Figure 9; the
//! Appendix-B experiment (`s4tf-bench`, `appendix_b`) sweeps `n` to show the
//! O(n) → O(1) gap.

/// The example operation to differentiate (Figure 9): `values[a] + values[b]`.
///
/// # Panics
/// Panics if `a` or `b` is out of bounds.
pub fn my_op(values: &[f32], a: usize, b: usize) -> f32 {
    values[a] + values[b]
}

// ---------------------------------------------------------------------------
// Functional formulation: pullback type (T) -> [T]
// ---------------------------------------------------------------------------

/// Subscript read with an explicit pullback in the *functional* style.
///
/// The pullback allocates an all-zeros array of length `values.len()` —
/// O(n) time and memory per call (Figure 9, "Functional representation").
///
/// # Panics
/// Panics if `index` is out of bounds.
pub fn subscript_with_functional_pullback(
    values: &[f32],
    index: usize,
) -> (f32, impl Fn(f32) -> Vec<f32>) {
    let size = values.len(); // optimization from the paper: capture only the size
    (values[index], move |dx: f32| {
        let mut tmp = vec![0.0f32; size]; // allocates O(n) memory!
        tmp[index] = dx;
        tmp
    })
}

/// Element-wise sum of two gradient arrays (Figure 9's `sumArraysHelper`).
///
/// # Panics
/// Panics if the lengths differ.
pub fn sum_arrays(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "gradient arrays must have equal length");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `my_op` with its pullback written in the functional style: the pullback
/// runs in O(n) (two zero-array materializations plus an O(n) sum).
pub fn my_op_with_functional_pullback(
    values: &[f32],
    a: usize,
    b: usize,
) -> (f32, impl Fn(f32) -> Vec<f32>) {
    let (a_val, a_pb) = subscript_with_functional_pullback(values, a);
    let (b_val, b_pb) = subscript_with_functional_pullback(values, b);
    (a_val + b_val, move |dx: f32| {
        let da = a_pb(dx); // O(n), allocates O(n)
        let db = b_pb(dx); // O(n), allocates O(n)
        sum_arrays(&da, &db) // O(n)
    })
}

// ---------------------------------------------------------------------------
// Mutable-value-semantics formulation: pullback type (T, inout [T]) -> ()
// ---------------------------------------------------------------------------

/// Subscript read with an explicit pullback in the *value-semantic* style:
/// the pullback accumulates into a uniquely borrowed gradient buffer in
/// O(1) (Figure 9, "Value semantic representation").
///
/// # Panics
/// The returned pullback panics if `index` is out of bounds for `d_values`.
pub fn subscript_with_mutable_pullback(
    values: &[f32],
    index: usize,
) -> (f32, impl Fn(f32, &mut Vec<f32>)) {
    (values[index], move |dx: f32, d_values: &mut Vec<f32>| {
        d_values[index] += dx; // constant time!
    })
}

/// `my_op` with its pullback written in the value-semantic style: the
/// pullback runs in O(1), irrespective of `values.len()`.
pub fn my_op_with_mutable_pullback(
    values: &[f32],
    a: usize,
    b: usize,
) -> (f32, impl Fn(f32, &mut Vec<f32>)) {
    let (a_val, a_pb) = subscript_with_mutable_pullback(values, a);
    let (b_val, b_pb) = subscript_with_mutable_pullback(values, b);
    (a_val + b_val, move |dx: f32, d_values: &mut Vec<f32>| {
        a_pb(dx, d_values); // constant time
        b_pb(dx, d_values); // constant time
    })
}

/// Runs the full gradient of `my_op` through the functional formulation
/// (allocates; O(n)).
pub fn gradient_functional(values: &[f32], a: usize, b: usize) -> Vec<f32> {
    let (_, pb) = my_op_with_functional_pullback(values, a, b);
    pb(1.0)
}

/// Runs the full gradient of `my_op` through the `inout` formulation
/// (accumulates into one buffer; O(1) per pullback call after the single
/// zero-initialization the *caller* owns).
pub fn gradient_mutable(values: &[f32], a: usize, b: usize) -> Vec<f32> {
    let (_, pb) = my_op_with_mutable_pullback(values, a, b);
    let mut grad = vec![0.0f32; values.len()];
    pb(1.0, &mut grad);
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn my_op_value() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(my_op(&v, 0, 3), 5.0);
        assert_eq!(my_op(&v, 2, 2), 6.0);
    }

    #[test]
    fn functional_pullback_materializes_zeros() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let (val, pb) = subscript_with_functional_pullback(&v, 1);
        assert_eq!(val, 2.0);
        assert_eq!(pb(1.0), vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(pb(2.5), vec![0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn mutable_pullback_accumulates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let (val, pb) = subscript_with_mutable_pullback(&v, 1);
        assert_eq!(val, 2.0);
        let mut grad = vec![0.0; 4];
        pb(1.0, &mut grad);
        pb(0.5, &mut grad);
        assert_eq!(grad, vec![0.0, 1.5, 0.0, 0.0]);
    }

    #[test]
    fn both_formulations_agree() {
        let v: Vec<f32> = (0..50).map(|i| i as f32).collect();
        for &(a, b) in &[(0, 49), (3, 3), (10, 20)] {
            assert_eq!(gradient_functional(&v, a, b), gradient_mutable(&v, a, b));
        }
    }

    #[test]
    fn repeated_index_doubles_gradient() {
        let v = [1.0, 2.0, 3.0];
        let g = gradient_mutable(&v, 1, 1);
        assert_eq!(g, vec![0.0, 2.0, 0.0]);
        assert_eq!(gradient_functional(&v, 1, 1), g);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let v: Vec<f32> = vec![1.0, -2.0, 0.5, 3.0];
        let (a, b) = (0, 2);
        let g = gradient_mutable(&v, a, b);
        let eps = 1e-3f32;
        for i in 0..v.len() {
            let mut vp = v.clone();
            vp[i] += eps;
            let mut vm = v.clone();
            vm[i] -= eps;
            let fd = (my_op(&vp, a, b) - my_op(&vm, a, b)) / (2.0 * eps);
            assert!((fd - g[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn sum_arrays_helper() {
        assert_eq!(sum_arrays(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }
}
