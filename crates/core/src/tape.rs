//! Define-by-run, runtime-taped reverse-mode AD.
//!
//! The paper (§2.3) contrasts its AOT compile-time code transformation with
//! AD systems that "trace the computation at runtime and differentiate the
//! trace" (Autograd, JAX, PyTorch, TensorFlow eager). This module implements
//! that alternative design so the benchmarks (experiment E9) can measure the
//! per-call overhead the compile-time transformation avoids: a [`Tape`]
//! records every scalar operation into a growable node list and
//! [`Tape::gradients`] walks it backwards.
//!
//! ```
//! use s4tf_core::tape::Tape;
//!
//! let tape = Tape::new();
//! let x = tape.var(3.0);
//! let y = (x * x + x.sin()).exp();
//! let grads = tape.gradients(y);
//! let expected = (9.0f64 + 3.0f64.sin()).exp() * (6.0 + 3.0f64.cos());
//! assert!((grads.wrt(x) - expected).abs() < 1e-9);
//! ```

use std::cell::RefCell;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// One recorded operation: up to two parents with their local partials.
#[derive(Debug, Clone, Copy)]
struct Node {
    parents: [usize; 2],
    partials: [f64; 2],
    n_parents: u8,
}

/// A gradient tape recording scalar operations for reverse-mode AD.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    values: RefCell<Vec<f64>>,
}

/// A scalar variable recorded on a [`Tape`].
///
/// `Var` is `Copy`: it is an index into the tape plus a cached value.
#[derive(Debug, Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    index: usize,
    value: f64,
}

/// The gradients of one output with respect to every tape variable.
#[derive(Debug, Clone)]
pub struct Gradients {
    adjoints: Vec<f64>,
}

impl Gradients {
    /// The gradient with respect to `v`.
    pub fn wrt(&self, v: Var<'_>) -> f64 {
        self.adjoints[v.index]
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes (inputs included) — the tape-growth metric
    /// the overhead benchmarks report.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records an input variable.
    pub fn var(&self, value: f64) -> Var<'_> {
        let index = self.push(Node {
            parents: [0, 0],
            partials: [0.0, 0.0],
            n_parents: 0,
        });
        self.values.borrow_mut().push(value);
        Var {
            tape: self,
            index,
            value,
        }
    }

    fn push(&self, node: Node) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        nodes.len() - 1
    }

    fn record1(&self, value: f64, parent: usize, partial: f64) -> Var<'_> {
        let index = self.push(Node {
            parents: [parent, 0],
            partials: [partial, 0.0],
            n_parents: 1,
        });
        self.values.borrow_mut().push(value);
        Var {
            tape: self,
            index,
            value,
        }
    }

    fn record2(&self, value: f64, parents: [usize; 2], partials: [f64; 2]) -> Var<'_> {
        let index = self.push(Node {
            parents,
            partials,
            n_parents: 2,
        });
        self.values.borrow_mut().push(value);
        Var {
            tape: self,
            index,
            value,
        }
    }

    /// Reverse pass: gradients of `output` with respect to every variable.
    pub fn gradients(&self, output: Var<'_>) -> Gradients {
        let nodes = self.nodes.borrow();
        let mut adjoints = vec![0.0; nodes.len()];
        adjoints[output.index] = 1.0;
        for i in (0..=output.index).rev() {
            let adj = adjoints[i];
            if adj == 0.0 {
                continue;
            }
            let node = nodes[i];
            for p in 0..node.n_parents as usize {
                adjoints[node.parents[p]] += adj * node.partials[p];
            }
        }
        Gradients { adjoints }
    }
}

impl<'t> Var<'t> {
    /// The recorded value.
    pub fn value(self) -> f64 {
        self.value
    }

    /// `sin(self)`.
    pub fn sin(self) -> Var<'t> {
        self.tape
            .record1(self.value.sin(), self.index, self.value.cos())
    }

    /// `cos(self)`.
    pub fn cos(self) -> Var<'t> {
        self.tape
            .record1(self.value.cos(), self.index, -self.value.sin())
    }

    /// `e^self`.
    pub fn exp(self) -> Var<'t> {
        let y = self.value.exp();
        self.tape.record1(y, self.index, y)
    }

    /// Natural logarithm.
    pub fn ln(self) -> Var<'t> {
        self.tape
            .record1(self.value.ln(), self.index, 1.0 / self.value)
    }

    /// `tanh(self)`.
    pub fn tanh(self) -> Var<'t> {
        let y = self.value.tanh();
        self.tape.record1(y, self.index, 1.0 - y * y)
    }

    /// `max(self, 0)`.
    pub fn relu(self) -> Var<'t> {
        let grad = if self.value > 0.0 { 1.0 } else { 0.0 };
        self.tape.record1(self.value.max(0.0), self.index, grad)
    }

    /// `self²`.
    pub fn square(self) -> Var<'t> {
        self.tape
            .record1(self.value * self.value, self.index, 2.0 * self.value)
    }

    /// `self^p` for constant `p`.
    pub fn powf(self, p: f64) -> Var<'t> {
        self.tape
            .record1(self.value.powf(p), self.index, p * self.value.powf(p - 1.0))
    }
}

impl<'t> Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.tape
            .record2(self.value + rhs.value, [self.index, rhs.index], [1.0, 1.0])
    }
}

impl<'t> Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.tape
            .record2(self.value - rhs.value, [self.index, rhs.index], [1.0, -1.0])
    }
}

impl<'t> Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.record2(
            self.value * rhs.value,
            [self.index, rhs.index],
            [rhs.value, self.value],
        )
    }
}

impl<'t> Div for Var<'t> {
    type Output = Var<'t>;
    fn div(self, rhs: Var<'t>) -> Var<'t> {
        self.tape.record2(
            self.value / rhs.value,
            [self.index, rhs.index],
            [1.0 / rhs.value, -self.value / (rhs.value * rhs.value)],
        )
    }
}

impl<'t> Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        self.tape.record1(-self.value, self.index, -1.0)
    }
}

impl<'t> Add<f64> for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: f64) -> Var<'t> {
        self.tape.record1(self.value + rhs, self.index, 1.0)
    }
}

impl<'t> Mul<f64> for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: f64) -> Var<'t> {
        self.tape.record1(self.value * rhs, self.index, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_gradient() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        // y = x³ - 2x
        let y = x * x * x - x * 2.0;
        assert_eq!(y.value(), 21.0);
        let g = tape.gradients(y);
        assert_eq!(g.wrt(x), 25.0); // 3x² - 2 = 25
    }

    #[test]
    fn multivariate_gradient() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let y = tape.var(5.0);
        // f = x·y + sin(x)
        let f = x * y + x.sin();
        let g = tape.gradients(f);
        assert!((g.wrt(x) - (5.0 + 2.0f64.cos())).abs() < 1e-12);
        assert_eq!(g.wrt(y), 2.0);
    }

    #[test]
    fn fan_out_accumulates() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        // f = x·x uses x twice: gradient must accumulate to 2x.
        let f = x * x;
        assert_eq!(tape.gradients(f).wrt(x), 6.0);
    }

    #[test]
    fn transcendental_chain() {
        let tape = Tape::new();
        let x = tape.var(0.5);
        let f = (x.square() + x.sin()).exp();
        let expected = (0.25f64 + 0.5f64.sin()).exp() * (1.0 + 0.5f64.cos());
        assert!((tape.gradients(f).wrt(x) - expected).abs() < 1e-9);
    }

    #[test]
    fn division_and_neg() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let y = tape.var(4.0);
        let f = -(x / y);
        let g = tape.gradients(f);
        assert_eq!(g.wrt(x), -0.25);
        assert_eq!(g.wrt(y), 0.125);
    }

    #[test]
    fn relu_and_ln_and_powf() {
        let tape = Tape::new();
        let x = tape.var(2.0);
        let f = x.relu().ln() + x.powf(3.0);
        let g = tape.gradients(f);
        assert!((g.wrt(x) - (0.5 + 12.0)).abs() < 1e-12);

        let neg = tape.var(-1.0);
        let r = neg.relu();
        assert_eq!(tape.gradients(r).wrt(neg), 0.0);
    }

    #[test]
    fn control_flow_is_just_host_control_flow() {
        // Define-by-run: the tape records whichever branch ran.
        fn f(tape: &Tape, x0: f64) -> (Var<'_>, Var<'_>) {
            let x = tape.var(x0);
            let y = if x0 > 0.0 { x * x } else { x * 3.0 };
            (x, y)
        }
        let tape = Tape::new();
        let (x, y) = f(&tape, 2.0);
        assert_eq!(tape.gradients(y).wrt(x), 4.0);
        let tape = Tape::new();
        let (x, y) = f(&tape, -2.0);
        assert_eq!(tape.gradients(y).wrt(x), 3.0);
    }

    #[test]
    fn tape_growth_is_linear_in_ops() {
        let tape = Tape::new();
        let x = tape.var(1.0);
        let mut acc = x;
        for _ in 0..100 {
            acc = acc * x + 1.0;
        }
        // 1 input + 100 iterations × 2 ops
        assert_eq!(tape.len(), 201);
        assert!(!tape.is_empty());
    }

    #[test]
    fn gradient_of_intermediate() {
        let tape = Tape::new();
        let x = tape.var(3.0);
        let y = x * x; // dy/dx = 6
        let _z = y * y; // not requested
        assert_eq!(tape.gradients(y).wrt(x), 6.0);
    }
}
