//! The custom-derivative registry — the paper's `@derivative(of:)`
//! attribute (§2.1).
//!
//! The AD code transformation is recursive: the derivative of a function is
//! built from the derivatives of its callees. The recursion needs base
//! cases, and the paper makes those *fully customizable*: users register a
//! derivative for a named operation, and the transformation stops recursing
//! when it reaches a registered name. The `s4tf-sil` derivative-synthesis
//! pass consults this registry for its scalar base cases, so registering a
//! custom derivative here changes the synthesized code there — the same
//! extension point the paper describes.

use std::collections::HashMap;
use std::sync::RwLock;

/// A registered derivative for a unary scalar operation.
#[derive(Clone, Copy, Debug)]
pub struct UnaryDerivative {
    /// The original function.
    pub f: fn(f64) -> f64,
    /// Its derivative `df/dx`.
    pub df: fn(f64) -> f64,
}

/// A registered derivative for a binary scalar operation.
#[derive(Clone, Copy, Debug)]
pub struct BinaryDerivative {
    /// The original function.
    pub f: fn(f64, f64) -> f64,
    /// Both partial derivatives `(∂f/∂x, ∂f/∂y)` at a point.
    pub df: fn(f64, f64) -> (f64, f64),
}

struct Registry {
    unary: HashMap<String, UnaryDerivative>,
    binary: HashMap<String, BinaryDerivative>,
}

fn registry() -> &'static RwLock<Registry> {
    use std::sync::OnceLock;
    static REGISTRY: OnceLock<RwLock<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(builtins()))
}

fn builtins() -> Registry {
    let mut unary: HashMap<String, UnaryDerivative> = HashMap::new();
    let mut binary: HashMap<String, BinaryDerivative> = HashMap::new();

    let mut u = |name: &str, f: fn(f64) -> f64, df: fn(f64) -> f64| {
        unary.insert(name.to_string(), UnaryDerivative { f, df });
    };
    u("sin", f64::sin, f64::cos);
    u("cos", f64::cos, |x| -x.sin());
    u("exp", f64::exp, f64::exp);
    u("ln", f64::ln, |x| 1.0 / x);
    u("sqrt", f64::sqrt, |x| 0.5 / x.sqrt());
    u("tanh", f64::tanh, |x| 1.0 - x.tanh() * x.tanh());
    u("sigmoid", sigmoid, |x| {
        let s = sigmoid(x);
        s * (1.0 - s)
    });
    u("relu", |x| x.max(0.0), |x| if x > 0.0 { 1.0 } else { 0.0 });
    u("square", |x| x * x, |x| 2.0 * x);
    u("neg", |x| -x, |_| -1.0);
    u("recip", |x| 1.0 / x, |x| -1.0 / (x * x));
    u("abs", f64::abs, f64::signum);
    // Piecewise-constant helpers (derivative zero almost everywhere); the
    // SIL JVP emitter uses them to express relu/abs/max/min partials.
    u("step", |x| if x >= 0.0 { 1.0 } else { 0.0 }, |_| 0.0);
    u("sign", f64::signum, |_| 0.0);

    let mut b = |name: &str, f: fn(f64, f64) -> f64, df: fn(f64, f64) -> (f64, f64)| {
        binary.insert(name.to_string(), BinaryDerivative { f, df });
    };
    b("add", |x, y| x + y, |_, _| (1.0, 1.0));
    b("sub", |x, y| x - y, |_, _| (1.0, -1.0));
    b("mul", |x, y| x * y, |x, y| (y, x));
    b("div", |x, y| x / y, |x, y| (1.0 / y, -x / (y * y)));
    b("pow", f64::powf, |x, y| {
        (y * x.powf(y - 1.0), x.powf(y) * x.ln())
    });
    b("max", f64::max, |x, y| {
        if x >= y {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    });
    b("min", f64::min, |x, y| {
        if x <= y {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    });

    Registry { unary, binary }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Registers (or overrides) a custom derivative for a unary operation —
/// the equivalent of writing `@derivative(of: name)`.
pub fn register_unary(name: &str, d: UnaryDerivative) {
    registry()
        .write()
        .expect("derivative registry poisoned")
        .unary
        .insert(name.to_string(), d);
}

/// Registers (or overrides) a custom derivative for a binary operation.
pub fn register_binary(name: &str, d: BinaryDerivative) {
    registry()
        .write()
        .expect("derivative registry poisoned")
        .binary
        .insert(name.to_string(), d);
}

/// Looks up the registered derivative of a unary operation.
pub fn lookup_unary(name: &str) -> Option<UnaryDerivative> {
    registry()
        .read()
        .expect("derivative registry poisoned")
        .unary
        .get(name)
        .copied()
}

/// Looks up the registered derivative of a binary operation.
pub fn lookup_binary(name: &str) -> Option<BinaryDerivative> {
    registry()
        .read()
        .expect("derivative registry poisoned")
        .binary
        .get(name)
        .copied()
}

/// Names of all registered unary operations (sorted, for diagnostics).
pub fn unary_names() -> Vec<String> {
    let mut names: Vec<String> = registry()
        .read()
        .expect("derivative registry poisoned")
        .unary
        .keys()
        .cloned()
        .collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_unary_derivatives() {
        let d = lookup_unary("sin").unwrap();
        assert_eq!((d.f)(0.0), 0.0);
        assert_eq!((d.df)(0.0), 1.0);
        let d = lookup_unary("relu").unwrap();
        assert_eq!((d.df)(-1.0), 0.0);
        assert_eq!((d.df)(1.0), 1.0);
        assert!(lookup_unary("no_such_op").is_none());
    }

    #[test]
    fn builtin_binary_derivatives() {
        let d = lookup_binary("mul").unwrap();
        assert_eq!((d.f)(3.0, 4.0), 12.0);
        assert_eq!((d.df)(3.0, 4.0), (4.0, 3.0));
        let d = lookup_binary("div").unwrap();
        let (dx, dy) = (d.df)(1.0, 2.0);
        assert_eq!(dx, 0.5);
        assert_eq!(dy, -0.25);
    }

    #[test]
    fn derivatives_consistent_with_finite_differences() {
        let eps = 1e-6;
        for name in unary_names() {
            let d = lookup_unary(&name).unwrap();
            // Probe points where every builtin is differentiable.
            for &x in &[0.4f64, 1.3, 2.1] {
                let fd = ((d.f)(x + eps) - (d.f)(x - eps)) / (2.0 * eps);
                let ad = (d.df)(x);
                assert!((fd - ad).abs() < 1e-4, "{name} at {x}: fd={fd} ad={ad}");
            }
        }
    }

    #[test]
    fn custom_registration_overrides() {
        register_unary(
            "cube_test_only",
            UnaryDerivative {
                f: |x| x * x * x,
                df: |x| 3.0 * x * x,
            },
        );
        let d = lookup_unary("cube_test_only").unwrap();
        assert_eq!((d.f)(2.0), 8.0);
        assert_eq!((d.df)(2.0), 12.0);
    }

    #[test]
    fn unary_names_sorted() {
        let names = unary_names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.iter().any(|n| n == "exp"));
    }
}
