//! # s4tf-core
//!
//! The differentiable-programming core of the Swift-for-TensorFlow
//! reproduction: Section 2 of *Swift for TensorFlow: A portable, flexible
//! platform for deep learning* (MLSys 2021).
//!
//! The paper's AD system has three pillars, each reproduced here:
//!
//! 1. **The [`Differentiable`] protocol** (paper Figure 1): any type with an
//!    associated [`Differentiable::TangentVector`] (an
//!    [`AdditiveArithmetic`] vector-space type) and a
//!    [`Differentiable::move_along`] ("exponential map") can be
//!    differentiated — AD is *not coupled to any Tensor type*.
//!    The [`differentiable_struct!`] macro plays the role of Swift's derived
//!    conformances, synthesizing a `TangentVector` struct for aggregates.
//! 2. **Differentiable function values** (paper Figure 3): a
//!    [`DifferentiableFn`] bundles the original function with its JVP
//!    (forward mode) and VJP (reverse mode) derivative functions, each
//!    returning the value paired with a *differential* or *pullback*
//!    closure. Differential operators — [`gradient`],
//!    [`value_with_gradient`], [`value_with_pullback`],
//!    [`value_with_differential`], [`derivative`] — are ordinary
//!    higher-order functions over these bundles, exactly as in the paper
//!    (Figure 2).
//! 3. **Custom base derivatives** (paper §2.1, `@derivative(of:)`): the
//!    [`registry`] maps operation names to user-registered derivative
//!    functions; the recursive derivative-synthesis in `s4tf-sil` (and the
//!    op library in [`ops`]) terminates at these registered base cases.
//!
//! The compile-time *code transformation* itself (paper §2.2: activity
//! analysis, differentiability checking, derivative synthesis over an
//! SSA-form IR) lives in the sibling crate `s4tf-sil`, since it operates on
//! an intermediate representation rather than on values.
//!
//! Additionally this crate contains:
//!
//! * [`ops`] — VJP wrappers for the Tensor kernel suite, the "known base
//!   derivatives" everything else composes from;
//! * [`tape`] — a define-by-run, runtime-taped reverse-mode AD (the
//!   *alternative* design the paper positions itself against in §2.3);
//!   kept as an ablation baseline for the benchmarks;
//! * [`subscript`] — the paper's Appendix B case study: the O(n) functional
//!   formulation of the array-subscript pullback vs. the O(1)
//!   mutable-value-semantics (`inout`) formulation.
//!
//! ## Example: gradients via a differentiable function value
//!
//! ```
//! use s4tf_core::prelude::*;
//!
//! // f(x) = x² + 3x; f'(4) = 11.
//! let f = DifferentiableFn::<f64, f64>::from_vjp(|x| {
//!     let x = *x;
//!     (x * x + 3.0 * x, Box::new(move |dy: &f64| dy * (2.0 * x + 3.0)))
//! });
//! assert_eq!(gradient(&4.0, &f), 11.0);
//! ```

pub mod differentiable;
pub mod function;
mod macros;
pub mod ops;
pub mod registry;
pub mod subscript;
pub mod tape;
pub mod vector_space;
pub mod visit;

pub use differentiable::Differentiable;
pub use function::{
    derivative, gradient, value_with_differential, value_with_gradient, value_with_pullback,
    DifferentiableFn, Differential, Pullback,
};
pub use vector_space::{AdditiveArithmetic, LossValue, PointwiseMath, VectorSpace};
pub use visit::VisitTangent;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::differentiable::Differentiable;
    pub use crate::differentiable_struct;
    pub use crate::function::{
        derivative, gradient, value_with_differential, value_with_gradient, value_with_pullback,
        DifferentiableFn,
    };
    pub use crate::vector_space::{AdditiveArithmetic, LossValue, PointwiseMath, VectorSpace};
    pub use crate::visit::VisitTangent;
}
