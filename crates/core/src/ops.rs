//! VJPs for the Tensor kernel suite — the "known base derivative functions"
//! (paper §2.1) that layer pullbacks and the lazy runtime compose from.
//!
//! Each `vjp_*` function mirrors the paper's VJP shape (Figure 3):
//! it returns the operation's value together with a *pullback* closure
//! mapping an output cotangent to input cotangent(s). Binary ops are
//! broadcast-aware: their pullbacks sum gradients over broadcast axes
//! (`reduce_to_shape`), so the chain rule composes correctly for biases and
//! scalar constants.

use s4tf_tensor::{Float, Padding, Tensor};

/// Boxed pullback from one cotangent to one cotangent.
pub type TensorPullback<T> = Box<dyn Fn(&Tensor<T>) -> Tensor<T>>;
/// Boxed pullback from one cotangent to a pair of cotangents.
pub type TensorPullback2<T> = Box<dyn Fn(&Tensor<T>) -> (Tensor<T>, Tensor<T>)>;

// ---------------------------------------------------------------- binary ops

/// VJP of broadcasting addition.
pub fn vjp_add<T: Float>(a: &Tensor<T>, b: &Tensor<T>) -> (Tensor<T>, TensorPullback2<T>) {
    let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
    (
        a.add(b),
        Box::new(move |dy| (dy.reduce_to_shape(&da), dy.reduce_to_shape(&db))),
    )
}

/// VJP of broadcasting subtraction.
pub fn vjp_sub<T: Float>(a: &Tensor<T>, b: &Tensor<T>) -> (Tensor<T>, TensorPullback2<T>) {
    let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
    (
        a.sub(b),
        Box::new(move |dy| (dy.reduce_to_shape(&da), dy.neg().reduce_to_shape(&db))),
    )
}

/// VJP of broadcasting element-wise multiplication.
pub fn vjp_mul<T: Float>(a: &Tensor<T>, b: &Tensor<T>) -> (Tensor<T>, TensorPullback2<T>) {
    let (ac, bc) = (a.clone(), b.clone());
    let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
    (
        a.mul(b),
        Box::new(move |dy| {
            (
                dy.mul(&bc).reduce_to_shape(&da),
                dy.mul(&ac).reduce_to_shape(&db),
            )
        }),
    )
}

/// VJP of broadcasting element-wise division.
pub fn vjp_div<T: Float>(a: &Tensor<T>, b: &Tensor<T>) -> (Tensor<T>, TensorPullback2<T>) {
    let (ac, bc) = (a.clone(), b.clone());
    let (da, db) = (a.dims().to_vec(), b.dims().to_vec());
    (
        a.div(b),
        Box::new(move |dy| {
            let ga = dy.div(&bc).reduce_to_shape(&da);
            let gb = dy.mul(&ac).neg().div(&bc.square()).reduce_to_shape(&db);
            (ga, gb)
        }),
    )
}

/// VJP of matrix multiplication (`[m,k] × [k,n]`).
pub fn vjp_matmul<T: Float>(a: &Tensor<T>, b: &Tensor<T>) -> (Tensor<T>, TensorPullback2<T>) {
    let (ac, bc) = (a.clone(), b.clone());
    (
        a.matmul(b),
        Box::new(move |dy| (dy.matmul_nt(&bc), ac.matmul_tn(dy))),
    )
}

// ----------------------------------------------------------------- unary ops

/// VJP of ReLU.
pub fn vjp_relu<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let mask = x.greater_mask(&Tensor::scalar(T::zero()));
    (x.relu(), Box::new(move |dy| dy.mul(&mask)))
}

/// VJP of `exp`.
pub fn vjp_exp<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let y = x.exp();
    let yc = y.clone();
    (y, Box::new(move |dy| dy.mul(&yc)))
}

/// VJP of the natural logarithm.
pub fn vjp_ln<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let xc = x.clone();
    (x.ln(), Box::new(move |dy| dy.div(&xc)))
}

/// VJP of `tanh`.
pub fn vjp_tanh<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let y = x.tanh();
    let yc = y.clone();
    (
        y,
        Box::new(move |dy| dy.mul(&yc.square().neg().add_scalar(T::one()))),
    )
}

/// VJP of the logistic sigmoid.
pub fn vjp_sigmoid<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let y = x.sigmoid();
    let yc = y.clone();
    (
        y,
        Box::new(move |dy| dy.mul(&yc).mul(&yc.neg().add_scalar(T::one()))),
    )
}

/// VJP of the element-wise square.
pub fn vjp_square<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let xc = x.clone();
    (
        x.square(),
        Box::new(move |dy| dy.mul(&xc).mul_scalar(T::from_f64(2.0))),
    )
}

/// VJP of the square root.
pub fn vjp_sqrt<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let y = x.sqrt();
    let yc = y.clone();
    (
        y,
        Box::new(move |dy| dy.div(&yc.mul_scalar(T::from_f64(2.0)))),
    )
}

/// VJP of negation.
pub fn vjp_neg<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    (x.neg(), Box::new(|dy| dy.neg()))
}

// --------------------------------------------------------------- reductions

/// VJP of the full sum.
pub fn vjp_sum<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let dims = x.dims().to_vec();
    (x.sum(), Box::new(move |dy| dy.broadcast_to(&dims)))
}

/// VJP of the full mean.
pub fn vjp_mean<T: Float>(x: &Tensor<T>) -> (Tensor<T>, TensorPullback<T>) {
    let dims = x.dims().to_vec();
    let n = T::from_usize(x.num_elements());
    (
        x.mean(),
        Box::new(move |dy| dy.broadcast_to(&dims).div_scalar(n)),
    )
}

/// VJP of `sum_axis(axis, keep_dims=false)`.
pub fn vjp_sum_axis<T: Float>(x: &Tensor<T>, axis: usize) -> (Tensor<T>, TensorPullback<T>) {
    let dims = x.dims().to_vec();
    (
        x.sum_axis(axis, false),
        Box::new(move |dy| dy.expand_dims(axis).broadcast_to(&dims)),
    )
}

// ---------------------------------------------------------------- shape ops

/// VJP of reshape.
pub fn vjp_reshape<T: Float>(x: &Tensor<T>, dims: &[usize]) -> (Tensor<T>, TensorPullback<T>) {
    let original = x.dims().to_vec();
    (x.reshape(dims), Box::new(move |dy| dy.reshape(&original)))
}

/// VJP of a dimension permutation.
pub fn vjp_transpose<T: Float>(x: &Tensor<T>, perm: &[usize]) -> (Tensor<T>, TensorPullback<T>) {
    let mut inverse = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inverse[p] = i;
    }
    (
        x.transpose(perm),
        Box::new(move |dy| dy.transpose(&inverse)),
    )
}

/// VJP of `broadcast_to`.
pub fn vjp_broadcast_to<T: Float>(x: &Tensor<T>, dims: &[usize]) -> (Tensor<T>, TensorPullback<T>) {
    let original = x.dims().to_vec();
    (
        x.broadcast_to(dims),
        Box::new(move |dy| dy.reduce_to_shape(&original)),
    )
}

// ------------------------------------------------------------ conv & pooling

/// VJP of 2-D convolution, pulling back to both the input and the filter.
pub fn vjp_conv2d<T: Float>(
    input: &Tensor<T>,
    filter: &Tensor<T>,
    strides: (usize, usize),
    padding: Padding,
) -> (Tensor<T>, TensorPullback2<T>) {
    let y = input.conv2d(filter, strides, padding);
    let (xc, wc) = (input.clone(), filter.clone());
    let wdims = filter.dims().to_vec();
    (
        y,
        Box::new(move |dy| {
            let dx = xc.conv2d_backward_input(&wc, dy, strides, padding);
            let dw = xc.conv2d_backward_filter(&wdims, dy, strides, padding);
            (dx, dw)
        }),
    )
}

/// VJP of average pooling.
pub fn vjp_avg_pool2d<T: Float>(
    input: &Tensor<T>,
    pool: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> (Tensor<T>, TensorPullback<T>) {
    let y = input.avg_pool2d(pool, strides, padding);
    let xc = input.clone();
    (
        y,
        Box::new(move |dy| xc.avg_pool2d_backward(dy, pool, strides, padding)),
    )
}

/// VJP of max pooling.
pub fn vjp_max_pool2d<T: Float>(
    input: &Tensor<T>,
    pool: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> (Tensor<T>, TensorPullback<T>) {
    let y = input.max_pool2d(pool, strides, padding);
    let xc = input.clone();
    (
        y,
        Box::new(move |dy| xc.max_pool2d_backward(dy, pool, strides, padding)),
    )
}

// ------------------------------------------------------------------- losses

/// VJP of softmax cross-entropy with one-hot labels, mean-reduced over the
/// batch: `L = -mean_i Σ_c labels[i,c]·log_softmax(logits)[i,c]`.
///
/// Pullback is with respect to the logits only (labels are constants).
///
/// # Panics
/// Panics unless `logits` and `labels` are rank 2 with identical shapes.
pub fn vjp_softmax_cross_entropy<T: Float>(
    logits: &Tensor<T>,
    labels: &Tensor<T>,
) -> (Tensor<T>, TensorPullback<T>) {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.dims(), labels.dims(), "labels shape mismatch");
    let batch = T::from_usize(logits.dims()[0]);
    let log_probs = logits.log_softmax();
    let loss = labels.mul(&log_probs).sum().neg().div_scalar(batch);
    let softmax = logits.softmax();
    let grad = softmax.sub(labels).div_scalar(batch);
    (loss, Box::new(move |dy| grad.mul(dy)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Central finite-difference gradient of `f: Tensor -> scalar` at `x`.
    fn finite_diff<F: Fn(&Tensor<f64>) -> f64>(x: &Tensor<f64>, f: F) -> Tensor<f64> {
        let eps = 1e-6;
        let mut grad = Tensor::zeros_like(x);
        for i in 0..x.num_elements() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            grad.as_mut_slice()[i] = (f(&xp) - f(&xm)) / (2.0 * eps);
        }
        grad
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn binary_vjps_match_finite_differences() {
        let mut rng = rng();
        let a = Tensor::<f64>::randn(&[3, 4], &mut rng);
        let b = Tensor::<f64>::randn(&[3, 4], &mut rng).add_scalar(3.0); // keep away from 0 for div
        type Case = (
            &'static str,
            fn(&Tensor<f64>, &Tensor<f64>) -> (Tensor<f64>, TensorPullback2<f64>),
        );
        let cases: Vec<Case> = vec![
            ("add", vjp_add),
            ("sub", vjp_sub),
            ("mul", vjp_mul),
            ("div", vjp_div),
        ];
        for (name, vjp) in cases {
            let (_, pb) = vjp(&a, &b);
            let (ga, gb) = pb(&Tensor::ones(&[3, 4]));
            let fa = finite_diff(&a, |t| vjp(t, &b).0.sum().scalar_value());
            let fb = finite_diff(&b, |t| vjp(&a, t).0.sum().scalar_value());
            assert!(ga.allclose(&fa, 1e-4), "{name} grad-a");
            assert!(gb.allclose(&fb, 1e-4), "{name} grad-b");
        }
    }

    #[test]
    fn broadcast_pullback_reduces() {
        let mut rng = rng();
        let a = Tensor::<f64>::randn(&[3, 4], &mut rng);
        let bias = Tensor::<f64>::randn(&[4], &mut rng);
        let (_, pb) = vjp_add(&a, &bias);
        let (ga, gbias) = pb(&Tensor::ones(&[3, 4]));
        assert_eq!(ga.dims(), &[3, 4]);
        assert_eq!(gbias.dims(), &[4]);
        assert_eq!(gbias.as_slice(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn matmul_vjp_matches_finite_differences() {
        let mut rng = rng();
        let a = Tensor::<f64>::randn(&[3, 5], &mut rng);
        let b = Tensor::<f64>::randn(&[5, 2], &mut rng);
        let (_, pb) = vjp_matmul(&a, &b);
        let (ga, gb) = pb(&Tensor::ones(&[3, 2]));
        let fa = finite_diff(&a, |t| t.matmul(&b).sum().scalar_value());
        let fb = finite_diff(&b, |t| a.matmul(t).sum().scalar_value());
        assert!(ga.allclose(&fa, 1e-4));
        assert!(gb.allclose(&fb, 1e-4));
    }

    #[test]
    fn unary_vjps_match_finite_differences() {
        let mut rng = rng();
        // strictly positive input so ln/sqrt are differentiable
        let x = Tensor::<f64>::rand_uniform(&[17], 0.3, 2.0, &mut rng);
        type Case = (
            &'static str,
            fn(&Tensor<f64>) -> (Tensor<f64>, TensorPullback<f64>),
        );
        let cases: Vec<Case> = vec![
            ("relu", vjp_relu),
            ("exp", vjp_exp),
            ("ln", vjp_ln),
            ("tanh", vjp_tanh),
            ("sigmoid", vjp_sigmoid),
            ("square", vjp_square),
            ("sqrt", vjp_sqrt),
            ("neg", vjp_neg),
        ];
        for (name, vjp) in cases {
            let (_, pb) = vjp(&x);
            let g = pb(&Tensor::ones(&[17]));
            let fd = finite_diff(&x, |t| vjp(t).0.sum().scalar_value());
            assert!(g.allclose(&fd, 1e-4), "{name}: {}", g.max_abs_diff(&fd));
        }
    }

    #[test]
    fn reduction_vjps() {
        let mut rng = rng();
        let x = Tensor::<f64>::randn(&[4, 3], &mut rng);
        let (s, pb) = vjp_sum(&x);
        assert_eq!(s.scalar_value(), x.sum().scalar_value());
        assert_eq!(pb(&Tensor::scalar(2.0)).as_slice(), &[2.0; 12]);

        let (_, pb) = vjp_mean(&x);
        let g = pb(&Tensor::scalar(1.0));
        assert!((g.as_slice()[0] - 1.0 / 12.0).abs() < 1e-12);

        let (_, pb) = vjp_sum_axis(&x, 0);
        let g = pb(&Tensor::ones(&[3]));
        assert_eq!(g.dims(), &[4, 3]);
        assert_eq!(g.as_slice(), &[1.0; 12]);
    }

    #[test]
    fn shape_vjps_round_trip() {
        let mut rng = rng();
        let x = Tensor::<f64>::randn(&[2, 6], &mut rng);
        let (y, pb) = vjp_reshape(&x, &[3, 4]);
        assert_eq!(y.dims(), &[3, 4]);
        assert_eq!(pb(&y).dims(), &[2, 6]);

        let (y, pb) = vjp_transpose(&x, &[1, 0]);
        assert_eq!(y.dims(), &[6, 2]);
        assert_eq!(pb(&y), x);

        let v = Tensor::<f64>::randn(&[6], &mut rng);
        let (y, pb) = vjp_broadcast_to(&v, &[4, 6]);
        assert_eq!(y.dims(), &[4, 6]);
        let g = pb(&Tensor::ones(&[4, 6]));
        assert_eq!(g.as_slice(), &[4.0; 6]);
    }

    #[test]
    fn conv_and_pool_vjps_match_finite_differences() {
        let mut rng = rng();
        let x = Tensor::<f64>::randn(&[1, 6, 6, 2], &mut rng);
        let w = Tensor::<f64>::randn(&[3, 3, 2, 2], &mut rng);
        let (_, pb) = vjp_conv2d(&x, &w, (1, 1), Padding::Same);
        let dy = Tensor::<f64>::ones(&[1, 6, 6, 2]);
        let (dx, dw) = pb(&dy);
        let fx = finite_diff(&x, |t| {
            t.conv2d(&w, (1, 1), Padding::Same).sum().scalar_value()
        });
        let fw = finite_diff(&w, |t| {
            x.conv2d(t, (1, 1), Padding::Same).sum().scalar_value()
        });
        assert!(dx.allclose(&fx, 1e-4));
        assert!(dw.allclose(&fw, 1e-4));

        let (_, pb) = vjp_avg_pool2d(&x, (2, 2), (2, 2), Padding::Valid);
        let g = pb(&Tensor::ones(&[1, 3, 3, 2]));
        let fd = finite_diff(&x, |t| {
            t.avg_pool2d((2, 2), (2, 2), Padding::Valid)
                .sum()
                .scalar_value()
        });
        assert!(g.allclose(&fd, 1e-4));

        let (_, pb) = vjp_max_pool2d(&x, (2, 2), (2, 2), Padding::Valid);
        let g = pb(&Tensor::ones(&[1, 3, 3, 2]));
        let fd = finite_diff(&x, |t| {
            t.max_pool2d((2, 2), (2, 2), Padding::Valid)
                .sum()
                .scalar_value()
        });
        assert!(g.allclose(&fd, 1e-4));
    }

    #[test]
    fn softmax_cross_entropy_vjp() {
        let mut rng = rng();
        let logits = Tensor::<f64>::randn(&[4, 3], &mut rng);
        let labels: Tensor<f64> = Tensor::one_hot(&[0, 2, 1, 1], 3);
        let (loss, pb) = vjp_softmax_cross_entropy(&logits, &labels);
        assert!(loss.scalar_value() > 0.0);
        let g = pb(&Tensor::scalar(1.0));
        let fd = finite_diff(&logits, |t| {
            vjp_softmax_cross_entropy(t, &labels).0.scalar_value()
        });
        assert!(g.allclose(&fd, 1e-5));
        // gradient rows sum to ~0 (softmax minus one-hot)
        let row_sums = g.sum_axis(1, false);
        for &s in row_sums.as_slice() {
            assert!(s.abs() < 1e-10);
        }
    }
}
