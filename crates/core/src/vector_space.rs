//! The algebraic requirements on tangent vectors.
//!
//! The paper (Figure 1) requires `TangentVector: AdditiveArithmetic`. In
//! practice optimizers additionally need scalar scaling, which Swift for
//! TensorFlow expressed through `VectorProtocol`; we mirror both as
//! [`AdditiveArithmetic`] and [`VectorSpace`].

use s4tf_tensor::{Float, Tensor};
use std::fmt::Debug;

/// A commutative additive group: zero, addition, subtraction.
///
/// # Shape-polymorphic zero
///
/// For `Tensor`, [`AdditiveArithmetic::zero`] cannot know the shape of the
/// value it will be combined with, so it is the *scalar* zero tensor, and
/// [`AdditiveArithmetic::adding`] broadcasts. (Swift for TensorFlow made
/// exactly this compromise: `Tensor.zero` is special-cased and combines with
/// any shape.) Consequently `adding` is total on any pair where one side is
/// a broadcastable identity, and panics on genuinely incompatible shapes.
pub trait AdditiveArithmetic: Clone + Debug + PartialEq + 'static {
    /// The additive identity.
    fn zero() -> Self;
    /// `self + rhs`.
    fn adding(&self, rhs: &Self) -> Self;
    /// `self - rhs`.
    fn subtracting(&self, rhs: &Self) -> Self;
    /// True if this value is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

/// An [`AdditiveArithmetic`] type that also supports scaling by a real
/// number — what optimizers need to form `-learning_rate * gradient`.
pub trait VectorSpace: AdditiveArithmetic {
    /// `factor * self`.
    fn scaled_by(&self, factor: f64) -> Self;
    /// The squared Euclidean norm `‖self‖²`, summed over every scalar
    /// component. Used for gradient-norm telemetry and clipping; the
    /// squared form composes additively across structs and tuples so the
    /// final `sqrt` happens once, at the top.
    fn norm_squared(&self) -> f64;
    /// `self ← factor · self`, in place where the representation allows
    /// (tensors mutate their buffer when uniquely owned; see paper §4.2).
    /// Bit-identical to [`scaled_by`](VectorSpace::scaled_by).
    fn scale_assign(&mut self, factor: f64) {
        *self = self.scaled_by(factor);
    }
    /// `self ← self + alpha · rhs` (axpy), in place where possible —
    /// the inner loop of every first-order optimizer update. Bit-identical
    /// to `self.adding(&rhs.scaled_by(alpha))`.
    fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
        *self = self.adding(&rhs.scaled_by(alpha));
    }
}

/// Element-wise (Hadamard) arithmetic on tangent vectors, beyond the plain
/// vector-space structure — what adaptive optimizers (Adam, RMSProp) need
/// to keep per-coordinate statistics. Swift for TensorFlow exposed this via
/// `KeyPathIterable` traversals; here it is a derived capability of tangent
/// types (see `differentiable_struct!`).
pub trait PointwiseMath: VectorSpace {
    /// Element-wise product.
    fn pointwise_mul(&self, rhs: &Self) -> Self;
    /// Element-wise quotient.
    fn pointwise_div(&self, rhs: &Self) -> Self;
    /// Element-wise square root.
    fn pointwise_sqrt(&self) -> Self;
    /// Adds a scalar to every element.
    fn adding_scalar(&self, v: f64) -> Self;
}

macro_rules! impl_scalar_pointwise {
    ($t:ty) => {
        impl PointwiseMath for $t {
            fn pointwise_mul(&self, rhs: &Self) -> Self {
                self * rhs
            }
            fn pointwise_div(&self, rhs: &Self) -> Self {
                self / rhs
            }
            fn pointwise_sqrt(&self) -> Self {
                self.sqrt()
            }
            fn adding_scalar(&self, v: f64) -> Self {
                self + v as $t
            }
        }
    };
}

impl_scalar_pointwise!(f32);
impl_scalar_pointwise!(f64);

impl<T: Float> PointwiseMath for Tensor<T> {
    fn pointwise_mul(&self, rhs: &Self) -> Self {
        self.mul(rhs)
    }
    fn pointwise_div(&self, rhs: &Self) -> Self {
        self.div(rhs)
    }
    fn pointwise_sqrt(&self) -> Self {
        self.sqrt()
    }
    fn adding_scalar(&self, v: f64) -> Self {
        self.add_scalar(T::from_f64(v))
    }
}

impl PointwiseMath for () {
    fn pointwise_mul(&self, _: &Self) -> Self {}
    fn pointwise_div(&self, _: &Self) -> Self {}
    fn pointwise_sqrt(&self) -> Self {}
    fn adding_scalar(&self, _: f64) -> Self {}
}

impl<A: PointwiseMath, B: PointwiseMath> PointwiseMath for (A, B) {
    fn pointwise_mul(&self, rhs: &Self) -> Self {
        (self.0.pointwise_mul(&rhs.0), self.1.pointwise_mul(&rhs.1))
    }
    fn pointwise_div(&self, rhs: &Self) -> Self {
        (self.0.pointwise_div(&rhs.0), self.1.pointwise_div(&rhs.1))
    }
    fn pointwise_sqrt(&self) -> Self {
        (self.0.pointwise_sqrt(), self.1.pointwise_sqrt())
    }
    fn adding_scalar(&self, v: f64) -> Self {
        (self.0.adding_scalar(v), self.1.adding_scalar(v))
    }
}

impl<A: PointwiseMath> PointwiseMath for Vec<A> {
    fn pointwise_mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.len(), rhs.len(), "Vec tangent length mismatch");
        self.iter()
            .zip(rhs)
            .map(|(a, b)| a.pointwise_mul(b))
            .collect()
    }
    fn pointwise_div(&self, rhs: &Self) -> Self {
        assert_eq!(self.len(), rhs.len(), "Vec tangent length mismatch");
        self.iter()
            .zip(rhs)
            .map(|(a, b)| a.pointwise_div(b))
            .collect()
    }
    fn pointwise_sqrt(&self) -> Self {
        self.iter().map(|a| a.pointwise_sqrt()).collect()
    }
    fn adding_scalar(&self, v: f64) -> Self {
        self.iter().map(|a| a.adding_scalar(v)).collect()
    }
}

/// A differentiable output type that can seed reverse-mode AD — i.e. a
/// loss-like value with a canonical unit cotangent.
///
/// The paper's `gradient` operator (Figure 2) is restricted to functions
/// returning `Float`; `LossValue` generalizes that to any scalar-like type
/// (`f32`, `f64`, and scalar `Tensor`s).
pub trait LossValue: crate::differentiable::Differentiable {
    /// The cotangent `1` used to seed a pullback.
    fn unit_tangent(&self) -> Self::TangentVector;
    /// The value as an `f64` (for line searches and logging).
    fn loss_value(&self) -> f64;
}

macro_rules! impl_scalar_vector_space {
    ($t:ty) => {
        impl AdditiveArithmetic for $t {
            fn zero() -> Self {
                0.0
            }
            fn adding(&self, rhs: &Self) -> Self {
                self + rhs
            }
            fn subtracting(&self, rhs: &Self) -> Self {
                self - rhs
            }
        }

        impl VectorSpace for $t {
            fn scaled_by(&self, factor: f64) -> Self {
                (*self as f64 * factor) as $t
            }
            fn norm_squared(&self) -> f64 {
                (*self as f64) * (*self as f64)
            }
            fn scale_assign(&mut self, factor: f64) {
                *self = (*self as f64 * factor) as $t;
            }
            fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
                *self += (*rhs as f64 * alpha) as $t;
            }
        }
    };
}

impl_scalar_vector_space!(f32);
impl_scalar_vector_space!(f64);

impl<T: Float> AdditiveArithmetic for Tensor<T> {
    /// The scalar zero tensor (see the trait-level note on
    /// shape-polymorphic zero).
    fn zero() -> Self {
        Tensor::scalar(T::zero())
    }

    fn adding(&self, rhs: &Self) -> Self {
        self.add(rhs)
    }

    fn subtracting(&self, rhs: &Self) -> Self {
        self.sub(rhs)
    }

    fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&x| x == T::zero())
    }
}

impl<T: Float> VectorSpace for Tensor<T> {
    fn scaled_by(&self, factor: f64) -> Self {
        self.mul_scalar(T::from_f64(factor))
    }
    fn norm_squared(&self) -> f64 {
        self.as_slice()
            .iter()
            .map(|&x| {
                let v = x.to_f64();
                v * v
            })
            .sum()
    }
    fn scale_assign(&mut self, factor: f64) {
        self.mul_scalar_assign(T::from_f64(factor));
    }
    fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
        if self.shape() == rhs.shape() {
            // Same per-element `d + alpha·s` as the default path (the
            // scaling multiplication is commutative bit-for-bit), with
            // no intermediate tensor.
            self.scaled_add_assign(T::from_f64(alpha), rhs);
        } else {
            // Broadcasting case (e.g. the scalar zero tangent):
            // materialize through the allocating path.
            *self = self.adding(&rhs.scaled_by(alpha));
        }
    }
}

impl AdditiveArithmetic for () {
    fn zero() -> Self {}
    fn adding(&self, _: &Self) -> Self {}
    fn subtracting(&self, _: &Self) -> Self {}
}

impl VectorSpace for () {
    fn scaled_by(&self, _: f64) -> Self {}
    fn norm_squared(&self) -> f64 {
        0.0
    }
}

impl<A: AdditiveArithmetic, B: AdditiveArithmetic> AdditiveArithmetic for (A, B) {
    fn zero() -> Self {
        (A::zero(), B::zero())
    }
    fn adding(&self, rhs: &Self) -> Self {
        (self.0.adding(&rhs.0), self.1.adding(&rhs.1))
    }
    fn subtracting(&self, rhs: &Self) -> Self {
        (self.0.subtracting(&rhs.0), self.1.subtracting(&rhs.1))
    }
}

impl<A: VectorSpace, B: VectorSpace> VectorSpace for (A, B) {
    fn scaled_by(&self, factor: f64) -> Self {
        (self.0.scaled_by(factor), self.1.scaled_by(factor))
    }
    fn norm_squared(&self) -> f64 {
        self.0.norm_squared() + self.1.norm_squared()
    }
    fn scale_assign(&mut self, factor: f64) {
        self.0.scale_assign(factor);
        self.1.scale_assign(factor);
    }
    fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
        self.0.add_scaled_assign(alpha, &rhs.0);
        self.1.add_scaled_assign(alpha, &rhs.1);
    }
}

/// Element-wise vector-space structure on `Vec`.
///
/// The empty vector acts as a broadcastable zero (mirroring the scalar-zero
/// compromise for tensors): `[] + v = v`.
impl<A: AdditiveArithmetic> AdditiveArithmetic for Vec<A> {
    fn zero() -> Self {
        Vec::new()
    }
    fn adding(&self, rhs: &Self) -> Self {
        if self.is_empty() {
            return rhs.clone();
        }
        if rhs.is_empty() {
            return self.clone();
        }
        assert_eq!(self.len(), rhs.len(), "Vec tangent length mismatch");
        self.iter().zip(rhs).map(|(a, b)| a.adding(b)).collect()
    }
    fn subtracting(&self, rhs: &Self) -> Self {
        if rhs.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return rhs.iter().map(|b| A::zero().subtracting(b)).collect();
        }
        assert_eq!(self.len(), rhs.len(), "Vec tangent length mismatch");
        self.iter()
            .zip(rhs)
            .map(|(a, b)| a.subtracting(b))
            .collect()
    }
}

impl<A: VectorSpace> VectorSpace for Vec<A> {
    fn scaled_by(&self, factor: f64) -> Self {
        self.iter().map(|a| a.scaled_by(factor)).collect()
    }
    fn norm_squared(&self) -> f64 {
        self.iter().map(VectorSpace::norm_squared).sum()
    }
    fn scale_assign(&mut self, factor: f64) {
        for a in self.iter_mut() {
            a.scale_assign(factor);
        }
    }
    fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
        if rhs.is_empty() {
            return; // the empty vector is a broadcastable zero
        }
        if self.is_empty() {
            *self = rhs.scaled_by(alpha);
            return;
        }
        assert_eq!(self.len(), rhs.len(), "Vec tangent length mismatch");
        for (a, b) in self.iter_mut().zip(rhs) {
            a.add_scaled_assign(alpha, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_axioms() {
        assert_eq!(f64::zero(), 0.0);
        assert_eq!(2.0f64.adding(&3.0), 5.0);
        assert_eq!(2.0f64.subtracting(&3.0), -1.0);
        assert_eq!(2.0f32.scaled_by(1.5), 3.0);
        assert!(0.0f64.is_zero());
        assert!(!1.0f64.is_zero());
    }

    #[test]
    fn tensor_zero_broadcasts() {
        let z = <Tensor<f32> as AdditiveArithmetic>::zero();
        let x = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        assert_eq!(z.adding(&x), x);
        assert_eq!(x.adding(&z), x);
        assert!(z.is_zero());
        assert!(Tensor::<f32>::zeros(&[3]).is_zero());
        assert!(!x.is_zero());
    }

    #[test]
    fn tensor_vector_space() {
        let x = Tensor::from_vec(vec![1.0f32, -2.0], &[2]);
        assert_eq!(x.scaled_by(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(x.subtracting(&x).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn tuple_and_unit() {
        let a = (1.0f64, 2.0f64);
        let b = (10.0f64, 20.0f64);
        assert_eq!(a.adding(&b), (11.0, 22.0));
        assert_eq!(b.subtracting(&a), (9.0, 18.0));
        assert_eq!(a.scaled_by(2.0), (2.0, 4.0));
        assert_eq!(<((), ())>::zero(), ((), ()));
    }

    #[test]
    fn vec_tangent_with_empty_zero() {
        let z = Vec::<f64>::zero();
        let v = vec![1.0, 2.0];
        assert_eq!(z.adding(&v), v);
        assert_eq!(v.adding(&z), v);
        assert_eq!(v.adding(&v), vec![2.0, 4.0]);
        assert_eq!(z.subtracting(&v), vec![-1.0, -2.0]);
        assert_eq!(v.scaled_by(0.5), vec![0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vec_tangent_length_mismatch() {
        vec![1.0f64].adding(&vec![1.0, 2.0]);
    }

    #[test]
    fn norm_squared_composes_across_structure() {
        assert_eq!(3.0f64.norm_squared(), 9.0);
        assert_eq!((-2.0f32).norm_squared(), 4.0);
        assert_eq!(().norm_squared(), 0.0);
        let t = Tensor::from_vec(vec![3.0f32, 4.0], &[2]);
        assert_eq!(t.norm_squared(), 25.0);
        assert_eq!((1.0f64, 2.0f64).norm_squared(), 5.0);
        assert_eq!(vec![1.0f64, 2.0, 2.0].norm_squared(), 9.0);
        // Nested: Vec of tuples, the shape gradients actually take.
        assert_eq!(vec![(3.0f64, 4.0f64)].norm_squared().sqrt(), 5.0);
    }
}
