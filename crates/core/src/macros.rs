//! Derived `Differentiable` conformances for aggregate types.
//!
//! Swift for TensorFlow synthesizes a `TangentVector` struct (and its
//! `AdditiveArithmetic` conformance) for any struct whose stored properties
//! are `Differentiable` — that is what makes the paper's Figure 6 LeNet
//! definition work with zero boilerplate. [`differentiable_struct!`] is the
//! equivalent mechanism here: it declares the struct *and* synthesizes its
//! tangent struct with all the impls.

/// Declares a struct of `Differentiable` fields and derives its
/// `TangentVector` struct, [`AdditiveArithmetic`](crate::AdditiveArithmetic),
/// [`VectorSpace`](crate::VectorSpace) and
/// [`Differentiable`](crate::Differentiable) conformances.
///
/// The input syntax mirrors the output (a struct declaration), with one
/// extra clause naming the synthesized tangent struct:
///
/// ```
/// use s4tf_core::prelude::*;
/// use s4tf_tensor::Tensor;
///
/// differentiable_struct! {
///     /// A dense layer's parameters.
///     pub struct Params tangent ParamsTangent {
///         pub weight: Tensor<f32>,
///         pub bias: Tensor<f32>,
///     }
/// }
///
/// let mut p = Params {
///     weight: Tensor::zeros(&[2, 2]),
///     bias: Tensor::zeros(&[2]),
/// };
/// let g = ParamsTangent {
///     weight: Tensor::ones(&[2, 2]),
///     bias: Tensor::ones(&[2]),
/// };
/// // Gradient-descent step through a unique borrow (paper §4.2):
/// p.move_along(&g.scaled_by(-0.1));
/// assert_eq!(p.bias.as_slice(), &[-0.1, -0.1]);
/// ```
#[macro_export]
macro_rules! differentiable_struct {
    // Extended form with non-differentiable configuration fields — the
    // equivalent of Swift's `@noDerivative` stored properties: `nodiff`
    // fields live in the struct but not in the tangent vector.
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident tangent $tangent:ident {
            params {
                $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ftype:ty ),* $(,)?
            }
            nodiff {
                $( $(#[$cmeta:meta])* $cvis:vis $cfield:ident : $ctype:ty ),* $(,)?
            }
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ftype, )*
            $( $(#[$cmeta])* $cvis $cfield : $ctype, )*
        }

        $crate::differentiable_struct! {
            @impls $vis $name tangent $tangent {
                $( $fvis $field : $ftype ),*
            }
        }
    };

    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident tangent $tangent:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ftype:ty ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ftype, )*
        }

        $crate::differentiable_struct! {
            @impls $vis $name tangent $tangent {
                $( $fvis $field : $ftype ),*
            }
        }
    };

    (
        @impls $vis:vis $name:ident tangent $tangent:ident {
            $( $fvis:vis $field:ident : $ftype:ty ),*
        }
    ) => {
        #[doc = concat!("Synthesized tangent vector for [`", stringify!($name), "`].")]
        #[derive(Clone, Debug, PartialEq)]
        $vis struct $tangent {
            $(
                #[doc = concat!("Tangent component for `", stringify!($field), "`.")]
                $fvis $field : <$ftype as $crate::Differentiable>::TangentVector,
            )*
        }

        impl $crate::AdditiveArithmetic for $tangent {
            fn zero() -> Self {
                Self {
                    $( $field: <<$ftype as $crate::Differentiable>::TangentVector
                        as $crate::AdditiveArithmetic>::zero(), )*
                }
            }

            fn adding(&self, rhs: &Self) -> Self {
                Self {
                    $( $field: $crate::AdditiveArithmetic::adding(
                        &self.$field, &rhs.$field), )*
                }
            }

            fn subtracting(&self, rhs: &Self) -> Self {
                Self {
                    $( $field: $crate::AdditiveArithmetic::subtracting(
                        &self.$field, &rhs.$field), )*
                }
            }
        }

        impl $crate::VectorSpace for $tangent {
            fn scaled_by(&self, factor: f64) -> Self {
                Self {
                    $( $field: $crate::VectorSpace::scaled_by(&self.$field, factor), )*
                }
            }

            fn norm_squared(&self) -> f64 {
                0.0 $( + $crate::VectorSpace::norm_squared(&self.$field) )*
            }

            fn scale_assign(&mut self, factor: f64) {
                $( $crate::VectorSpace::scale_assign(&mut self.$field, factor); )*
            }

            fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
                $( $crate::VectorSpace::add_scaled_assign(
                    &mut self.$field, alpha, &rhs.$field); )*
            }
        }

        impl $crate::vector_space::PointwiseMath for $tangent {
            fn pointwise_mul(&self, rhs: &Self) -> Self {
                Self {
                    $( $field: $crate::vector_space::PointwiseMath::pointwise_mul(
                        &self.$field, &rhs.$field), )*
                }
            }

            fn pointwise_div(&self, rhs: &Self) -> Self {
                Self {
                    $( $field: $crate::vector_space::PointwiseMath::pointwise_div(
                        &self.$field, &rhs.$field), )*
                }
            }

            fn pointwise_sqrt(&self) -> Self {
                Self {
                    $( $field: $crate::vector_space::PointwiseMath::pointwise_sqrt(
                        &self.$field), )*
                }
            }

            fn adding_scalar(&self, v: f64) -> Self {
                Self {
                    $( $field: $crate::vector_space::PointwiseMath::adding_scalar(
                        &self.$field, v), )*
                }
            }
        }

        impl<__Leaf> $crate::VisitTangent<__Leaf> for $tangent
        where
            __Leaf: Sized,
            $( <$ftype as $crate::Differentiable>::TangentVector:
                $crate::VisitTangent<__Leaf>, )*
        {
            fn visit_leaves(&self, f: &mut dyn FnMut(&__Leaf)) {
                let _ = &f;
                $( $crate::VisitTangent::visit_leaves(&self.$field, f); )*
            }

            fn visit_leaves_mut(&mut self, f: &mut dyn FnMut(&mut __Leaf)) {
                let _ = &f;
                $( $crate::VisitTangent::visit_leaves_mut(&mut self.$field, f); )*
            }
        }

        impl $crate::Differentiable for $name {
            type TangentVector = $tangent;

            fn move_along(&mut self, direction: &$tangent) {
                $( $crate::Differentiable::move_along(
                    &mut self.$field, &direction.$field); )*
            }

            fn move_along_scaled(&mut self, direction: &$tangent, alpha: f64) {
                $( $crate::Differentiable::move_along_scaled(
                    &mut self.$field, &direction.$field, alpha); )*
            }

            fn zero_tangent(&self) -> $tangent {
                $tangent {
                    $( $field: $crate::Differentiable::zero_tangent(&self.$field), )*
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use s4tf_tensor::Tensor;

    differentiable_struct! {
        /// Two-field test model.
        pub struct Model tangent ModelTangent {
            pub w: Tensor<f32>,
            pub b: f64,
        }
    }

    // Nested: a struct whose field is itself a differentiable struct.
    differentiable_struct! {
        pub struct Outer tangent OuterTangent {
            pub inner: Model,
            pub scale: f32,
        }
    }

    fn model() -> Model {
        Model {
            w: Tensor::from_vec(vec![1.0, 2.0], &[2]),
            b: 3.0,
        }
    }

    #[test]
    fn tangent_zero_and_add() {
        let z = ModelTangent::zero();
        let g = ModelTangent {
            w: Tensor::from_vec(vec![1.0, 1.0], &[2]),
            b: 2.0,
        };
        assert_eq!(z.adding(&g), g);
        assert_eq!(g.adding(&g).b, 4.0);
        assert_eq!(g.subtracting(&g).b, 0.0);
        assert_eq!(g.scaled_by(0.5).b, 1.0);
        assert_eq!(g.scaled_by(0.5).w.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn move_along_updates_all_fields() {
        let mut m = model();
        let g = ModelTangent {
            w: Tensor::from_vec(vec![0.1, 0.2], &[2]),
            b: -1.0,
        };
        m.move_along(&g);
        assert_eq!(m.w.as_slice(), &[1.1, 2.2]);
        assert_eq!(m.b, 2.0);
    }

    #[test]
    fn zero_tangent_has_point_shapes() {
        let m = model();
        let z = m.zero_tangent();
        assert_eq!(z.w.dims(), &[2]);
        assert!(z.w.is_zero());
        assert_eq!(z.b, 0.0);
    }

    #[test]
    fn nested_structs_compose() {
        let mut o = Outer {
            inner: model(),
            scale: 1.0,
        };
        let g = OuterTangent {
            inner: ModelTangent {
                w: Tensor::from_vec(vec![1.0, 1.0], &[2]),
                b: 1.0,
            },
            scale: 0.5,
        };
        o.move_along(&g.scaled_by(2.0));
        assert_eq!(o.inner.w.as_slice(), &[3.0, 4.0]);
        assert_eq!(o.inner.b, 5.0);
        assert_eq!(o.scale, 2.0);
    }

    differentiable_struct! {
        /// A layer-like struct with non-differentiable configuration.
        pub struct Configured tangent ConfiguredTangent {
            params {
                pub weight: Tensor<f32>,
            }
            nodiff {
                pub name: String,
                pub stride: usize,
            }
        }
    }

    #[test]
    fn nodiff_fields_are_excluded_from_tangent() {
        let mut c = Configured {
            weight: Tensor::zeros(&[2]),
            name: "conv".into(),
            stride: 2,
        };
        let g = ConfiguredTangent {
            weight: Tensor::ones(&[2]),
        };
        c.move_along(&g);
        assert_eq!(c.weight.as_slice(), &[1.0, 1.0]);
        assert_eq!(c.name, "conv");
        assert_eq!(c.stride, 2, "config fields are untouched by movement");
        // Tangent arithmetic only involves the params.
        assert!(ConfiguredTangent::zero().weight.is_zero());
        let h = g.adding(&g).scaled_by(0.25).pointwise_sqrt();
        assert!((h.weight.as_slice()[0] - 0.70710677).abs() < 1e-6);
    }

    #[test]
    fn value_semantics_of_models() {
        // Paper Figure 5, third column, for user-defined aggregates:
        // mutation through one variable is invisible through another.
        let m1 = model();
        let mut m2 = m1.clone();
        m2.move_along(&ModelTangent {
            w: Tensor::from_vec(vec![100.0, 100.0], &[2]),
            b: 100.0,
        });
        assert_eq!(m1.w.as_slice(), &[1.0, 2.0]);
        assert_eq!(m1.b, 3.0);
    }
}
