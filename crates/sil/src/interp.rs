//! The IR's executable semantics: a small-step interpreter with fuel.
//!
//! Every transformation in this crate is tested against the interpreter:
//! a pass (or derivative synthesis) is correct iff the interpreted behavior
//! is preserved (or matches finite differences).

use crate::ir::{FuncId, Function, Inst, Module, Terminator, Type, ValueId};
use s4tf_core::registry;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The float payload.
    ///
    /// # Panics
    /// Panics if the value is a bool.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::F64(x) => x,
            Value::Bool(_) => panic!("expected f64, found bool"),
        }
    }

    /// The bool payload.
    ///
    /// # Panics
    /// Panics if the value is a float.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::F64(_) => panic!("expected bool, found f64"),
        }
    }
}

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An unregistered unary/binary operation name.
    UnknownOp(String),
    /// Argument count mismatch at entry or at a call.
    ArityMismatch {
        /// Function involved.
        func: String,
        /// Parameters expected.
        expected: usize,
        /// Arguments provided.
        actual: usize,
    },
    /// The fuel budget was exhausted (probable infinite loop).
    OutOfFuel,
    /// Call stack exceeded the recursion limit.
    RecursionLimit,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownOp(op) => write!(f, "unknown operation '{op}'"),
            EvalError::ArityMismatch {
                func,
                expected,
                actual,
            } => write!(
                f,
                "function '{func}' takes {expected} arguments, got {actual}"
            ),
            EvalError::OutOfFuel => write!(f, "evaluation exceeded its fuel budget"),
            EvalError::RecursionLimit => write!(f, "call stack exceeded the recursion limit"),
        }
    }
}

impl Error for EvalError {}

/// An IR interpreter.
#[derive(Debug, Clone)]
pub struct Interpreter {
    /// Remaining instruction budget (guards against diverging programs).
    fuel: u64,
    /// Maximum call depth.
    max_depth: usize,
    /// Instructions actually executed by the last `run`.
    steps: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter {
            fuel: 10_000_000,
            max_depth: 128,
            steps: 0,
        }
    }
}

impl Interpreter {
    /// An interpreter with the default fuel budget.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// An interpreter with a custom fuel budget (instructions).
    pub fn with_fuel(fuel: u64) -> Self {
        Interpreter {
            fuel,
            ..Interpreter::default()
        }
    }

    /// Instructions executed by the most recent [`Interpreter::run`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs `func` on float arguments, returning its results as floats.
    ///
    /// # Errors
    /// Returns [`EvalError`] on arity mismatches, unknown operations, fuel
    /// exhaustion or call-stack overflow.
    pub fn run(
        &mut self,
        module: &Module,
        func: FuncId,
        args: &[f64],
    ) -> Result<Vec<f64>, EvalError> {
        self.steps = 0;
        let vals: Vec<Value> = args.iter().map(|&x| Value::F64(x)).collect();
        let out = self.run_values(module, func, &vals, 0)?;
        Ok(out.into_iter().map(Value::as_f64).collect())
    }

    /// Runs `func` on typed values.
    ///
    /// # Errors
    /// See [`Interpreter::run`].
    pub fn run_values(
        &mut self,
        module: &Module,
        func: FuncId,
        args: &[Value],
        depth: usize,
    ) -> Result<Vec<Value>, EvalError> {
        if depth > self.max_depth {
            return Err(EvalError::RecursionLimit);
        }
        let f: &Function = module.func(func);
        if args.len() != f.params().len() {
            return Err(EvalError::ArityMismatch {
                func: f.name.clone(),
                expected: f.params().len(),
                actual: args.len(),
            });
        }

        let mut env: HashMap<ValueId, Value> = HashMap::new();
        let mut block = 0u32;
        let mut incoming: Vec<Value> = args.to_vec();

        loop {
            let b = &f.blocks[block as usize];
            debug_assert_eq!(incoming.len(), b.params.len(), "block arg mismatch");
            for (&(p, ty), v) in b.params.iter().zip(incoming.iter()) {
                debug_assert!(matches!(
                    (ty, v),
                    (Type::F64, Value::F64(_)) | (Type::Bool, Value::Bool(_))
                ));
                env.insert(p, *v);
            }
            for (result, inst) in &b.insts {
                if self.fuel == 0 {
                    return Err(EvalError::OutOfFuel);
                }
                self.fuel -= 1;
                self.steps += 1;
                let value = self.eval_inst(module, inst, &env, depth)?;
                env.insert(*result, value);
            }
            match &b.terminator {
                Terminator::Ret(vals) => {
                    return Ok(vals.iter().map(|v| env[v]).collect());
                }
                Terminator::Br { target, args } => {
                    incoming = args.iter().map(|v| env[v]).collect();
                    block = target.0;
                }
                Terminator::CondBr {
                    cond,
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                } => {
                    if env[cond].as_bool() {
                        incoming = then_args.iter().map(|v| env[v]).collect();
                        block = then_target.0;
                    } else {
                        incoming = else_args.iter().map(|v| env[v]).collect();
                        block = else_target.0;
                    }
                }
            }
        }
    }

    fn eval_inst(
        &mut self,
        module: &Module,
        inst: &Inst,
        env: &HashMap<ValueId, Value>,
        depth: usize,
    ) -> Result<Value, EvalError> {
        Ok(match inst {
            Inst::Const(x) => Value::F64(*x),
            Inst::Unary { op, operand } => {
                let d = registry::lookup_unary(op)
                    .or_else(|| builtin_non_differentiable_unary(op))
                    .ok_or_else(|| EvalError::UnknownOp(op.clone()))?;
                Value::F64((d.f)(env[operand].as_f64()))
            }
            Inst::Binary { op, lhs, rhs } => {
                let d =
                    registry::lookup_binary(op).ok_or_else(|| EvalError::UnknownOp(op.clone()))?;
                Value::F64((d.f)(env[lhs].as_f64(), env[rhs].as_f64()))
            }
            Inst::Cmp { pred, lhs, rhs } => {
                Value::Bool(pred.apply(env[lhs].as_f64(), env[rhs].as_f64()))
            }
            Inst::Call { callee, args } => {
                let vals: Vec<Value> = args.iter().map(|a| env[a]).collect();
                let mut out = self.run_values(module, *callee, &vals, depth + 1)?;
                debug_assert_eq!(out.len(), 1, "calls require single-result callees");
                out.pop().expect("non-empty results")
            }
        })
    }
}

/// Unary operations with semantics but *no registered derivative* — the
/// non-differentiable instructions the paper's differentiability checking
/// (§2.2) must diagnose when they are active.
pub fn builtin_non_differentiable_unary(op: &str) -> Option<s4tf_core::registry::UnaryDerivative> {
    // `df` is never consulted for these: the AD check rejects them first.
    let f: fn(f64) -> f64 = match op {
        "floor" => f64::floor,
        "ceil" => f64::ceil,
        "round" => f64::round,
        "trunc" => f64::trunc,
        _ => return None,
    };
    Some(s4tf_core::registry::UnaryDerivative {
        f,
        df: |_| f64::NAN,
    })
}

/// True if `op` is one of the non-differentiable builtins.
pub fn is_non_differentiable_unary(op: &str) -> bool {
    matches!(op, "floor" | "ceil" | "round" | "trunc")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{CmpPred, Type};

    #[test]
    fn straight_line_arithmetic() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("f", &[Type::F64, Type::F64]);
        let (x, y) = (b.param(0), b.param(1));
        let p = b.binary("mul", x, y);
        let s = b.unary("sin", p);
        let c = b.constant(1.0);
        let r = b.binary("add", s, c);
        b.ret(&[r]);
        let f = module.add_function(b.finish());
        let out = Interpreter::new().run(&module, f, &[2.0, 3.0]).unwrap();
        assert!((out[0] - (6.0f64.sin() + 1.0)).abs() < 1e-15);
    }

    #[test]
    fn branch_abs() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("abs", &[Type::F64]);
        let x = b.param(0);
        let zero = b.constant(0.0);
        let c = b.cmp(CmpPred::Lt, x, zero);
        let neg_bb = b.add_block(&[]);
        let join = b.add_block(&[Type::F64]);
        b.cond_br(c, neg_bb, &[], join, &[x]);
        b.switch_to(neg_bb);
        let n = b.unary("neg", x);
        b.br(join, &[n]);
        b.switch_to(join);
        let r = b.block_param(join, 0);
        b.ret(&[r]);
        let f = module.add_function(b.finish());
        let mut interp = Interpreter::new();
        assert_eq!(interp.run(&module, f, &[-3.0]).unwrap(), vec![3.0]);
        assert_eq!(interp.run(&module, f, &[4.0]).unwrap(), vec![4.0]);
    }

    /// A counting loop: sum of k² for k in 0..n.
    fn loop_func(module: &mut Module) -> FuncId {
        let mut b = FunctionBuilder::new("sumsq", &[Type::F64]);
        let n = b.param(0);
        let zero = b.constant(0.0);
        // header(k, acc)
        let header = b.add_block(&[Type::F64, Type::F64]);
        let body = b.add_block(&[]);
        let exit = b.add_block(&[]);
        b.br(header, &[zero, zero]);
        b.switch_to(header);
        let k = b.block_param(header, 0);
        let acc = b.block_param(header, 1);
        let c = b.cmp(CmpPred::Lt, k, n);
        b.cond_br(c, body, &[], exit, &[]);
        b.switch_to(body);
        let k2 = b.binary("mul", k, k);
        let acc2 = b.binary("add", acc, k2);
        let one = b.constant(1.0);
        let k_next = b.binary("add", k, one);
        b.br(header, &[k_next, acc2]);
        b.switch_to(exit);
        b.ret(&[acc]);
        module.add_function(b.finish())
    }

    #[test]
    fn loops_execute() {
        let mut module = Module::new();
        let f = loop_func(&mut module);
        let mut interp = Interpreter::new();
        // 0²+1²+2²+3² = 14
        assert_eq!(interp.run(&module, f, &[4.0]).unwrap(), vec![14.0]);
        assert!(interp.steps() > 10);
    }

    #[test]
    fn fuel_guards_divergence() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("diverge", &[]);
        let spin = b.add_block(&[]);
        b.br(spin, &[]);
        b.switch_to(spin);
        let c = b.constant(0.0);
        let _ = b.unary("neg", c);
        b.br(spin, &[]);
        let f = module.add_function(b.finish());
        let err = Interpreter::with_fuel(1000).run(&module, f, &[]);
        assert_eq!(err, Err(EvalError::OutOfFuel));
    }

    #[test]
    fn calls_and_recursion_limit() {
        let mut module = Module::new();
        // g(x) = x + 1
        let mut b = FunctionBuilder::new("g", &[Type::F64]);
        let x = b.param(0);
        let one = b.constant(1.0);
        let r = b.binary("add", x, one);
        b.ret(&[r]);
        let g = module.add_function(b.finish());
        // f(x) = g(g(x))
        let mut b = FunctionBuilder::new("f", &[Type::F64]);
        let x = b.param(0);
        let y = b.call(g, &[x]);
        let z = b.call(g, &[y]);
        b.ret(&[z]);
        let f = module.add_function(b.finish());
        assert_eq!(
            Interpreter::new().run(&module, f, &[5.0]).unwrap(),
            vec![7.0]
        );

        // infinite recursion: h(x) = h(x)
        let mut b = FunctionBuilder::new("h", &[Type::F64]);
        let x = b.param(0);
        // self-call: the callee id will be this function's own id (2 funcs exist)
        let self_id = FuncId(module.functions.len() as u32);
        let y = b.call(self_id, &[x]);
        b.ret(&[y]);
        let h = module.add_function(b.finish());
        assert_eq!(
            Interpreter::new().run(&module, h, &[1.0]),
            Err(EvalError::RecursionLimit)
        );
    }

    #[test]
    fn arity_and_unknown_op_errors() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("f", &[Type::F64]);
        let x = b.param(0);
        let y = b.unary("no_such_op_xyz", x);
        b.ret(&[y]);
        let f = module.add_function(b.finish());
        assert_eq!(
            Interpreter::new().run(&module, f, &[1.0, 2.0]),
            Err(EvalError::ArityMismatch {
                func: "f".into(),
                expected: 1,
                actual: 2
            })
        );
        assert_eq!(
            Interpreter::new().run(&module, f, &[1.0]),
            Err(EvalError::UnknownOp("no_such_op_xyz".into()))
        );
    }

    #[test]
    fn non_differentiable_builtins_evaluate() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("f", &[Type::F64]);
        let x = b.param(0);
        let y = b.unary("floor", x);
        b.ret(&[y]);
        let f = module.add_function(b.finish());
        assert_eq!(
            Interpreter::new().run(&module, f, &[2.7]).unwrap(),
            vec![2.0]
        );
        assert!(is_non_differentiable_unary("floor"));
        assert!(!is_non_differentiable_unary("sin"));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::F64(1.5).as_f64(), 1.5);
        assert!(Value::Bool(true).as_bool());
    }
}
