//! Textual form of the IR (round-trippable with [`crate::parser`]).

use crate::ir::{Block, Function, Inst, Module, Terminator, ValueId};
use std::fmt::Write;

/// Prints a module in textual form.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    for (i, f) in module.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f, module));
    }
    out
}

/// Prints one function in textual form.
pub fn print_function(f: &Function, module: &Module) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params()
        .iter()
        .map(|(v, ty)| format!("{}: {ty}", val(*v)))
        .collect();
    let results: Vec<String> = f.result_types.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "func @{}({}) -> {} {{",
        f.name,
        params.join(", "),
        results.join(", ")
    );
    for (i, block) in f.blocks.iter().enumerate() {
        print_block(&mut out, i, block, module);
    }
    out.push_str("}\n");
    out
}

fn print_block(out: &mut String, index: usize, block: &Block, module: &Module) {
    let params: Vec<String> = block
        .params
        .iter()
        .map(|(v, ty)| format!("{}: {ty}", val(*v)))
        .collect();
    let _ = writeln!(out, "bb{index}({}):", params.join(", "));
    for (result, inst) in &block.insts {
        let _ = writeln!(out, "  {} = {}", val(*result), print_inst(inst, module));
    }
    let _ = writeln!(out, "  {}", print_terminator(&block.terminator));
}

fn print_inst(inst: &Inst, module: &Module) -> String {
    match inst {
        Inst::Const(x) => format!("const {x:?}"),
        Inst::Unary { op, operand } => format!("{op} {}", val(*operand)),
        Inst::Binary { op, lhs, rhs } => format!("{op} {}, {}", val(*lhs), val(*rhs)),
        Inst::Cmp { pred, lhs, rhs } => {
            format!("cmp {} {}, {}", pred.mnemonic(), val(*lhs), val(*rhs))
        }
        Inst::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(|a| val(*a)).collect();
            format!("call @{}({})", module.func(*callee).name, args.join(", "))
        }
    }
}

fn print_terminator(t: &Terminator) -> String {
    match t {
        Terminator::Ret(vals) => {
            let vals: Vec<String> = vals.iter().map(|v| val(*v)).collect();
            format!("ret {}", vals.join(", "))
        }
        Terminator::Br { target, args } => {
            let args: Vec<String> = args.iter().map(|a| val(*a)).collect();
            format!("br bb{}({})", target.0, args.join(", "))
        }
        Terminator::CondBr {
            cond,
            then_target,
            then_args,
            else_target,
            else_args,
        } => {
            let t: Vec<String> = then_args.iter().map(|a| val(*a)).collect();
            let e: Vec<String> = else_args.iter().map(|a| val(*a)).collect();
            format!(
                "condbr {}, bb{}({}), bb{}({})",
                val(*cond),
                then_target.0,
                t.join(", "),
                else_target.0,
                e.join(", ")
            )
        }
    }
}

fn val(v: ValueId) -> String {
    format!("%{}", v.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{CmpPred, Type};

    #[test]
    fn prints_straight_line() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("f", &[Type::F64]);
        let x = b.param(0);
        let two = b.constant(2.0);
        let y = b.binary("mul", x, two);
        b.ret(&[y]);
        module.add_function(b.finish());
        let text = print_module(&module);
        assert!(text.contains("func @f(%0: f64) -> f64 {"));
        assert!(text.contains("%1 = const 2.0"));
        assert!(text.contains("%2 = mul %0, %1"));
        assert!(text.contains("ret %2"));
    }

    #[test]
    fn prints_control_flow_and_calls() {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("g", &[Type::F64]);
        let x = b.param(0);
        b.ret(&[x]);
        let g = module.add_function(b.finish());

        let mut b = FunctionBuilder::new("f", &[Type::F64]);
        let x = b.param(0);
        let zero = b.constant(0.0);
        let c = b.cmp(CmpPred::Gt, x, zero);
        let t = b.add_block(&[]);
        let j = b.add_block(&[Type::F64]);
        b.cond_br(c, t, &[], j, &[x]);
        b.switch_to(t);
        let y = b.call(g, &[x]);
        b.br(j, &[y]);
        b.switch_to(j);
        let p = b.block_param(j, 0);
        b.ret(&[p]);
        module.add_function(b.finish());

        let text = print_module(&module);
        assert!(text.contains("cmp gt"));
        assert!(text.contains("condbr %2, bb1(), bb2(%0)"), "{text}");
        assert!(text.contains("call @g(%0)"));
        assert!(text.contains("bb2(%3: f64):"), "{text}");
    }
}
