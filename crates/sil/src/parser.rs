//! Parser for the textual IR form produced by [`crate::printer`].
//!
//! The format is deliberately small; see the crate-level example. Values are
//! `%name` (any identifier), blocks are `bbN`, functions are `@name`.
//! Forward references to functions and blocks are allowed.

use crate::ir::{
    Block, BlockId, CmpPred, FuncId, Function, Inst, Module, Terminator, Type, ValueId,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the failure occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a textual module.
///
/// # Errors
/// Returns a [`ParseError`] pinpointing the offending line.
pub fn parse_module(text: &str) -> Result<Module> {
    Parser::new(text).parse_module()
}

/// Parses a module and panics on failure (convenient in tests).
///
/// # Panics
/// Panics if the text does not parse.
pub fn parse_module_unwrap(text: &str) -> Module {
    parse_module(text).unwrap_or_else(|e| panic!("{e}"))
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

struct PendingCall {
    func_index: usize,
    block: usize,
    inst: usize,
    callee_name: String,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, strip_comment(l).trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn parse_module(&mut self) -> Result<Module> {
        let mut module = Module::new();
        let mut pending_calls: Vec<PendingCall> = Vec::new();
        while self.peek().is_some() {
            let (func, calls) = self.parse_function(module.functions.len())?;
            module.functions.push(func);
            pending_calls.extend(calls);
        }
        // Resolve call targets now that every function is known.
        for p in pending_calls {
            let Some(callee) = module.func_id(&p.callee_name) else {
                return Err(ParseError {
                    line: 0,
                    message: format!("call to undefined function '@{}'", p.callee_name),
                });
            };
            if let (_, Inst::Call { callee: c, .. }) =
                &mut module.functions[p.func_index].blocks[p.block].insts[p.inst]
            {
                *c = callee;
            }
        }
        Ok(module)
    }

    fn parse_function(&mut self, func_index: usize) -> Result<(Function, Vec<PendingCall>)> {
        let (line, header) = self.next_line().expect("caller checked");
        let header = header.trim();
        let Some(rest) = header.strip_prefix("func @") else {
            return self.err(
                line,
                format!("expected 'func @name(...)', found '{header}'"),
            );
        };
        let open = rest.find('(').ok_or_else(|| ParseError {
            line,
            message: "missing '(' in function header".into(),
        })?;
        let name = rest[..open].to_string();
        let close = rest.find(')').ok_or_else(|| ParseError {
            line,
            message: "missing ')' in function header".into(),
        })?;
        let param_text = &rest[open + 1..close];
        let after = rest[close + 1..].trim();
        let Some(results_text) = after.strip_prefix("->") else {
            return self.err(line, "missing '-> <types> {' after parameters");
        };
        let results_text = results_text.trim_end_matches('{').trim();
        let result_types = if results_text.is_empty() {
            Vec::new()
        } else {
            results_text
                .split(',')
                .map(|t| self.parse_type(line, t.trim()))
                .collect::<Result<Vec<_>>>()?
        };

        let mut names: HashMap<String, ValueId> = HashMap::new();
        let mut next_value = 0u32;
        let mut fresh = |name: &str, names: &mut HashMap<String, ValueId>| {
            let v = ValueId(next_value);
            next_value += 1;
            names.insert(name.to_string(), v);
            v
        };

        // Entry params are re-declared on bb0's header; parse them here just
        // to validate, but the authoritative list comes from bb0.
        let _ = param_text;

        let mut blocks: Vec<Block> = Vec::new();
        let mut pending_calls = Vec::new();

        loop {
            let Some((bl, bline)) = self.next_line() else {
                return self.err(line, "unterminated function (missing '}')");
            };
            if bline == "}" {
                break;
            }
            // Block header: bbN(%a: f64, ...):
            let Some(rest) = bline.strip_prefix("bb") else {
                return self.err(
                    bl,
                    format!("expected block header or '}}', found '{bline}'"),
                );
            };
            let open = rest.find('(').ok_or_else(|| ParseError {
                line: bl,
                message: "missing '(' in block header".into(),
            })?;
            let index: usize = rest[..open].parse().map_err(|_| ParseError {
                line: bl,
                message: format!("bad block index '{}'", &rest[..open]),
            })?;
            if index != blocks.len() {
                return self.err(
                    bl,
                    format!("blocks must be in order; expected bb{}", blocks.len()),
                );
            }
            let close = rest.rfind(')').ok_or_else(|| ParseError {
                line: bl,
                message: "missing ')' in block header".into(),
            })?;
            let mut params = Vec::new();
            let ptext = &rest[open + 1..close];
            if !ptext.trim().is_empty() {
                for p in ptext.split(',') {
                    let (n, ty) = self.parse_typed_value(bl, p.trim())?;
                    let v = fresh(&n, &mut names);
                    params.push((v, ty));
                }
            }

            // Body until a terminator line.
            let mut insts = Vec::new();
            let terminator;
            loop {
                let Some((il, iline)) = self.next_line() else {
                    return self.err(bl, "block not terminated before end of input");
                };
                if let Some(t) = self.try_parse_terminator(il, iline, &names)? {
                    terminator = t;
                    break;
                }
                // %v = <inst>
                let Some((lhs, rhs)) = iline.split_once('=') else {
                    return self.err(
                        il,
                        format!("expected '%v = <inst>' or terminator, found '{iline}'"),
                    );
                };
                let vname = self.parse_value_name(il, lhs.trim())?;
                let (inst, pending) = self.parse_inst(il, rhs.trim(), &names)?;
                let v = fresh(&vname, &mut names);
                if let Some(callee_name) = pending {
                    pending_calls.push(PendingCall {
                        func_index,
                        block: blocks.len(),
                        inst: insts.len(),
                        callee_name,
                    });
                }
                insts.push((v, inst));
            }
            blocks.push(Block {
                params,
                insts,
                terminator,
            });
        }

        if blocks.is_empty() {
            return self.err(line, "function has no blocks");
        }
        Ok((
            Function {
                name,
                blocks,
                result_types,
                next_value,
            },
            pending_calls,
        ))
    }

    fn parse_type(&self, line: usize, s: &str) -> Result<Type> {
        match s {
            "f64" => Ok(Type::F64),
            "bool" => Ok(Type::Bool),
            _ => self.err(line, format!("unknown type '{s}'")),
        }
    }

    fn parse_value_name(&self, line: usize, s: &str) -> Result<String> {
        s.strip_prefix('%')
            .map(str::to_string)
            .ok_or_else(|| ParseError {
                line,
                message: format!("expected '%value', found '{s}'"),
            })
    }

    fn parse_typed_value(&self, line: usize, s: &str) -> Result<(String, Type)> {
        let Some((n, t)) = s.split_once(':') else {
            return self.err(line, format!("expected '%v: type', found '{s}'"));
        };
        Ok((
            self.parse_value_name(line, n.trim())?,
            self.parse_type(line, t.trim())?,
        ))
    }

    fn resolve(&self, line: usize, names: &HashMap<String, ValueId>, s: &str) -> Result<ValueId> {
        let n = self.parse_value_name(line, s)?;
        names.get(&n).copied().ok_or_else(|| ParseError {
            line,
            message: format!("use of undefined value '%{n}'"),
        })
    }

    fn parse_value_list(
        &self,
        line: usize,
        names: &HashMap<String, ValueId>,
        s: &str,
    ) -> Result<Vec<ValueId>> {
        if s.trim().is_empty() {
            return Ok(Vec::new());
        }
        s.split(',')
            .map(|v| self.resolve(line, names, v.trim()))
            .collect()
    }

    /// Parses `bbN(args)` into a target and args.
    fn parse_target(
        &self,
        line: usize,
        names: &HashMap<String, ValueId>,
        s: &str,
    ) -> Result<(BlockId, Vec<ValueId>)> {
        let s = s.trim();
        let Some(rest) = s.strip_prefix("bb") else {
            return self.err(line, format!("expected 'bbN(...)', found '{s}'"));
        };
        let open = rest.find('(').ok_or_else(|| ParseError {
            line,
            message: "missing '(' in branch target".into(),
        })?;
        let idx: u32 = rest[..open].parse().map_err(|_| ParseError {
            line,
            message: format!("bad block index '{}'", &rest[..open]),
        })?;
        let close = rest.rfind(')').ok_or_else(|| ParseError {
            line,
            message: "missing ')' in branch target".into(),
        })?;
        let args = self.parse_value_list(line, names, &rest[open + 1..close])?;
        Ok((BlockId(idx), args))
    }

    fn try_parse_terminator(
        &self,
        line: usize,
        s: &str,
        names: &HashMap<String, ValueId>,
    ) -> Result<Option<Terminator>> {
        if let Some(rest) = s.strip_prefix("ret") {
            let vals = self.parse_value_list(line, names, rest.trim())?;
            return Ok(Some(Terminator::Ret(vals)));
        }
        if let Some(rest) = s.strip_prefix("br ") {
            let (target, args) = self.parse_target(line, names, rest)?;
            return Ok(Some(Terminator::Br { target, args }));
        }
        if let Some(rest) = s.strip_prefix("condbr ") {
            // condbr %c, bbN(...), bbM(...)
            let Some((cond_s, rest)) = rest.split_once(',') else {
                return self.err(line, "condbr needs a condition and two targets");
            };
            let cond = self.resolve(line, names, cond_s.trim())?;
            // Split the two targets on the comma *between* the close-paren
            // of the first and 'bb' of the second.
            let rest = rest.trim();
            let split = find_target_split(rest).ok_or_else(|| ParseError {
                line,
                message: "condbr needs two 'bbN(...)' targets".into(),
            })?;
            let (t1, t2) = rest.split_at(split);
            let t2 = t2.trim_start_matches(',').trim();
            let (then_target, then_args) = self.parse_target(line, names, t1.trim())?;
            let (else_target, else_args) = self.parse_target(line, names, t2)?;
            return Ok(Some(Terminator::CondBr {
                cond,
                then_target,
                then_args,
                else_target,
                else_args,
            }));
        }
        Ok(None)
    }

    /// Parses an instruction right-hand side. Returns the instruction plus
    /// (for calls) the callee name to resolve later.
    fn parse_inst(
        &self,
        line: usize,
        s: &str,
        names: &HashMap<String, ValueId>,
    ) -> Result<(Inst, Option<String>)> {
        if let Some(rest) = s.strip_prefix("const ") {
            let x: f64 = rest.trim().parse().map_err(|_| ParseError {
                line,
                message: format!("bad float literal '{rest}'"),
            })?;
            return Ok((Inst::Const(x), None));
        }
        if let Some(rest) = s.strip_prefix("cmp ") {
            let mut parts = rest.splitn(2, ' ');
            let pred_s = parts.next().unwrap_or("");
            let pred = CmpPred::from_mnemonic(pred_s).ok_or_else(|| ParseError {
                line,
                message: format!("unknown comparison '{pred_s}'"),
            })?;
            let ops = parts.next().unwrap_or("");
            let vals = self.parse_value_list(line, names, ops)?;
            if vals.len() != 2 {
                return self.err(line, "cmp takes exactly two operands");
            }
            return Ok((
                Inst::Cmp {
                    pred,
                    lhs: vals[0],
                    rhs: vals[1],
                },
                None,
            ));
        }
        if let Some(rest) = s.strip_prefix("call @") {
            let open = rest.find('(').ok_or_else(|| ParseError {
                line,
                message: "missing '(' in call".into(),
            })?;
            let callee_name = rest[..open].to_string();
            let close = rest.rfind(')').ok_or_else(|| ParseError {
                line,
                message: "missing ')' in call".into(),
            })?;
            let args = self.parse_value_list(line, names, &rest[open + 1..close])?;
            return Ok((
                Inst::Call {
                    callee: FuncId(u32::MAX), // patched after all functions parse
                    args,
                },
                Some(callee_name),
            ));
        }
        // Named unary/binary: "<op> %a" or "<op> %a, %b"
        let Some((op, rest)) = s.split_once(' ') else {
            return self.err(line, format!("cannot parse instruction '{s}'"));
        };
        let vals = self.parse_value_list(line, names, rest)?;
        match vals.len() {
            1 => Ok((
                Inst::Unary {
                    op: op.to_string(),
                    operand: vals[0],
                },
                None,
            )),
            2 => Ok((
                Inst::Binary {
                    op: op.to_string(),
                    lhs: vals[0],
                    rhs: vals[1],
                },
                None,
            )),
            n => self.err(line, format!("operation '{op}' with {n} operands")),
        }
    }
}

/// Finds the index of the comma separating `bbN(...)`, `bbM(...)`.
fn find_target_split(s: &str) -> Option<usize> {
    let mut depth = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::printer::print_module;

    #[test]
    fn parses_and_evaluates() {
        let m = parse_module_unwrap(
            r#"
            // f(x) = sin(x*x) + 1
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = mul %x, %x
              %s = sin %y
              %one = const 1.0
              %r = add %s, %one
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let out = Interpreter::new().run(&m, f, &[2.0]).unwrap();
        assert!((out[0] - (4.0f64.sin() + 1.0)).abs() < 1e-15);
    }

    #[test]
    fn parses_control_flow() {
        let m = parse_module_unwrap(
            r#"
            func @abs(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp lt %x, %zero
              condbr %c, bb1(), bb2(%x)
            bb1():
              %n = neg %x
              br bb2(%n)
            bb2(%r: f64):
              ret %r
            }
            "#,
        );
        let f = m.func_id("abs").unwrap();
        let mut i = Interpreter::new();
        assert_eq!(i.run(&m, f, &[-5.0]).unwrap(), vec![5.0]);
        assert_eq!(i.run(&m, f, &[5.0]).unwrap(), vec![5.0]);
    }

    #[test]
    fn parses_calls_with_forward_reference() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @g(%x)
              %z = call @g(%y)
              ret %z
            }
            func @g(%x: f64) -> f64 {
            bb0(%x: f64):
              %one = const 1.0
              %r = add %x, %one
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        assert_eq!(Interpreter::new().run(&m, f, &[0.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"
            func @loop(%n: f64) -> f64 {
            bb0(%n: f64):
              %zero = const 0.0
              br bb1(%zero, %zero)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %k2 = mul %k, %k
              %acc2 = add %acc, %k2
              %one = const 1.0
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            "#;
        let m1 = parse_module_unwrap(src);
        let text = print_module(&m1);
        let m2 = parse_module_unwrap(&text);
        assert_eq!(print_module(&m2), text, "printer output must be stable");
        let f = m2.func_id("loop").unwrap();
        assert_eq!(Interpreter::new().run(&m2, f, &[4.0]).unwrap(), vec![14.0]);
    }

    #[test]
    fn error_reporting() {
        let e =
            parse_module("func @f(%x: f64) -> f64 {\nbb0(%x: f64):\n  %y = mul %x %q\n  ret %y\n}")
                .unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");

        let e = parse_module("nonsense").unwrap_err();
        assert!(e.message.contains("expected 'func"));

        let e = parse_module(
            "func @f(%x: f64) -> f64 {\nbb0(%x: f64):\n  %y = call @missing(%x)\n  ret %y\n}",
        )
        .unwrap_err();
        assert!(e.message.contains("undefined function"));

        let e = parse_module(
            "func @f(%x: f64) -> f64 {\nbb0(%x: f64):\n  %y = frobnicate\n  ret %y\n}",
        )
        .unwrap_err();
        assert!(e.message.contains("cannot parse"));
    }

    #[test]
    fn undefined_value_is_an_error() {
        let e =
            parse_module("func @f(%x: f64) -> f64 {\nbb0(%x: f64):\n  ret %nope\n}").unwrap_err();
        assert!(e.message.contains("undefined value"));
    }

    #[test]
    fn multi_result_signature() {
        let m = parse_module_unwrap(
            "func @two(%x: f64) -> f64, f64 {\nbb0(%x: f64):\n  %y = neg %x\n  ret %x, %y\n}",
        );
        let f = m.func_id("two").unwrap();
        assert_eq!(m.func(f).result_types.len(), 2);
        assert_eq!(
            Interpreter::new().run(&m, f, &[3.0]).unwrap(),
            vec![3.0, -3.0]
        );
    }
}
