//! An ergonomic builder for IR functions.

use crate::ir::{Block, BlockId, CmpPred, FuncId, Function, Inst, Terminator, Type, ValueId};

/// Builds a [`Function`] block by block.
///
/// The builder starts positioned in the entry block (block 0), whose
/// parameters are the function parameters. Each emission appends to the
/// *current* block; [`FunctionBuilder::switch_to`] repositions.
///
/// ```
/// use s4tf_sil::{FunctionBuilder, Type, Module, Interpreter};
///
/// let mut b = FunctionBuilder::new("double", &[Type::F64]);
/// let x = b.param(0);
/// let two = b.constant(2.0);
/// let y = b.binary("mul", x, two);
/// b.ret(&[y]);
///
/// let mut module = Module::new();
/// let f = module.add_function(b.finish());
/// let out = Interpreter::new().run(&module, f, &[21.0])?;
/// assert_eq!(out, vec![42.0]);
/// # Ok::<(), s4tf_sil::EvalError>(())
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    terminated: Vec<bool>,
}

impl FunctionBuilder {
    /// Starts a function with the given parameter types, positioned in the
    /// entry block.
    pub fn new(name: &str, param_types: &[Type]) -> Self {
        let mut func = Function {
            name: name.to_string(),
            blocks: Vec::new(),
            result_types: vec![Type::F64],
            next_value: 0,
        };
        let params = param_types
            .iter()
            .map(|&ty| {
                let v = func.fresh_value();
                (v, ty)
            })
            .collect();
        func.blocks.push(Block {
            params,
            insts: Vec::new(),
            terminator: Terminator::Ret(vec![]),
        });
        FunctionBuilder {
            func,
            current: BlockId(0),
            terminated: vec![false],
        }
    }

    /// Overrides the result types (default `[f64]`).
    pub fn set_result_types(&mut self, types: &[Type]) {
        self.func.result_types = types.to_vec();
    }

    /// The `i`-th function parameter.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> ValueId {
        self.func.blocks[0].params[i].0
    }

    /// The `i`-th parameter of `block`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn block_param(&self, block: BlockId, i: usize) -> ValueId {
        self.func.block(block).params[i].0
    }

    /// Adds a new (empty) block with the given parameter types.
    pub fn add_block(&mut self, param_types: &[Type]) -> BlockId {
        let params = param_types
            .iter()
            .map(|&ty| (self.func.fresh_value(), ty))
            .collect();
        self.func.blocks.push(Block {
            params,
            insts: Vec::new(),
            terminator: Terminator::Ret(vec![]),
        });
        self.terminated.push(false);
        BlockId(self.func.blocks.len() as u32 - 1)
    }

    /// Repositions emission to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    fn emit(&mut self, inst: Inst) -> ValueId {
        assert!(
            !self.terminated[self.current.0 as usize],
            "emitting into terminated block {:?}",
            self.current
        );
        let v = self.func.fresh_value();
        self.func.block_mut(self.current).insts.push((v, inst));
        v
    }

    /// Emits a constant.
    pub fn constant(&mut self, value: f64) -> ValueId {
        self.emit(Inst::Const(value))
    }

    /// Emits a named unary operation.
    pub fn unary(&mut self, op: &str, operand: ValueId) -> ValueId {
        self.emit(Inst::Unary {
            op: op.to_string(),
            operand,
        })
    }

    /// Emits a named binary operation.
    pub fn binary(&mut self, op: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Inst::Binary {
            op: op.to_string(),
            lhs,
            rhs,
        })
    }

    /// Emits a comparison.
    pub fn cmp(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Inst::Cmp { pred, lhs, rhs })
    }

    /// Emits a call.
    pub fn call(&mut self, callee: FuncId, args: &[ValueId]) -> ValueId {
        self.emit(Inst::Call {
            callee,
            args: args.to_vec(),
        })
    }

    fn terminate(&mut self, t: Terminator) {
        assert!(
            !self.terminated[self.current.0 as usize],
            "block {:?} already terminated",
            self.current
        );
        self.func.block_mut(self.current).terminator = t;
        self.terminated[self.current.0 as usize] = true;
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, values: &[ValueId]) {
        self.terminate(Terminator::Ret(values.to_vec()));
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId, args: &[ValueId]) {
        self.terminate(Terminator::Br {
            target,
            args: args.to_vec(),
        });
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(
        &mut self,
        cond: ValueId,
        then_target: BlockId,
        then_args: &[ValueId],
        else_target: BlockId,
        else_args: &[ValueId],
    ) {
        self.terminate(Terminator::CondBr {
            cond,
            then_target,
            then_args: then_args.to_vec(),
            else_target,
            else_args: else_args.to_vec(),
        });
    }

    /// Finishes, returning the function.
    ///
    /// # Panics
    /// Panics if any block was left unterminated.
    pub fn finish(self) -> Function {
        for (i, &t) in self.terminated.iter().enumerate() {
            assert!(t, "block bb{i} was never terminated");
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", &[Type::F64, Type::F64]);
        let (x, y) = (b.param(0), b.param(1));
        let s = b.binary("add", x, y);
        let t = b.unary("sin", s);
        b.ret(&[t]);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.params().len(), 2);
    }

    #[test]
    fn diamond_cfg() {
        let mut b = FunctionBuilder::new("abs", &[Type::F64]);
        let x = b.param(0);
        let zero = b.constant(0.0);
        let c = b.cmp(CmpPred::Lt, x, zero);
        let neg_bb = b.add_block(&[]);
        let join = b.add_block(&[Type::F64]);
        b.cond_br(c, neg_bb, &[], join, &[x]);
        b.switch_to(neg_bb);
        let n = b.unary("neg", x);
        b.br(join, &[n]);
        b.switch_to(join);
        let r = b.block_param(join, 0);
        b.ret(&[r]);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.block(BlockId(2)).params.len(), 1);
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut b = FunctionBuilder::new("f", &[]);
        let _dangling = b.add_block(&[]);
        b.ret(&[]);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", &[]);
        b.ret(&[]);
        b.ret(&[]);
    }
}
