//! Structural and SSA verification: single definitions, dominance of uses,
//! branch-argument agreement, return-type agreement.

use crate::ir::{BlockId, FuncId, Function, Module, Terminator, Type, ValueId};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function in which the failure was found.
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification of '{}' failed: {}",
            self.function, self.message
        )
    }
}

impl Error for VerifyError {}

/// Verifies every function in the module.
///
/// # Errors
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for id in module.func_ids() {
        verify_function(module, id)?;
    }
    Ok(())
}

/// Verifies one function.
///
/// # Errors
/// Returns a [`VerifyError`] describing the first problem found.
pub fn verify_function(module: &Module, func: FuncId) -> Result<(), VerifyError> {
    let f = module.func(func);
    let fail = |message: String| {
        Err(VerifyError {
            function: f.name.clone(),
            message,
        })
    };

    if f.blocks.is_empty() {
        return fail("function has no blocks".into());
    }

    // Single definition of every value; collect defining block.
    let mut def_block: HashMap<ValueId, BlockId> = HashMap::new();
    for id in f.block_ids() {
        for v in f.block(id).defined_values() {
            if def_block.insert(v, id).is_some() {
                return fail(format!("value %{} defined more than once", v.0));
            }
            if v.0 >= f.next_value {
                return fail(format!("value %{} exceeds next_value", v.0));
            }
        }
    }

    let types = f.value_types(module);
    let doms = dominators(f);

    // Position of each instruction within its block, for same-block ordering.
    let mut def_pos: HashMap<ValueId, usize> = HashMap::new();
    for id in f.block_ids() {
        let b = f.block(id);
        for &(v, _) in &b.params {
            def_pos.insert(v, 0);
        }
        for (i, (v, _)) in b.insts.iter().enumerate() {
            def_pos.insert(*v, i + 1);
        }
    }

    let check_use = |user_block: BlockId, user_pos: usize, v: ValueId| -> Result<(), VerifyError> {
        let Some(&db) = def_block.get(&v) else {
            return Err(VerifyError {
                function: f.name.clone(),
                message: format!("use of undefined value %{}", v.0),
            });
        };
        let ok = if db == user_block {
            def_pos[&v] <= user_pos
        } else {
            doms[&user_block].contains(&db)
        };
        if ok {
            Ok(())
        } else {
            Err(VerifyError {
                function: f.name.clone(),
                message: format!(
                    "use of %{} in bb{} is not dominated by its definition in bb{}",
                    v.0, user_block.0, db.0
                ),
            })
        }
    };

    for id in f.block_ids() {
        let b = f.block(id);
        for (i, (_, inst)) in b.insts.iter().enumerate() {
            for v in inst.operands() {
                check_use(id, i + 1, v)?;
            }
            if let crate::ir::Inst::Call { callee, args } = inst {
                if callee.0 as usize >= module.functions.len() {
                    return fail(format!("call to out-of-range function {}", callee.0));
                }
                let target = module.func(*callee);
                if target.params().len() != args.len() {
                    return fail(format!(
                        "call to '{}' with {} args, expected {}",
                        target.name,
                        args.len(),
                        target.params().len()
                    ));
                }
                if target.result_types.len() != 1 {
                    return fail(format!("call to multi-result function '{}'", target.name));
                }
            }
        }
        let term_pos = b.insts.len() + 1;
        for v in b.terminator.operands() {
            check_use(id, term_pos, v)?;
        }
        match &b.terminator {
            Terminator::Ret(vals) => {
                if vals.len() != f.result_types.len() {
                    return fail(format!(
                        "ret with {} values, function declares {}",
                        vals.len(),
                        f.result_types.len()
                    ));
                }
                for (v, &ty) in vals.iter().zip(&f.result_types) {
                    if types[v] != ty {
                        return fail(format!(
                            "ret value %{} has type {}, expected {ty}",
                            v.0, types[v]
                        ));
                    }
                }
            }
            t => {
                for succ in t.successors() {
                    if succ.0 as usize >= f.blocks.len() {
                        return fail(format!("branch to out-of-range block bb{}", succ.0));
                    }
                }
                let check_args = |target: BlockId, args: &[ValueId]| -> Result<(), VerifyError> {
                    let params = &f.block(target).params;
                    if params.len() != args.len() {
                        return Err(VerifyError {
                            function: f.name.clone(),
                            message: format!(
                                "branch to bb{} with {} args, block has {} params",
                                target.0,
                                args.len(),
                                params.len()
                            ),
                        });
                    }
                    for (a, &(_, ty)) in args.iter().zip(params) {
                        if types[a] != ty {
                            return Err(VerifyError {
                                function: f.name.clone(),
                                message: format!(
                                    "branch arg %{} has type {}, bb{} param expects {ty}",
                                    a.0, types[a], target.0
                                ),
                            });
                        }
                    }
                    Ok(())
                };
                match t {
                    Terminator::Br { target, args } => check_args(*target, args)?,
                    Terminator::CondBr {
                        cond,
                        then_target,
                        then_args,
                        else_target,
                        else_args,
                    } => {
                        if types[cond] != Type::Bool {
                            return fail(format!("condbr condition %{} is not bool", cond.0));
                        }
                        check_args(*then_target, then_args)?;
                        check_args(*else_target, else_args)?;
                    }
                    Terminator::Ret(_) => unreachable!(),
                }
            }
        }
    }
    Ok(())
}

/// Computes the dominator sets of every block (iterative dataflow).
///
/// `doms[b]` contains every block that dominates `b`, including `b` itself.
/// Unreachable blocks dominate-set defaults to all blocks (standard
/// initialization), which makes uses inside unreachable code vacuously pass.
pub fn dominators(f: &Function) -> HashMap<BlockId, HashSet<BlockId>> {
    let all: HashSet<BlockId> = f.block_ids().collect();
    let preds = f.predecessors();
    let entry = BlockId(0);
    let mut doms: HashMap<BlockId, HashSet<BlockId>> = f
        .block_ids()
        .map(|b| {
            if b == entry {
                (b, HashSet::from([entry]))
            } else {
                (b, all.clone())
            }
        })
        .collect();
    let order: Vec<BlockId> = f.block_ids().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            if b == entry {
                continue;
            }
            if preds[&b].is_empty() {
                // Unreachable: keep the all-blocks initialization so uses
                // inside dead code verify vacuously.
                continue;
            }
            let mut new: Option<HashSet<BlockId>> = None;
            for &p in &preds[&b] {
                let pd = &doms[&p];
                new = Some(match new {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut new = new.expect("non-empty predecessors");
            new.insert(b);
            if new != doms[&b] {
                doms.insert(b, new);
                changed = true;
            }
        }
    }
    doms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;

    #[test]
    fn valid_programs_verify() {
        let m = parse_module_unwrap(
            r#"
            func @loop(%n: f64) -> f64 {
            bb0(%n: f64):
              %zero = const 0.0
              br bb1(%zero, %zero)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %k2 = mul %k, %k
              %acc2 = add %acc, %k2
              %one = const 1.0
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            "#,
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn dominators_of_diamond() {
        let m = parse_module_unwrap(
            r#"
            func @d(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp gt %x, %zero
              condbr %c, bb1(), bb2()
            bb1():
              br bb3(%x)
            bb2():
              br bb3(%zero)
            bb3(%r: f64):
              ret %r
            }
            "#,
        );
        let f = m.func(m.func_id("d").unwrap());
        let doms = dominators(f);
        assert!(doms[&BlockId(3)].contains(&BlockId(0)));
        assert!(!doms[&BlockId(3)].contains(&BlockId(1)));
        assert!(doms[&BlockId(1)].contains(&BlockId(0)));
        assert_eq!(doms[&BlockId(0)].len(), 1);
    }

    #[test]
    fn rejects_non_dominating_use() {
        // bb2 uses %y defined in bb1, but bb1 does not dominate bb2.
        let m = parse_module_unwrap(
            r#"
            func @bad(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp gt %x, %zero
              condbr %c, bb1(), bb2()
            bb1():
              %y = neg %x
              br bb3()
            bb2():
              %z = add %y, %x
              br bb3()
            bb3():
              ret %x
            }
            "#,
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_branch_arity_mismatch() {
        let m = parse_module_unwrap(
            r#"
            func @bad(%x: f64) -> f64 {
            bb0(%x: f64):
              br bb1()
            bb1(%y: f64):
              ret %y
            }
            "#,
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("branch to bb1"), "{e}");
    }

    #[test]
    fn rejects_bool_return_when_f64_declared() {
        let m = parse_module_unwrap(
            r#"
            func @bad(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = cmp gt %x, %x
              ret %c
            }
            "#,
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("ret value"), "{e}");
    }

    #[test]
    fn rejects_non_bool_condition() {
        let m = parse_module_unwrap(
            r#"
            func @bad(%x: f64) -> f64 {
            bb0(%x: f64):
              condbr %x, bb1(), bb1()
            bb1():
              ret %x
            }
            "#,
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not bool"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @g(%x, %x)
              ret %y
            }
            func @g(%x: f64) -> f64 {
            bb0(%x: f64):
              ret %x
            }
            "#,
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("call to 'g'"), "{e}");
    }
}
