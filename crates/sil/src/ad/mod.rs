//! The differentiation code transformation (paper §2.2).
//!
//! Pipeline, exactly as the paper lays it out:
//!
//! 1. **Inline callees** — the paper's transformation "recursively
//!    transforms the callees to get their derivative functions"; here the
//!    recursion is realized by inlining the call tree into the function
//!    being differentiated, terminating at named operations whose
//!    derivatives are *registered* (the `@derivative(of:)` base cases,
//!    `s4tf_core::registry`).
//! 2. **Activity analysis** ([`activity`]) — instructions both *varied*
//!    (depend on the inputs) and *useful* (contribute to the output) are
//!    *active* and need a derivative.
//! 3. **Differentiability checking** ([`check`]) — errors for active
//!    non-differentiable instructions, warnings for functions whose return
//!    value does not depend on differentiable arguments.
//! 4. **Derivative synthesis** ([`jvp`], [`vjp`]) — forward mode is a pure
//!    IR-to-IR transform; reverse mode synthesizes per-basic-block pullback
//!    records linked into a branch trace at runtime.
//!
//! All synthesis happens *before* any execution, from static analysis only —
//! the "AOT-compile-time" property the paper claims. The synthesized JVP is
//! ordinary IR, so the standard passes optimize it (tested).

pub mod activity;
pub mod check;
pub mod jvp;
pub mod rules;
pub mod vjp;

use crate::interp::EvalError;
use crate::ir::{FuncId, Module};
use std::error::Error;
use std::fmt;

/// Failures of the differentiation transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum AdError {
    /// Differentiability checking found errors (paper §2.2 step 2).
    NotDifferentiable {
        /// The diagnostics, one string per error.
        errors: Vec<String>,
    },
    /// Executing a synthesized derivative failed.
    Eval(EvalError),
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::NotDifferentiable { errors } => {
                write!(f, "function is not differentiable: {}", errors.join("; "))
            }
            AdError::Eval(e) => write!(f, "derivative evaluation failed: {e}"),
        }
    }
}

impl Error for AdError {}

impl From<EvalError> for AdError {
    fn from(e: EvalError) -> Self {
        AdError::Eval(e)
    }
}

/// Convenience: synthesizes the VJP of `func` and evaluates its gradient at
/// `args` (reverse mode, seed 1).
///
/// For repeated evaluation at many points, synthesize once with
/// [`vjp::differentiate`] and reuse the result — synthesis is the
/// "compile-time" step and is not meant to run per data point.
///
/// # Errors
/// Returns [`AdError`] if the function is not differentiable or evaluation
/// fails.
pub fn gradient(module: &Module, func: FuncId, args: &[f64]) -> Result<Vec<f64>, AdError> {
    let d = vjp::differentiate(module, func)?;
    let (_, grad) = d.value_with_gradient(args, 1.0)?;
    Ok(grad)
}

/// Convenience: value and gradient together (reverse mode).
///
/// # Errors
/// See [`gradient`].
pub fn value_with_gradient(
    module: &Module,
    func: FuncId,
    args: &[f64],
) -> Result<(f64, Vec<f64>), AdError> {
    let d = vjp::differentiate(module, func)?;
    d.value_with_gradient(args, 1.0)
}
