//! Activity analysis (paper §2.2, citing Hascoët & Pascual's Tapenade):
//! determines which values are *varied* (depend on the function's
//! differentiable inputs), which are *useful* (contribute to the output),
//! and hence which instructions are *active* and need a derivative.

use crate::ir::{Function, Inst, Terminator, Type, ValueId};
use std::collections::{HashMap, HashSet};

/// The result of activity analysis over one function.
#[derive(Debug, Clone)]
pub struct Activity {
    /// Values that (may) depend on the function's inputs.
    pub varied: HashSet<ValueId>,
    /// Values that (may) contribute to the return value.
    pub useful: HashSet<ValueId>,
}

impl Activity {
    /// True if `v` is active: both varied and useful.
    pub fn is_active(&self, v: ValueId) -> bool {
        self.varied.contains(&v) && self.useful.contains(&v)
    }
}

/// Runs activity analysis.
///
/// Both directions are may-analyses over the CFG, iterated to a fixed
/// point so values flowing through loop-carried block parameters are
/// handled. Booleans participate (a varied comparison makes control
/// flow input-dependent) but are never differentiable themselves.
pub fn analyze(f: &Function) -> Activity {
    Activity {
        varied: varied_set(f),
        useful: useful_set(f),
    }
}

fn varied_set(f: &Function) -> HashSet<ValueId> {
    let mut varied: HashSet<ValueId> = f.params().iter().map(|&(v, _)| v).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for block in &f.blocks {
            for (result, inst) in &block.insts {
                if varied.contains(result) {
                    continue;
                }
                if inst.operands().iter().any(|o| varied.contains(o)) {
                    varied.insert(*result);
                    changed = true;
                }
            }
            // Branch args flow into successor block params.
            let flow = |target: crate::ir::BlockId,
                        args: &[ValueId],
                        varied: &mut HashSet<ValueId>|
             -> bool {
                let mut ch = false;
                for (arg, &(param, _)) in args.iter().zip(&f.block(target).params) {
                    if varied.contains(arg) && varied.insert(param) {
                        ch = true;
                    }
                }
                ch
            };
            match &block.terminator {
                Terminator::Br { target, args } => {
                    changed |= flow(*target, args, &mut varied);
                }
                Terminator::CondBr {
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                    ..
                } => {
                    changed |= flow(*then_target, then_args, &mut varied);
                    changed |= flow(*else_target, else_args, &mut varied);
                }
                Terminator::Ret(_) => {}
            }
        }
    }
    varied
}

fn useful_set(f: &Function) -> HashSet<ValueId> {
    let mut useful: HashSet<ValueId> = HashSet::new();
    // Defining instruction of each value, for backward propagation.
    let mut def: HashMap<ValueId, &Inst> = HashMap::new();
    // Map block param -> the branch args feeding it (from all preds).
    let mut feeds: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
    for block in &f.blocks {
        for (v, inst) in &block.insts {
            def.insert(*v, inst);
        }
        let mut note = |target: crate::ir::BlockId, args: &[ValueId]| {
            for (arg, &(param, _)) in args.iter().zip(&f.block(target).params) {
                feeds.entry(param).or_default().push(*arg);
            }
        };
        match &block.terminator {
            Terminator::Br { target, args } => note(*target, args),
            Terminator::CondBr {
                then_target,
                then_args,
                else_target,
                else_args,
                ..
            } => {
                note(*then_target, then_args);
                note(*else_target, else_args);
            }
            Terminator::Ret(_) => {}
        }
    }

    let mut work: Vec<ValueId> = Vec::new();
    for block in &f.blocks {
        if let Terminator::Ret(vals) = &block.terminator {
            for &v in vals {
                if useful.insert(v) {
                    work.push(v);
                }
            }
        }
    }
    while let Some(v) = work.pop() {
        if let Some(inst) = def.get(&v) {
            for o in inst.operands() {
                if useful.insert(o) {
                    work.push(o);
                }
            }
        }
        if let Some(args) = feeds.get(&v) {
            for &a in args {
                if useful.insert(a) {
                    work.push(a);
                }
            }
        }
    }
    useful
}

/// Returns the f64-typed values of a function (helper for synthesis: only
/// these can carry tangents/adjoints).
pub fn f64_values(f: &Function, module: &crate::ir::Module) -> HashSet<ValueId> {
    f.value_types(module)
        .into_iter()
        .filter(|&(_, ty)| ty == Type::F64)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;

    #[test]
    fn straight_line_activity() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 5.0
              %dead = sin %c
              %y = mul %x, %x
              %unused = add %y, %c
              ret %y
            }
            "#,
        );
        let f = m.func(m.func_id("f").unwrap());
        let a = analyze(f);
        let name = |i: u32| ValueId(i);
        // %0=x %1=c %2=dead %3=y %4=unused
        assert!(a.varied.contains(&name(0)));
        assert!(!a.varied.contains(&name(1)), "constant is not varied");
        assert!(!a.varied.contains(&name(2)));
        assert!(a.varied.contains(&name(3)));
        assert!(a.varied.contains(&name(4)));
        assert!(a.useful.contains(&name(3)));
        assert!(!a.useful.contains(&name(4)), "unused is not useful");
        assert!(a.is_active(name(3)));
        assert!(!a.is_active(name(2)), "constant-fed sin is inactive");
        assert!(!a.is_active(name(4)), "dead add is inactive");
    }

    #[test]
    fn activity_flows_through_block_params() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp gt %x, %zero
              condbr %c, bb1(%x), bb1(%zero)
            bb1(%p: f64):
              %y = mul %p, %p
              ret %y
            }
            "#,
        );
        let f = m.func(m.func_id("f").unwrap());
        let a = analyze(f);
        // %p (the bb1 param) is varied (one feeder is varied) and useful.
        let p = f.blocks[1].params[0].0;
        assert!(a.is_active(p));
        // %zero feeds a useful param, so it is useful (but not varied).
        let zero = f.blocks[0].insts[0].0;
        assert!(a.useful.contains(&zero));
        assert!(!a.varied.contains(&zero));
        assert!(!a.is_active(zero));
    }

    #[test]
    fn loop_carried_activity_reaches_fixpoint() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64, %n: f64) -> f64 {
            bb0(%x: f64, %n: f64):
              %zero = const 0.0
              %one = const 1.0
              br bb1(%zero, %one)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %acc2 = mul %acc, %x
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            "#,
        );
        let f = m.func(m.func_id("f").unwrap());
        let a = analyze(f);
        // %acc starts from const 1.0 but becomes varied through the loop.
        let acc = f.blocks[1].params[1].0;
        assert!(a.is_active(acc), "loop-carried accumulator must be active");
        // %k is varied only via %k+1? No: k starts at const and increments
        // by const, so it is NOT varied; it is useful only through control.
        let k = f.blocks[1].params[0].0;
        assert!(!a.varied.contains(&k), "pure counter is not varied");
    }

    #[test]
    fn constant_return_is_not_varied() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 3.0
              ret %c
            }
            "#,
        );
        let f = m.func(m.func_id("f").unwrap());
        let a = analyze(f);
        let ret_val = f.blocks[0].insts[0].0;
        assert!(a.useful.contains(&ret_val));
        assert!(!a.varied.contains(&ret_val));
    }
}
