//! Symbolic derivative rules: how to *emit IR* computing the partial
//! derivatives of each base operation.
//!
//! The JVP transform ([`crate::ad::jvp`]) is IR-to-IR, so it needs partials
//! expressed as instructions (not as Rust closures). The builtin rules below
//! mirror the `s4tf-core` registry's scalar derivatives; custom IR-level
//! derivatives can be added with [`RuleSet::with_custom_unary`] /
//! [`RuleSet::with_custom_binary`] — the `@derivative(of:)` extension point
//! at the IR level.

use crate::ir::{Block, Function, Inst, ValueId};
use std::collections::HashMap;
use std::rc::Rc;

/// Emits instructions into a block under construction during synthesis.
pub struct Emitter<'f> {
    func: &'f mut Function,
    block: usize,
}

impl<'f> Emitter<'f> {
    /// An emitter appending to `func.blocks[block]`.
    pub fn new(func: &'f mut Function, block: usize) -> Self {
        Emitter { func, block }
    }

    fn block_mut(&mut self) -> &mut Block {
        &mut self.func.blocks[self.block]
    }

    /// Emits an instruction, returning its result value.
    pub fn emit(&mut self, inst: Inst) -> ValueId {
        let v = self.func.fresh_value();
        self.block_mut().insts.push((v, inst));
        v
    }

    /// Emits a constant.
    pub fn constant(&mut self, x: f64) -> ValueId {
        self.emit(Inst::Const(x))
    }

    /// Emits a unary operation.
    pub fn unary(&mut self, op: &str, operand: ValueId) -> ValueId {
        self.emit(Inst::Unary {
            op: op.to_string(),
            operand,
        })
    }

    /// Emits a binary operation.
    pub fn binary(&mut self, op: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Inst::Binary {
            op: op.to_string(),
            lhs,
            rhs,
        })
    }
}

/// Emits IR for `∂op/∂x` at `x` (unary ops).
pub type UnaryPartialEmitter = Rc<dyn Fn(&mut Emitter<'_>, ValueId) -> ValueId>;
/// Emits IR for `(∂op/∂a, ∂op/∂b)` at `(a, b)` (binary ops).
pub type BinaryPartialEmitter =
    Rc<dyn Fn(&mut Emitter<'_>, ValueId, ValueId) -> (ValueId, ValueId)>;

/// The symbolic rule table consulted by derivative synthesis.
#[derive(Clone)]
pub struct RuleSet {
    unary: HashMap<String, UnaryPartialEmitter>,
    binary: HashMap<String, BinaryPartialEmitter>,
}

impl std::fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut u: Vec<&String> = self.unary.keys().collect();
        u.sort();
        write!(
            f,
            "RuleSet(unary: {u:?}, binary: {} ops)",
            self.binary.len()
        )
    }
}

impl Default for RuleSet {
    fn default() -> Self {
        RuleSet::builtin()
    }
}

impl RuleSet {
    /// The builtin rules, matching the `s4tf-core` registry's scalar
    /// derivatives.
    pub fn builtin() -> Self {
        let mut unary: HashMap<String, UnaryPartialEmitter> = HashMap::new();
        let mut binary: HashMap<String, BinaryPartialEmitter> = HashMap::new();

        let mut u = |name: &str, f: fn(&mut Emitter<'_>, ValueId) -> ValueId| {
            unary.insert(name.to_string(), Rc::new(f));
        };
        u("sin", |e, x| e.unary("cos", x));
        u("cos", |e, x| {
            let s = e.unary("sin", x);
            e.unary("neg", s)
        });
        u("exp", |e, x| e.unary("exp", x));
        u("ln", |e, x| e.unary("recip", x));
        u("sqrt", |e, x| {
            let s = e.unary("sqrt", x);
            let half = e.constant(0.5);
            e.binary("div", half, s)
        });
        u("tanh", |e, x| {
            let t = e.unary("tanh", x);
            let t2 = e.unary("square", t);
            let one = e.constant(1.0);
            e.binary("sub", one, t2)
        });
        u("sigmoid", |e, x| {
            let s = e.unary("sigmoid", x);
            let one = e.constant(1.0);
            let om = e.binary("sub", one, s);
            e.binary("mul", s, om)
        });
        u("relu", |e, x| e.unary("step", x));
        u("square", |e, x| {
            let two = e.constant(2.0);
            e.binary("mul", two, x)
        });
        u("neg", |e, _| e.constant(-1.0));
        u("recip", |e, x| {
            let x2 = e.unary("square", x);
            let r = e.unary("recip", x2);
            e.unary("neg", r)
        });
        u("abs", |e, x| e.unary("sign", x));
        u("step", |e, _| e.constant(0.0));
        u("sign", |e, _| e.constant(0.0));

        let mut b =
            |name: &str, f: fn(&mut Emitter<'_>, ValueId, ValueId) -> (ValueId, ValueId)| {
                binary.insert(name.to_string(), Rc::new(f));
            };
        b("add", |e, _, _| {
            let one = e.constant(1.0);
            (one, one)
        });
        b("sub", |e, _, _| {
            let one = e.constant(1.0);
            let neg = e.constant(-1.0);
            (one, neg)
        });
        b("mul", |_, a, bb| (bb, a));
        b("div", |e, a, bb| {
            let da = e.unary("recip", bb);
            let b2 = e.unary("square", bb);
            let q = e.binary("div", a, b2);
            let db = e.unary("neg", q);
            (da, db)
        });
        b("pow", |e, a, bb| {
            // d/da a^b = b·a^(b−1);  d/db a^b = a^b·ln a
            let one = e.constant(1.0);
            let bm1 = e.binary("sub", bb, one);
            let p = e.binary("pow", a, bm1);
            let da = e.binary("mul", bb, p);
            let ab = e.binary("pow", a, bb);
            let la = e.unary("ln", a);
            let db = e.binary("mul", ab, la);
            (da, db)
        });
        b("max", |e, a, bb| {
            // (1,0) when a ≥ b else (0,1) — matches the registry convention.
            let d = e.binary("sub", a, bb);
            let da = e.unary("step", d);
            let one = e.constant(1.0);
            let db = e.binary("sub", one, da);
            (da, db)
        });
        b("min", |e, a, bb| {
            let d = e.binary("sub", bb, a);
            let da = e.unary("step", d);
            let one = e.constant(1.0);
            let db = e.binary("sub", one, da);
            (da, db)
        });

        RuleSet { unary, binary }
    }

    /// Registers a custom unary partial emitter (overrides builtins).
    pub fn with_custom_unary(
        mut self,
        name: &str,
        emitter: impl Fn(&mut Emitter<'_>, ValueId) -> ValueId + 'static,
    ) -> Self {
        self.unary.insert(name.to_string(), Rc::new(emitter));
        self
    }

    /// Registers a custom binary partial emitter (overrides builtins).
    pub fn with_custom_binary(
        mut self,
        name: &str,
        emitter: impl Fn(&mut Emitter<'_>, ValueId, ValueId) -> (ValueId, ValueId) + 'static,
    ) -> Self {
        self.binary.insert(name.to_string(), Rc::new(emitter));
        self
    }

    /// The unary partial emitter for `op`, if any.
    pub fn unary_rule(&self, op: &str) -> Option<UnaryPartialEmitter> {
        self.unary.get(op).cloned()
    }

    /// The binary partial emitter for `op`, if any.
    pub fn binary_rule(&self, op: &str) -> Option<BinaryPartialEmitter> {
        self.binary.get(op).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::Interpreter;
    use crate::ir::{Module, Terminator, Type};

    /// Emits `rule(x)` into a one-block function and evaluates it.
    fn eval_unary_partial(op: &str, x: f64) -> f64 {
        let rules = RuleSet::builtin();
        let rule = rules.unary_rule(op).expect("builtin rule");
        let mut b = FunctionBuilder::new("t", &[Type::F64]);
        let xv = b.param(0);
        b.ret(&[xv]); // placeholder terminator; we overwrite below
        let mut f = b.finish();
        let partial = {
            let mut e = Emitter::new(&mut f, 0);
            rule(&mut e, xv)
        };
        f.blocks[0].terminator = Terminator::Ret(vec![partial]);
        let mut m = Module::new();
        let id = m.add_function(f);
        Interpreter::new().run(&m, id, &[x]).unwrap()[0]
    }

    #[test]
    fn unary_rules_match_registry_derivatives() {
        for op in [
            "sin", "cos", "exp", "ln", "sqrt", "tanh", "sigmoid", "relu", "square", "neg", "recip",
            "abs",
        ] {
            let d = s4tf_core::registry::lookup_unary(op).unwrap();
            for &x in &[0.4f64, 1.1, 2.3] {
                let symbolic = eval_unary_partial(op, x);
                let reference = (d.df)(x);
                assert!(
                    (symbolic - reference).abs() < 1e-12,
                    "{op} at {x}: {symbolic} vs {reference}"
                );
            }
        }
    }

    fn eval_binary_partials(op: &str, a: f64, b: f64) -> (f64, f64) {
        let rules = RuleSet::builtin();
        let rule = rules.binary_rule(op).expect("builtin rule");
        let mut fb = FunctionBuilder::new("t", &[Type::F64, Type::F64]);
        let (av, bv) = (fb.param(0), fb.param(1));
        fb.ret(&[av]);
        let mut f = fb.finish();
        f.result_types = vec![Type::F64, Type::F64];
        let (pa, pb) = {
            let mut e = Emitter::new(&mut f, 0);
            rule(&mut e, av, bv)
        };
        f.blocks[0].terminator = Terminator::Ret(vec![pa, pb]);
        let mut m = Module::new();
        let id = m.add_function(f);
        let out = Interpreter::new().run(&m, id, &[a, b]).unwrap();
        (out[0], out[1])
    }

    #[test]
    fn binary_rules_match_registry_derivatives() {
        for op in ["add", "sub", "mul", "div", "pow", "max", "min"] {
            let d = s4tf_core::registry::lookup_binary(op).unwrap();
            for &(a, b) in &[(0.7f64, 1.3f64), (2.0, 0.5), (1.5, 2.5)] {
                let (sa, sb) = eval_binary_partials(op, a, b);
                let (ra, rb) = (d.df)(a, b);
                assert!((sa - ra).abs() < 1e-12, "{op} ∂a at ({a},{b})");
                assert!((sb - rb).abs() < 1e-12, "{op} ∂b at ({a},{b})");
            }
        }
    }

    #[test]
    fn custom_rule_overrides() {
        let rules = RuleSet::builtin().with_custom_unary("cube", |e, x| {
            let sq = e.unary("square", x);
            let three = e.constant(3.0);
            e.binary("mul", three, sq)
        });
        assert!(rules.unary_rule("cube").is_some());
        assert!(RuleSet::builtin().unary_rule("cube").is_none());
        assert!(format!("{rules:?}").contains("RuleSet"));
    }
}
