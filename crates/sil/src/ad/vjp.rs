//! Reverse-mode derivative synthesis: the VJP transform.
//!
//! `(A) -> B` becomes `(A) -> (B, (B.Tangent) -> A.Tangent)` (paper
//! Figure 3). Control flow is handled with the paper's mechanism:
//! "statically-typed records corresponding to the basic blocks of the
//! control flow graph that store intermediate state used in derivative
//! calculations. These records form a nested data structure of control
//! flow branches between basic blocks that have been taken during the
//! execution of the function."
//!
//! Synthesis (all before any execution, from static analysis only):
//!
//! * per basic block, a **capture list** — exactly the primal values the
//!   block's adjoint computation will need (operands of active
//!   instructions), the fields of the block's statically-typed pullback
//!   record;
//! * per basic block, an **adjoint program** — the block's active
//!   instructions reversed, each compiled to an adjoint operation that
//!   propagates `adj[result]` into its operands through the registered
//!   derivative (`s4tf_core::registry`, the `@derivative(of:)` base cases).
//!
//! Execution:
//!
//! * the **augmented primal** runs forward, pushing one record per
//!   basic-block execution (captures + which successor was taken) — the
//!   nested branch-trace structure;
//! * the **pullback** walks the records in reverse, running each block's
//!   adjoint program; loop iterations pop their own records, so
//!   loop-carried gradients accumulate correctly through block-argument
//!   transfers.

use crate::ad::activity::{analyze, Activity};
use crate::ad::check::check;
use crate::ad::AdError;
use crate::interp::builtin_non_differentiable_unary;
use crate::ir::{BlockId, FuncId, Function, Inst, Module, Terminator, Type, ValueId};
use crate::passes::inline::inline_all;
use s4tf_core::registry;
use std::collections::HashMap;

/// One adjoint operation: propagate the adjoint of `result` into the
/// adjoints of the operands, through the op's registered derivative.
#[derive(Debug, Clone, PartialEq)]
enum AdjointOp {
    /// `adj[operand] += adj[result] · d op/dx (captured x)`
    Unary {
        result: ValueId,
        op: String,
        operand: ValueId,
    },
    /// `adj[lhs] += adj[result]·∂a;  adj[rhs] += adj[result]·∂b`
    Binary {
        result: ValueId,
        op: String,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// `adj[result]` is consumed with no propagation (constants).
    Sink { result: ValueId },
}

/// The statically-determined pullback structure of one basic block.
#[derive(Debug, Clone, Default)]
struct BlockPullback {
    /// Primal values this block's record must capture.
    captures: Vec<ValueId>,
    /// Adjoint program, already in reverse instruction order.
    adjoints: Vec<AdjointOp>,
}

/// Which successor a block execution took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taken {
    /// Fell out of the function.
    Ret,
    /// Unconditional branch.
    Br,
    /// Conditional branch, then-side.
    CondThen,
    /// Conditional branch, else-side.
    CondElse,
}

/// One runtime pullback record: the captured primal values of one
/// basic-block execution plus the branch taken. A [`Trace`] is the linked
/// sequence of these records.
#[derive(Debug, Clone)]
struct Record {
    block: BlockId,
    captures: Vec<f64>,
    taken: Taken,
}

/// The branch trace of one primal execution: the runtime form of the
/// paper's "nested data structure of control flow branches".
#[derive(Debug, Clone)]
pub struct Trace {
    records: Vec<Record>,
    result: f64,
}

impl Trace {
    /// The primal result.
    pub fn value(&self) -> f64 {
        self.result
    }

    /// Number of block-execution records (trace length).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace is empty (never: a run records at least one block).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A synthesized reverse-mode derivative: the augmented primal plus the
/// per-block pullback structures. Self-contained (the call tree was
/// inlined), so it can be executed without the originating module.
#[derive(Debug, Clone)]
pub struct SynthesizedVjp {
    primal: Function,
    pullbacks: Vec<BlockPullback>,
    /// Warnings from differentiability checking (e.g. constant returns).
    pub warnings: Vec<String>,
    fuel: u64,
}

/// Synthesizes the VJP of `func` (paper §2.2): inline → activity analysis →
/// differentiability check → per-block pullback synthesis.
///
/// # Errors
/// Returns [`AdError::NotDifferentiable`] for active non-differentiable
/// operations or recursion.
pub fn differentiate(module: &Module, func: FuncId) -> Result<SynthesizedVjp, AdError> {
    let dumping = crate::diag::dump_enabled();
    if dumping {
        let _ = crate::diag::dump(
            "ad",
            "vjp.input",
            "sil",
            &crate::printer::print_function(module.func(func), module),
        );
    }
    let mut scratch = module.clone();
    inline_all(&mut scratch, func);
    let primal = scratch.func(func).clone();
    if primal
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|(_, i)| matches!(i, Inst::Call { .. })))
    {
        return Err(AdError::NotDifferentiable {
            errors: vec!["recursive call cannot be differentiated".into()],
        });
    }
    assert_eq!(
        primal.result_types,
        vec![Type::F64],
        "reverse mode expects a single f64 result"
    );

    let activity = analyze(&primal);
    let diags = check(&primal, &activity);
    if !diags.is_ok() {
        return Err(AdError::NotDifferentiable {
            errors: diags.errors,
        });
    }

    let pullbacks: Vec<BlockPullback> = primal
        .blocks
        .iter()
        .map(|block| synthesize_block(block, &activity))
        .collect();
    if dumping {
        let _ = crate::diag::dump(
            "ad",
            "vjp.primal",
            "sil",
            &crate::printer::print_function(&primal, &scratch),
        );
        let _ = crate::diag::dump("ad", "vjp.pullbacks", "txt", &format!("{pullbacks:#?}\n"));
    }

    Ok(SynthesizedVjp {
        primal,
        pullbacks,
        warnings: diags.warnings,
        fuel: 10_000_000,
    })
}

fn synthesize_block(block: &crate::ir::Block, activity: &Activity) -> BlockPullback {
    let mut captures = Vec::new();
    let capture = |v: ValueId, captures: &mut Vec<ValueId>| {
        if !captures.contains(&v) {
            captures.push(v);
        }
    };
    let mut adjoints = Vec::new();
    for (result, inst) in block.insts.iter().rev() {
        if !activity.is_active(*result) {
            continue;
        }
        match inst {
            Inst::Const(_) => adjoints.push(AdjointOp::Sink { result: *result }),
            Inst::Unary { op, operand } => {
                capture(*operand, &mut captures);
                adjoints.push(AdjointOp::Unary {
                    result: *result,
                    op: op.clone(),
                    operand: *operand,
                });
            }
            Inst::Binary { op, lhs, rhs } => {
                capture(*lhs, &mut captures);
                capture(*rhs, &mut captures);
                adjoints.push(AdjointOp::Binary {
                    result: *result,
                    op: op.clone(),
                    lhs: *lhs,
                    rhs: *rhs,
                });
            }
            // Cmp results are bool (never active); calls were inlined.
            Inst::Cmp { .. } | Inst::Call { .. } => {}
        }
    }
    BlockPullback { captures, adjoints }
}

impl SynthesizedVjp {
    /// The augmented primal function (for inspection and code-size metrics).
    pub fn primal(&self) -> &Function {
        &self.primal
    }

    /// Runs the augmented primal, returning the value and the branch trace.
    ///
    /// # Errors
    /// Returns [`AdError::Eval`] for unknown ops or fuel exhaustion.
    pub fn value_with_trace(&self, args: &[f64]) -> Result<Trace, AdError> {
        let f = &self.primal;
        if args.len() != f.params().len() {
            return Err(AdError::Eval(crate::interp::EvalError::ArityMismatch {
                func: f.name.clone(),
                expected: f.params().len(),
                actual: args.len(),
            }));
        }
        let mut env: HashMap<ValueId, f64> = HashMap::new();
        let mut bools: HashMap<ValueId, bool> = HashMap::new();
        let mut records = Vec::new();
        let mut block = BlockId(0);
        let mut incoming: Vec<f64> = args.to_vec();
        let mut fuel = self.fuel;
        loop {
            let b = f.block(block);
            for (&(p, ty), v) in b.params.iter().zip(&incoming) {
                debug_assert_eq!(ty, Type::F64, "block params carrying data are f64");
                env.insert(p, *v);
            }
            for (result, inst) in &b.insts {
                if fuel == 0 {
                    return Err(AdError::Eval(crate::interp::EvalError::OutOfFuel));
                }
                fuel -= 1;
                match inst {
                    Inst::Const(x) => {
                        env.insert(*result, *x);
                    }
                    Inst::Unary { op, operand } => {
                        let d = registry::lookup_unary(op)
                            .or_else(|| builtin_non_differentiable_unary(op))
                            .ok_or_else(|| {
                                AdError::Eval(crate::interp::EvalError::UnknownOp(op.clone()))
                            })?;
                        env.insert(*result, (d.f)(env[operand]));
                    }
                    Inst::Binary { op, lhs, rhs } => {
                        let d = registry::lookup_binary(op).ok_or_else(|| {
                            AdError::Eval(crate::interp::EvalError::UnknownOp(op.clone()))
                        })?;
                        env.insert(*result, (d.f)(env[lhs], env[rhs]));
                    }
                    Inst::Cmp { pred, lhs, rhs } => {
                        bools.insert(*result, pred.apply(env[lhs], env[rhs]));
                    }
                    Inst::Call { .. } => unreachable!("calls rejected by differentiate"),
                }
            }
            let captures = self.pullbacks[block.0 as usize]
                .captures
                .iter()
                .map(|v| env[v])
                .collect();
            match &b.terminator {
                Terminator::Ret(vals) => {
                    records.push(Record {
                        block,
                        captures,
                        taken: Taken::Ret,
                    });
                    return Ok(Trace {
                        records,
                        result: env[&vals[0]],
                    });
                }
                Terminator::Br { target, args } => {
                    records.push(Record {
                        block,
                        captures,
                        taken: Taken::Br,
                    });
                    incoming = args.iter().map(|v| env[v]).collect();
                    block = *target;
                }
                Terminator::CondBr {
                    cond,
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                } => {
                    if bools[cond] {
                        records.push(Record {
                            block,
                            captures,
                            taken: Taken::CondThen,
                        });
                        incoming = then_args.iter().map(|v| env[v]).collect();
                        block = *then_target;
                    } else {
                        records.push(Record {
                            block,
                            captures,
                            taken: Taken::CondElse,
                        });
                        incoming = else_args.iter().map(|v| env[v]).collect();
                        block = *else_target;
                    }
                }
            }
        }
    }

    /// Runs the pullback over a recorded trace: maps an output cotangent
    /// (`seed`) to the cotangents of the function parameters.
    ///
    /// The pullback is linear in `seed` (tested), as a VJP must be.
    pub fn pullback(&self, trace: &Trace, seed: f64) -> Vec<f64> {
        let f = &self.primal;
        let mut adj: HashMap<ValueId, f64> = HashMap::new();

        for (ri, record) in trace.records.iter().enumerate().rev() {
            let block = f.block(record.block);
            let pb = &self.pullbacks[record.block.0 as usize];
            let cap: HashMap<ValueId, f64> = pb
                .captures
                .iter()
                .copied()
                .zip(record.captures.iter().copied())
                .collect();

            // 1. Terminator transfer: successor params → branch args.
            match (&block.terminator, record.taken) {
                (Terminator::Ret(vals), Taken::Ret) => {
                    debug_assert_eq!(ri, trace.records.len() - 1);
                    *adj.entry(vals[0]).or_insert(0.0) += seed;
                }
                (Terminator::Br { target, args }, Taken::Br) => {
                    transfer(f, &mut adj, *target, args);
                }
                (
                    Terminator::CondBr {
                        then_target,
                        then_args,
                        ..
                    },
                    Taken::CondThen,
                ) => {
                    transfer(f, &mut adj, *then_target, then_args);
                }
                (
                    Terminator::CondBr {
                        else_target,
                        else_args,
                        ..
                    },
                    Taken::CondElse,
                ) => {
                    transfer(f, &mut adj, *else_target, else_args);
                }
                (t, taken) => unreachable!("record {taken:?} does not match terminator {t:?}"),
            }

            // 2. Reverse adjoint program (already reversed at synthesis).
            for op in &pb.adjoints {
                match op {
                    AdjointOp::Sink { result } => {
                        adj.remove(result);
                    }
                    AdjointOp::Unary {
                        result,
                        op,
                        operand,
                    } => {
                        let a = adj.remove(result).unwrap_or(0.0);
                        if a != 0.0 {
                            let d = registry::lookup_unary(op).expect("checked op");
                            *adj.entry(*operand).or_insert(0.0) += a * (d.df)(cap[operand]);
                        }
                    }
                    AdjointOp::Binary {
                        result,
                        op,
                        lhs,
                        rhs,
                    } => {
                        let a = adj.remove(result).unwrap_or(0.0);
                        if a != 0.0 {
                            let d = registry::lookup_binary(op).expect("checked op");
                            let (pa, pb2) = (d.df)(cap[lhs], cap[rhs]);
                            *adj.entry(*lhs).or_insert(0.0) += a * pa;
                            *adj.entry(*rhs).or_insert(0.0) += a * pb2;
                        }
                    }
                }
            }

            // 3. Non-entry block params were fully consumed by this record's
            //    predecessors-to-come; clear them so earlier executions of
            //    the same block start clean. (Entry params keep accumulating
            //    — they are the gradient.)
            if record.block != BlockId(0) {
                // Params are consumed by the *preceding* record's transfer,
                // which runs after this; do not clear here. Clearing happens
                // in `transfer` (it removes the successor's param adjoints).
            }
        }

        f.params()
            .iter()
            .map(|&(p, _)| adj.get(&p).copied().unwrap_or(0.0))
            .collect()
    }

    /// Value and gradient at `args` with output cotangent `seed`.
    ///
    /// # Errors
    /// Propagates evaluation errors from the forward pass.
    pub fn value_with_gradient(&self, args: &[f64], seed: f64) -> Result<(f64, Vec<f64>), AdError> {
        let trace = self.value_with_trace(args)?;
        let grad = self.pullback(&trace, seed);
        Ok((trace.value(), grad))
    }
}

/// Moves the adjoints of `target`'s block params onto the branch args that
/// fed them, clearing the param adjoints (they belong to the successor's
/// completed execution).
fn transfer(f: &Function, adj: &mut HashMap<ValueId, f64>, target: BlockId, args: &[ValueId]) {
    let params = &f.block(target).params;
    for (arg, &(param, _)) in args.iter().zip(params) {
        if let Some(a) = adj.remove(&param) {
            *adj.entry(*arg).or_insert(0.0) += a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::gradient;
    use crate::interp::Interpreter;
    use crate::parser::parse_module_unwrap;

    fn fd_grad(m: &Module, f: FuncId, x: &[f64]) -> Vec<f64> {
        let eps = 1e-6;
        let mut g = vec![0.0; x.len()];
        let mut i = Interpreter::new();
        for k in 0..x.len() {
            let mut xp = x.to_vec();
            xp[k] += eps;
            let mut xm = x.to_vec();
            xm[k] -= eps;
            g[k] = (i.run(m, f, &xp).unwrap()[0] - i.run(m, f, &xm).unwrap()[0]) / (2.0 * eps);
        }
        g
    }

    fn assert_grad_matches(src: &str, points: &[&[f64]]) {
        let m = parse_module_unwrap(src);
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        for &x in points {
            let (v, g) = d.value_with_gradient(x, 1.0).unwrap();
            let expected_v = Interpreter::new().run(&m, f, x).unwrap()[0];
            assert!((v - expected_v).abs() < 1e-12, "primal value at {x:?}");
            let numeric = fd_grad(&m, f, x);
            for (a, b) in g.iter().zip(&numeric) {
                assert!((a - b).abs() < 1e-4, "at {x:?}: ad {g:?} vs fd {numeric:?}");
            }
        }
    }

    #[test]
    fn straight_line_gradient() {
        assert_grad_matches(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = mul %x, %x
              %z = sin %y
              ret %z
            }
            "#,
            &[&[0.7], &[2.0], &[-1.3]],
        );
    }

    #[test]
    fn multivariate_gradient() {
        assert_grad_matches(
            r#"
            func @f(%x: f64, %y: f64) -> f64 {
            bb0(%x: f64, %y: f64):
              %p = mul %x, %y
              %s = sin %x
              %q = add %p, %s
              %e = exp %q
              ret %e
            }
            "#,
            &[&[0.5, 0.8], &[1.0, -0.5]],
        );
    }

    #[test]
    fn fan_out_accumulates() {
        // f(x) = x·x + x: gradient 2x + 1 requires adjoint accumulation.
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = mul %x, %x
              %z = add %y, %x
              ret %z
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let g = gradient(&m, f, &[3.0]).unwrap();
        assert!((g[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_through_branches() {
        assert_grad_matches(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp gt %x, %zero
              condbr %c, bb1(), bb2()
            bb1():
              %a = mul %x, %x
              br bb3(%a)
            bb2():
              %k = const 3.0
              %b = mul %x, %k
              br bb3(%b)
            bb3(%r: f64):
              %s = sin %r
              ret %s
            }
            "#,
            &[&[2.0], &[-1.5]],
        );
    }

    #[test]
    fn gradient_through_loops() {
        // f(x, n) = x^n by repeated multiplication.
        let src = r#"
            func @f(%x: f64, %n: f64) -> f64 {
            bb0(%x: f64, %n: f64):
              %zero = const 0.0
              %one = const 1.0
              br bb1(%zero, %one)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %acc2 = mul %acc, %x
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            "#;
        let m = parse_module_unwrap(src);
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        for n in [0usize, 1, 2, 5, 10] {
            let (v, g) = d.value_with_gradient(&[1.1, n as f64], 1.0).unwrap();
            assert!((v - 1.1f64.powi(n as i32)).abs() < 1e-12);
            let expected = n as f64 * 1.1f64.powi(n as i32 - 1);
            assert!(
                (g[0] - expected).abs() < 1e-9,
                "n={n}: {} vs {expected}",
                g[0]
            );
            assert_eq!(g[1], 0.0, "loop bound is not differentiable data");
        }
    }

    #[test]
    fn trace_length_reflects_control_flow() {
        let src = r#"
            func @f(%x: f64, %n: f64) -> f64 {
            bb0(%x: f64, %n: f64):
              %zero = const 0.0
              %one = const 1.0
              br bb1(%zero, %one)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %acc2 = mul %acc, %x
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            "#;
        let m = parse_module_unwrap(src);
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        let t3 = d.value_with_trace(&[2.0, 3.0]).unwrap();
        let t5 = d.value_with_trace(&[2.0, 5.0]).unwrap();
        assert!(!t3.is_empty());
        // Each extra iteration adds two records (header + body).
        assert_eq!(t5.len() - t3.len(), 4);
    }

    #[test]
    fn pullback_is_linear_in_seed() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = tanh %x
              %z = mul %y, %x
              ret %z
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        let trace = d.value_with_trace(&[0.8]).unwrap();
        let g1 = d.pullback(&trace, 1.0);
        let g2 = d.pullback(&trace, 2.5);
        assert!((g2[0] - 2.5 * g1[0]).abs() < 1e-12);
        // Reusing the trace for several seeds must not corrupt it.
        let g1_again = d.pullback(&trace, 1.0);
        assert_eq!(g1, g1_again);
    }

    #[test]
    fn gradient_through_calls() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @square(%x)
              %z = call @square(%y)
              ret %z
            }
            func @square(%a: f64) -> f64 {
            bb0(%a: f64):
              %r = mul %a, %a
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        // f(x) = x⁴, f'(2) = 32.
        let g = gradient(&m, f, &[2.0]).unwrap();
        assert!((g[0] - 32.0).abs() < 1e-12);
    }

    #[test]
    fn relu_and_abs_kinks() {
        assert_grad_matches(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %r = relu %x
              %a = abs %x
              %s = add %r, %a
              ret %s
            }
            "#,
            &[&[1.5], &[-1.5]],
        );
    }

    #[test]
    fn capture_lists_are_minimal() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 10.0
              %dead = mul %c, %c
              %y = sin %x
              ret %y
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        // Only %x (operand of the active sin) is captured — the inactive
        // mul contributes nothing to the record.
        assert_eq!(d.pullbacks[0].captures.len(), 1);
        assert_eq!(d.pullbacks[0].adjoints.len(), 1);
    }

    #[test]
    fn constant_return_warns_and_gives_zero_gradient() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 42.0
              ret %c
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        assert_eq!(d.warnings.len(), 1);
        let (v, g) = d.value_with_gradient(&[7.0], 1.0).unwrap();
        assert_eq!(v, 42.0);
        assert_eq!(g, vec![0.0]);
    }

    #[test]
    fn non_differentiable_rejected() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = round %x
              ret %y
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        assert!(matches!(
            differentiate(&m, f),
            Err(AdError::NotDifferentiable { .. })
        ));
    }

    #[test]
    fn nested_loops() {
        // f(x) = sum_{i<2} sum_{j<3} x·x = 6x²; f'(x) = 12x.
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %one = const 1.0
              %two = const 2.0
              %three = const 3.0
              br bb1(%zero, %zero)
            bb1(%i: f64, %acc: f64):
              %ci = cmp lt %i, %two
              condbr %ci, bb2(%zero, %acc), bb5()
            bb2(%j: f64, %acc2: f64):
              %cj = cmp lt %j, %three
              condbr %cj, bb3(), bb4()
            bb3():
              %xx = mul %x, %x
              %acc3 = add %acc2, %xx
              %jn = add %j, %one
              br bb2(%jn, %acc3)
            bb4():
              %in = add %i, %one
              br bb1(%in, %acc2)
            bb5():
              ret %acc
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let d = differentiate(&m, f).unwrap();
        let (v, g) = d.value_with_gradient(&[1.5], 1.0).unwrap();
        assert!((v - 6.0 * 2.25).abs() < 1e-12);
        assert!((g[0] - 18.0).abs() < 1e-12);
    }
}
