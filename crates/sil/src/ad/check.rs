//! Differentiability checking (paper §2.2, step 2): "detects
//! non-differentiable instructions and emits errors and warnings (e.g. a
//! differentiable function whose return value does not depend on
//! differentiable arguments) that help users catch errors before
//! execution."

use crate::ad::activity::Activity;
use crate::interp::is_non_differentiable_unary;
use crate::ir::{Function, Inst, Terminator};
use s4tf_core::registry;

/// Diagnostics produced by differentiability checking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// Hard errors: differentiation must be rejected.
    pub errors: Vec<String>,
    /// Warnings: differentiation proceeds, but the user likely erred.
    pub warnings: Vec<String>,
}

impl Diagnostics {
    /// True if no errors were found (warnings allowed).
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Checks that `f` can be differentiated, given its activity analysis.
///
/// Errors:
/// * an *active* instruction whose operation has no registered derivative
///   (unknown ops, and the piecewise-constant-free builtins `floor`,
///   `ceil`, `round`, `trunc`);
/// * an active `call` (the pipeline inlines calls before synthesis; a
///   remaining active call means a recursive function, which this
///   implementation does not differentiate).
///
/// Warnings:
/// * the returned value is not varied — the function's output does not
///   depend on its differentiable arguments, so every gradient is zero.
pub fn check(f: &Function, activity: &Activity) -> Diagnostics {
    let mut d = Diagnostics::default();

    for (bi, block) in f.blocks.iter().enumerate() {
        for (result, inst) in &block.insts {
            if !activity.is_active(*result) {
                continue; // inactive instructions need no derivative
            }
            match inst {
                Inst::Unary { op, .. } => {
                    if is_non_differentiable_unary(op) {
                        d.errors.push(format!(
                            "bb{bi}: active use of non-differentiable operation '{op}'"
                        ));
                    } else if registry::lookup_unary(op).is_none() {
                        d.errors.push(format!(
                            "bb{bi}: no registered derivative for operation '{op}'"
                        ));
                    }
                }
                Inst::Binary { op, .. } => {
                    if registry::lookup_binary(op).is_none() {
                        d.errors.push(format!(
                            "bb{bi}: no registered derivative for operation '{op}'"
                        ));
                    }
                }
                Inst::Call { .. } => {
                    d.errors.push(format!(
                        "bb{bi}: active call survived inlining (recursive functions \
                         cannot be differentiated by this implementation)"
                    ));
                }
                Inst::Const(_) | Inst::Cmp { .. } => {}
            }
        }
        if let Terminator::Ret(vals) = &block.terminator {
            if !vals.iter().any(|v| activity.varied.contains(v)) {
                d.warnings.push(format!(
                    "bb{bi}: return value does not depend on differentiable arguments; \
                     the gradient is zero everywhere"
                ));
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::activity::analyze;
    use crate::parser::parse_module_unwrap;

    fn diag(src: &str) -> Diagnostics {
        let m = parse_module_unwrap(src);
        let f = m.func(m.func_id("f").unwrap());
        check(f, &analyze(f))
    }

    #[test]
    fn clean_function_passes() {
        let d = diag(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = sin %x
              ret %y
            }
            "#,
        );
        assert!(d.is_ok());
        assert!(d.warnings.is_empty());
    }

    #[test]
    fn active_floor_is_an_error() {
        let d = diag(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = floor %x
              ret %y
            }
            "#,
        );
        assert!(!d.is_ok());
        assert!(d.errors[0].contains("non-differentiable operation 'floor'"));
    }

    #[test]
    fn inactive_floor_is_fine() {
        // floor applied to a constant is inactive: no error.
        let d = diag(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 2.7
              %fl = floor %c
              %y = mul %x, %fl
              ret %y
            }
            "#,
        );
        assert!(d.is_ok(), "{:?}", d.errors);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let d = diag(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = mystery_op %x
              ret %y
            }
            "#,
        );
        assert!(!d.is_ok());
        assert!(d.errors[0].contains("no registered derivative"));
    }

    #[test]
    fn constant_return_warns() {
        let d = diag(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 1.0
              ret %c
            }
            "#,
        );
        assert!(d.is_ok());
        assert_eq!(d.warnings.len(), 1);
        assert!(d.warnings[0].contains("does not depend"));
    }
}
