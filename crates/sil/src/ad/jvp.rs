//! Forward-mode derivative synthesis: the JVP transform.
//!
//! `(A) -> B` becomes `(A, A.Tangent) -> (B, B.Tangent)` (paper Figure 3):
//! the synthesized function takes the original parameters plus one tangent
//! per `f64` parameter, and returns the original results plus their
//! tangents. Tangents flow *forwards* along the original control-flow
//! graph, so the transform is purely structural: each block gets tangent
//! parameters, each active instruction gets tangent-computation code
//! emitted from the symbolic [`RuleSet`].
//!
//! The output is ordinary IR — run [`crate::passes::optimize`] over it and
//! the zero-tangent chains of inactive code fold away (tested), which is
//! the paper's "fully amenable to the same set of compile-time
//! optimizations" claim in action.

use crate::ad::activity::analyze;
use crate::ad::check::check;
use crate::ad::rules::{Emitter, RuleSet};
use crate::ad::AdError;
use crate::interp::Interpreter;
use crate::ir::{Block, FuncId, Function, Inst, Module, Terminator, Type, ValueId};
use crate::passes::inline::inline_all;
use std::collections::HashMap;

/// Synthesizes the JVP of `func`, adds it to the module and returns its id.
///
/// The new function is named `<orig>_jvp`, takes `params ++ tangent-params`
/// and returns `results ++ tangent-results`.
///
/// # Errors
/// Returns [`AdError::NotDifferentiable`] when differentiability checking
/// fails (active non-differentiable or unregistered operations, recursion).
pub fn transform(module: &mut Module, func: FuncId, rules: &RuleSet) -> Result<FuncId, AdError> {
    if crate::diag::dump_enabled() {
        let _ = crate::diag::dump(
            "ad",
            "jvp.input",
            "sil",
            &crate::printer::print_function(module.func(func), module),
        );
    }
    // 0. Copy and inline the call tree ("recursively transform callees").
    let mut work = module.func(func).clone();
    work.name = format!("{}_jvp_work", work.name);
    let work_id = module.add_function(work);
    inline_all(module, work_id);

    let orig = module.func(work_id).clone();
    // Any call surviving inlining is recursive.
    let has_calls = orig
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|(_, i)| matches!(i, Inst::Call { .. })));
    if has_calls {
        module.functions.pop(); // drop the work copy
        return Err(AdError::NotDifferentiable {
            errors: vec!["recursive call cannot be differentiated".into()],
        });
    }

    // 1–2. Activity analysis + differentiability checking.
    let activity = analyze(&orig);
    let diags = check(&orig, &activity);
    if !diags.is_ok() {
        module.functions.pop();
        return Err(AdError::NotDifferentiable {
            errors: diags.errors,
        });
    }

    // 3. Derivative synthesis.
    let mut out = Function {
        name: format!("{}_jvp", module.func(func).name),
        blocks: Vec::new(),
        result_types: {
            let mut t = orig.result_types.clone();
            t.extend(orig.result_types.iter().filter(|&&ty| ty == Type::F64));
            t
        },
        next_value: 0,
    };

    // Primal and tangent value maps (old id → new id).
    let mut pmap: HashMap<ValueId, ValueId> = HashMap::new();
    let mut tmap: HashMap<ValueId, ValueId> = HashMap::new();

    // Create all blocks with primal + tangent parameters first.
    for old_block in &orig.blocks {
        let mut params = Vec::new();
        for &(v, ty) in &old_block.params {
            let nv = out.fresh_value();
            pmap.insert(v, nv);
            params.push((nv, ty));
        }
        for &(v, ty) in &old_block.params {
            if ty == Type::F64 {
                let tv = out.fresh_value();
                tmap.insert(v, tv);
                params.push((tv, Type::F64));
            }
        }
        out.blocks.push(Block {
            params,
            insts: Vec::new(),
            terminator: Terminator::Ret(vec![]),
        });
    }

    for (bi, old_block) in orig.blocks.iter().enumerate() {
        for (result, inst) in &old_block.insts {
            let mut e = Emitter::new(&mut out, bi);
            match inst {
                Inst::Const(c) => {
                    let p = e.emit(Inst::Const(*c));
                    let t = e.constant(0.0);
                    pmap.insert(*result, p);
                    tmap.insert(*result, t);
                }
                Inst::Cmp { pred, lhs, rhs } => {
                    let p = e.emit(Inst::Cmp {
                        pred: *pred,
                        lhs: pmap[lhs],
                        rhs: pmap[rhs],
                    });
                    pmap.insert(*result, p);
                }
                Inst::Unary { op, operand } => {
                    let x = pmap[operand];
                    let p = e.unary(op, x);
                    let t = if activity.is_active(*result) {
                        let rule = rules
                            .unary_rule(op)
                            .unwrap_or_else(|| panic!("checked op '{op}' has no symbolic rule"));
                        let partial = rule(&mut e, x);
                        let dx = tmap[operand];
                        e.binary("mul", partial, dx)
                    } else {
                        e.constant(0.0)
                    };
                    pmap.insert(*result, p);
                    tmap.insert(*result, t);
                }
                Inst::Binary { op, lhs, rhs } => {
                    let (a, b) = (pmap[lhs], pmap[rhs]);
                    let p = e.binary(op, a, b);
                    let t = if activity.is_active(*result) {
                        let rule = rules
                            .binary_rule(op)
                            .unwrap_or_else(|| panic!("checked op '{op}' has no symbolic rule"));
                        let (pa, pb) = rule(&mut e, a, b);
                        let (da, db) = (tmap[lhs], tmap[rhs]);
                        let ta = e.binary("mul", pa, da);
                        let tb = e.binary("mul", pb, db);
                        e.binary("add", ta, tb)
                    } else {
                        e.constant(0.0)
                    };
                    pmap.insert(*result, p);
                    tmap.insert(*result, t);
                }
                Inst::Call { .. } => unreachable!("calls rejected above"),
            }
        }
        // Terminator: append tangent args after primal args.
        let types = orig.value_types(module);
        let widen = |args: &[ValueId]| -> Vec<ValueId> {
            let mut v: Vec<ValueId> = args.iter().map(|a| pmap[a]).collect();
            v.extend(
                args.iter()
                    .filter(|a| types[a] == Type::F64)
                    .map(|a| tmap[a]),
            );
            v
        };
        out.blocks[bi].terminator = match &old_block.terminator {
            Terminator::Br { target, args } => Terminator::Br {
                target: *target,
                args: widen(args),
            },
            Terminator::CondBr {
                cond,
                then_target,
                then_args,
                else_target,
                else_args,
            } => Terminator::CondBr {
                cond: pmap[cond],
                then_target: *then_target,
                then_args: widen(then_args),
                else_target: *else_target,
                else_args: widen(else_args),
            },
            Terminator::Ret(vals) => Terminator::Ret(widen(vals)),
        };
    }

    // Drop the inlined work copy, keep the jvp.
    module.functions.pop();
    if crate::diag::dump_enabled() {
        let _ = crate::diag::dump(
            "ad",
            "jvp.output",
            "sil",
            &crate::printer::print_function(&out, module),
        );
    }
    Ok(module.add_function(out))
}

/// One-shot forward-mode directional derivative:
/// `(f(x), df(x)[dx])` for a single-result `func`.
///
/// Synthesizes the JVP (into a scratch clone of the module) and evaluates
/// it. For repeated use, call [`transform`] once and interpret the result.
///
/// # Errors
/// Propagates synthesis and evaluation errors.
pub fn value_and_derivative(
    module: &Module,
    func: FuncId,
    x: &[f64],
    dx: &[f64],
) -> Result<(f64, f64), AdError> {
    assert_eq!(x.len(), dx.len(), "one tangent per argument");
    let mut scratch = module.clone();
    let jvp = transform(&mut scratch, func, &RuleSet::builtin())?;
    let mut args = x.to_vec();
    args.extend_from_slice(dx);
    let out = Interpreter::new().run(&scratch, jvp, &args)?;
    assert_eq!(out.len(), 2, "single-result function expected");
    Ok((out[0], out[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;
    use crate::passes::optimize;
    use crate::verify::verify_module;

    fn fd(module: &Module, f: FuncId, x: &[f64], dx: &[f64]) -> f64 {
        let eps = 1e-6;
        let xp: Vec<f64> = x.iter().zip(dx).map(|(a, d)| a + eps * d).collect();
        let xm: Vec<f64> = x.iter().zip(dx).map(|(a, d)| a - eps * d).collect();
        let mut i = Interpreter::new();
        (i.run(module, f, &xp).unwrap()[0] - i.run(module, f, &xm).unwrap()[0]) / (2.0 * eps)
    }

    #[test]
    fn straight_line_jvp() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = mul %x, %x
              %z = sin %y
              ret %z
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let (v, d) = value_and_derivative(&m, f, &[0.7], &[1.0]).unwrap();
        assert!((v - (0.49f64).sin()).abs() < 1e-15);
        assert!((d - (0.49f64.cos() * 1.4)).abs() < 1e-12);
    }

    #[test]
    fn jvp_is_linear_in_tangent() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64, %y: f64) -> f64 {
            bb0(%x: f64, %y: f64):
              %p = mul %x, %y
              %e = exp %p
              ret %e
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let (_, d10) = value_and_derivative(&m, f, &[0.5, 0.8], &[1.0, 0.0]).unwrap();
        let (_, d01) = value_and_derivative(&m, f, &[0.5, 0.8], &[0.0, 1.0]).unwrap();
        let (_, d23) = value_and_derivative(&m, f, &[0.5, 0.8], &[2.0, 3.0]).unwrap();
        assert!((d23 - (2.0 * d10 + 3.0 * d01)).abs() < 1e-12);
    }

    #[test]
    fn jvp_through_control_flow() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp gt %x, %zero
              condbr %c, bb1(), bb2()
            bb1():
              %a = mul %x, %x
              br bb3(%a)
            bb2():
              %b3 = const 3.0
              %b = mul %x, %b3
              br bb3(%b)
            bb3(%r: f64):
              %s = sin %r
              ret %s
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        // x > 0: d/dx sin(x²) = cos(x²)·2x
        let (_, d) = value_and_derivative(&m, f, &[2.0], &[1.0]).unwrap();
        assert!((d - 4.0f64.cos() * 4.0).abs() < 1e-12);
        // x < 0: d/dx sin(3x) = 3cos(3x)
        let (_, d) = value_and_derivative(&m, f, &[-1.0], &[1.0]).unwrap();
        assert!((d - 3.0 * (-3.0f64).cos()).abs() < 1e-12);
    }

    #[test]
    fn jvp_through_loops() {
        // f(x) = x^n by repeated multiplication; f'(x) = n·x^(n-1).
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64, %n: f64) -> f64 {
            bb0(%x: f64, %n: f64):
              %zero = const 0.0
              %one = const 1.0
              br bb1(%zero, %one)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %acc2 = mul %acc, %x
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let (v, d) = value_and_derivative(&m, f, &[1.3, 5.0], &[1.0, 0.0]).unwrap();
        assert!((v - 1.3f64.powi(5)).abs() < 1e-12);
        assert!((d - 5.0 * 1.3f64.powi(4)).abs() < 1e-10);
    }

    #[test]
    fn jvp_through_calls_via_inlining() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @g(%x)
              %z = call @g(%y)
              ret %z
            }
            func @g(%a: f64) -> f64 {
            bb0(%a: f64):
              %r = mul %a, %a
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        // f(x) = x⁴ → f'(2) = 32
        let (v, d) = value_and_derivative(&m, f, &[2.0], &[1.0]).unwrap();
        assert_eq!(v, 16.0);
        assert!((d - 32.0).abs() < 1e-12);
    }

    #[test]
    fn jvp_matches_finite_differences_on_many_functions() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64, %y: f64) -> f64 {
            bb0(%x: f64, %y: f64):
              %s = sin %x
              %t = tanh %y
              %q = mul %s, %t
              %two = const 2.0
              %p = pow %x, %two
              %r = add %q, %p
              %d = div %r, %y
              %sg = sigmoid %d
              ret %sg
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        for &(x, y) in &[(0.4, 1.2), (1.1, 0.7), (2.0, 2.0)] {
            for &dir in &[[1.0, 0.0], [0.0, 1.0], [0.6, -0.8]] {
                let (_, d) = value_and_derivative(&m, f, &[x, y], &dir).unwrap();
                let numeric = fd(&m, f, &[x, y], &dir);
                assert!(
                    (d - numeric).abs() < 1e-5,
                    "at ({x},{y}) dir {dir:?}: {d} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn synthesized_jvp_verifies_and_optimizes() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %c = const 4.0
              %u = mul %c, %c
              %y = mul %x, %u
              %z = exp %y
              ret %z
            }
            "#,
        );
        let mut m2 = m.clone();
        let f = m2.func_id("f").unwrap();
        let jvp = transform(&mut m2, f, &RuleSet::builtin()).unwrap();
        verify_module(&m2).unwrap();
        let before = m2.func(jvp).inst_count();
        // The paper's claim: AD output is ordinary IR, so the standard
        // pipeline optimizes it (inactive-code tangents fold to zero).
        optimize(&mut m2, jvp);
        verify_module(&m2).unwrap();
        let after = m2.func(jvp).inst_count();
        assert!(
            after < before,
            "optimizer must shrink the JVP ({before} → {after})"
        );
        let out = Interpreter::new().run(&m2, jvp, &[0.5, 1.0]).unwrap();
        assert!((out[1] - 16.0 * 8.0f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn custom_rule_used_by_synthesis() {
        // Register semantics for 'cube' and a custom symbolic rule.
        s4tf_core::registry::register_unary(
            "cube",
            s4tf_core::registry::UnaryDerivative {
                f: |x| x * x * x,
                df: |x| 3.0 * x * x,
            },
        );
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = cube %x
              ret %y
            }
            "#,
        );
        let mut m2 = m.clone();
        let f = m2.func_id("f").unwrap();
        let rules = RuleSet::builtin().with_custom_unary("cube", |e, x| {
            let sq = e.unary("square", x);
            let three = e.constant(3.0);
            e.binary("mul", three, sq)
        });
        let jvp = transform(&mut m2, f, &rules).unwrap();
        let out = Interpreter::new().run(&m2, jvp, &[2.0, 1.0]).unwrap();
        assert_eq!(out, vec![8.0, 12.0]);
    }

    #[test]
    fn non_differentiable_rejected() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = floor %x
              ret %y
            }
            "#,
        );
        let mut m2 = m.clone();
        let f = m2.func_id("f").unwrap();
        let n_before = m2.functions.len();
        let err = transform(&mut m2, f, &RuleSet::builtin()).unwrap_err();
        assert!(matches!(err, AdError::NotDifferentiable { .. }));
        assert_eq!(m2.functions.len(), n_before, "no work function leaked");
    }

    #[test]
    fn recursion_rejected() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %one = const 1.0
              %c = cmp lt %x, %one
              condbr %c, bb1(), bb2()
            bb1():
              ret %x
            bb2():
              %d = sub %x, %one
              %y = call @f(%d)
              %r = mul %y, %x
              ret %r
            }
            "#,
        );
        let mut m2 = m.clone();
        let f = m2.func_id("f").unwrap();
        let err = transform(&mut m2, f, &RuleSet::builtin()).unwrap_err();
        let AdError::NotDifferentiable { errors } = err else {
            panic!("expected NotDifferentiable");
        };
        assert!(errors[0].contains("recursive"));
    }
}
