//! Algebraic simplification: strength-reducing identities on `add`, `sub`,
//! `mul`, `div` with constant 0/1 operands.

use super::Pass;
use crate::ir::{FuncId, Inst, Module, ValueId};
use std::collections::HashMap;

/// The algebraic-simplification pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlgebraicSimplify;

impl Pass for AlgebraicSimplify {
    fn name(&self) -> &'static str {
        "simplify"
    }

    fn run(&self, module: &mut Module, func: FuncId) -> bool {
        let mut changed = false;
        let f = module.func_mut(func);
        let mut consts: HashMap<ValueId, f64> = HashMap::new();
        for block in &f.blocks {
            for (v, inst) in &block.insts {
                if let Inst::Const(x) = inst {
                    consts.insert(*v, *x);
                }
            }
        }
        // Value-level replacements discovered (x*1 → x, …).
        let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
        for block in &mut f.blocks {
            for (result, inst) in &mut block.insts {
                inst.map_operands(|v| *replace.get(&v).unwrap_or(&v));
                let Inst::Binary { op, lhs, rhs } = inst else {
                    continue;
                };
                let lc = consts.get(lhs).copied();
                let rc = consts.get(rhs).copied();
                let rewrite: Option<Rewrite> = match op.as_str() {
                    "add" => match (lc, rc) {
                        (Some(0.0), _) => Some(Rewrite::Alias(*rhs)),
                        (_, Some(0.0)) => Some(Rewrite::Alias(*lhs)),
                        _ => None,
                    },
                    "sub" => match rc {
                        Some(0.0) => Some(Rewrite::Alias(*lhs)),
                        _ => None,
                    },
                    "mul" => match (lc, rc) {
                        (Some(1.0), _) => Some(Rewrite::Alias(*rhs)),
                        (_, Some(1.0)) => Some(Rewrite::Alias(*lhs)),
                        (Some(0.0), _) | (_, Some(0.0)) => Some(Rewrite::Const(0.0)),
                        _ => None,
                    },
                    "div" => match rc {
                        Some(1.0) => Some(Rewrite::Alias(*lhs)),
                        _ => None,
                    },
                    _ => None,
                };
                match rewrite {
                    Some(Rewrite::Alias(v)) => {
                        replace.insert(*result, v);
                        changed = true;
                    }
                    Some(Rewrite::Const(c)) => {
                        *inst = Inst::Const(c);
                        consts.insert(*result, c);
                        changed = true;
                    }
                    None => {}
                }
            }
            block
                .terminator
                .map_operands(|v| *replace.get(&v).unwrap_or(&v));
        }
        if !replace.is_empty() {
            // A replacement target may itself be replaced later in the same
            // sweep only within a block; run operand rewriting once more to
            // settle cross-block uses.
            for block in &mut f.blocks {
                for (_, inst) in &mut block.insts {
                    inst.map_operands(|v| *replace.get(&v).unwrap_or(&v));
                }
                block
                    .terminator
                    .map_operands(|v| *replace.get(&v).unwrap_or(&v));
            }
        }
        changed
    }
}

enum Rewrite {
    Alias(ValueId),
    Const(f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;
    use crate::passes::dce::Dce;
    use crate::passes::testutil::assert_same_semantics;
    use crate::verify::verify_module;

    fn simplified(src: &str) -> (Module, Module, FuncId) {
        let m = parse_module_unwrap(src);
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        AlgebraicSimplify.run(&mut opt, f);
        Dce.run(&mut opt, f);
        verify_module(&opt).unwrap();
        (m, opt, f)
    }

    #[test]
    fn mul_by_one_and_zero() {
        let (m, opt, f) = simplified(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %one = const 1.0
              %zero = const 0.0
              %a = mul %x, %one
              %b = mul %zero, %x
              %c = add %a, %b
              ret %c
            }
            "#,
        );
        // %a → %x; %b → const 0; %c = add %x, 0 → %x on a second sweep.
        assert!(opt.func(f).inst_count() < m.func(f).inst_count());
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn add_zero_and_sub_zero_and_div_one() {
        let (m, opt, f) = simplified(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %one = const 1.0
              %a = add %zero, %x
              %b = sub %a, %zero
              %c = div %b, %one
              ret %c
            }
            "#,
        );
        // Everything aliases to %x; only the unused consts could remain.
        assert_eq!(opt.func(f).inst_count(), 0);
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn cascading_within_one_sweep() {
        let (m, opt, f) = simplified(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %one = const 1.0
              %a = mul %x, %one
              %b = mul %a, %one
              ret %b
            }
            "#,
        );
        assert_eq!(opt.func(f).inst_count(), 0);
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn leaves_general_code() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %two = const 2.0
              %a = mul %x, %two
              ret %a
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(!AlgebraicSimplify.run(&mut opt, f));
    }
}
