//! Dead-code elimination: removes instructions whose results are never
//! used (every instruction in this IR is pure) and blocks that are
//! unreachable from the entry.

use super::Pass;
use crate::ir::{BlockId, FuncId, Module, ValueId};
use std::collections::{HashMap, HashSet};

/// The dead-code-elimination pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, module: &mut Module, func: FuncId) -> bool {
        let mut changed = remove_unreachable_blocks(module, func);
        changed |= remove_dead_instructions(module, func);
        changed
    }
}

fn remove_dead_instructions(module: &mut Module, func: FuncId) -> bool {
    let f = module.func_mut(func);
    // Liveness: transitively mark operands of terminators and live insts.
    let mut live: HashSet<ValueId> = HashSet::new();
    let mut work: Vec<ValueId> = Vec::new();
    for block in &f.blocks {
        for v in block.terminator.operands() {
            if live.insert(v) {
                work.push(v);
            }
        }
    }
    let defs: HashMap<ValueId, (usize, usize)> = f
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| {
            b.insts
                .iter()
                .enumerate()
                .map(move |(ii, (v, _))| (*v, (bi, ii)))
        })
        .collect();
    while let Some(v) = work.pop() {
        if let Some(&(bi, ii)) = defs.get(&v) {
            for op in f.blocks[bi].insts[ii].1.operands() {
                if live.insert(op) {
                    work.push(op);
                }
            }
        }
    }
    let mut changed = false;
    for block in &mut f.blocks {
        let before = block.insts.len();
        block.insts.retain(|(v, _)| live.contains(v));
        changed |= block.insts.len() != before;
    }
    changed
}

fn remove_unreachable_blocks(module: &mut Module, func: FuncId) -> bool {
    let f = module.func_mut(func);
    let mut reachable: HashSet<BlockId> = HashSet::new();
    let mut work = vec![BlockId(0)];
    while let Some(b) = work.pop() {
        if !reachable.insert(b) {
            continue;
        }
        work.extend(f.block(b).terminator.successors());
    }
    if reachable.len() == f.blocks.len() {
        return false;
    }
    // Rebuild block list, remapping ids.
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let mut new_blocks = Vec::new();
    for id in f.block_ids() {
        if reachable.contains(&id) {
            remap.insert(id, BlockId(new_blocks.len() as u32));
            new_blocks.push(f.block(id).clone());
        }
    }
    for block in &mut new_blocks {
        match &mut block.terminator {
            crate::ir::Terminator::Br { target, .. } => *target = remap[target],
            crate::ir::Terminator::CondBr {
                then_target,
                else_target,
                ..
            } => {
                *then_target = remap[then_target];
                *else_target = remap[else_target];
            }
            crate::ir::Terminator::Ret(_) => {}
        }
    }
    f.blocks = new_blocks;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;
    use crate::passes::testutil::assert_same_semantics;
    use crate::verify::verify_module;

    #[test]
    fn removes_dead_chain() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %dead1 = sin %x
              %dead2 = mul %dead1, %dead1
              %live = add %x, %x
              ret %live
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(Dce.run(&mut opt, f));
        verify_module(&opt).unwrap();
        assert_eq!(opt.func(f).inst_count(), 1);
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn keeps_values_used_by_branches() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %zero = const 0.0
              %c = cmp gt %x, %zero
              condbr %c, bb1(%x), bb1(%zero)
            bb1(%r: f64):
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        let changed = Dce.run(&mut opt, f);
        assert!(!changed);
        assert_eq!(opt, m);
    }

    #[test]
    fn removes_unreachable_blocks() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              br bb2()
            bb1():
              %y = sin %x
              br bb2()
            bb2():
              ret %x
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(Dce.run(&mut opt, f));
        verify_module(&opt).unwrap();
        assert_eq!(opt.func(f).blocks.len(), 2);
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn idempotent() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %dead = sin %x
              ret %x
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(Dce.run(&mut opt, f));
        assert!(!Dce.run(&mut opt, f), "second run must be a no-op");
    }
}
