//! Common-subexpression elimination (per-block, conservative).
//!
//! Two instructions in the same block with identical opcode and operands
//! compute the same value (the IR is pure), so later ones are replaced by
//! the earlier result. Cross-block CSE would need dominance-aware scoping;
//! per-block is sufficient for cleaning up synthesized derivative code,
//! which duplicates primal subexpressions per block.

use super::Pass;
use crate::ir::{FuncId, Inst, Module, ValueId};
use std::collections::HashMap;

/// The common-subexpression-elimination pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

/// Hashable key for a pure instruction (constants keyed by bit pattern).
#[derive(PartialEq, Eq, Hash)]
enum Key {
    Const(u64),
    Unary(String, ValueId),
    Binary(String, ValueId, ValueId),
    Cmp(crate::ir::CmpPred, ValueId, ValueId),
}

fn key_of(inst: &Inst) -> Option<Key> {
    Some(match inst {
        Inst::Const(x) => Key::Const(x.to_bits()),
        Inst::Unary { op, operand } => Key::Unary(op.clone(), *operand),
        Inst::Binary { op, lhs, rhs } => Key::Binary(op.clone(), *lhs, *rhs),
        Inst::Cmp { pred, lhs, rhs } => Key::Cmp(*pred, *lhs, *rhs),
        // Calls are not CSE'd: callees are pure in this IR, but keeping
        // calls distinct preserves call-count observability for the
        // inliner tests and costs little.
        Inst::Call { .. } => return None,
    })
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, module: &mut Module, func: FuncId) -> bool {
        let mut changed = false;
        let f = module.func_mut(func);
        for block in &mut f.blocks {
            let mut seen: HashMap<Key, ValueId> = HashMap::new();
            let mut replace: HashMap<ValueId, ValueId> = HashMap::new();
            for (result, inst) in &mut block.insts {
                // First rewrite operands through earlier replacements.
                inst.map_operands(|v| *replace.get(&v).unwrap_or(&v));
                if let Some(key) = key_of(inst) {
                    match seen.get(&key) {
                        Some(&prior) => {
                            replace.insert(*result, prior);
                            changed = true;
                        }
                        None => {
                            seen.insert(key, *result);
                        }
                    }
                }
            }
            block
                .terminator
                .map_operands(|v| *replace.get(&v).unwrap_or(&v));
            // Duplicates are left in place as dead code; DCE removes them.
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;
    use crate::passes::dce::Dce;
    use crate::passes::testutil::assert_same_semantics;
    use crate::verify::verify_module;

    #[test]
    fn dedups_within_block() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %a = mul %x, %x
              %b = mul %x, %x
              %c = add %a, %b
              ret %c
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(Cse.run(&mut opt, f));
        Dce.run(&mut opt, f);
        verify_module(&opt).unwrap();
        assert_eq!(opt.func(f).inst_count(), 2, "one mul + one add remain");
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn chains_of_duplicates() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %a = sin %x
              %b = sin %x
              %c = mul %a, %a
              %d = mul %b, %b
              %e = add %c, %d
              ret %e
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(Cse.run(&mut opt, f));
        Dce.run(&mut opt, f);
        verify_module(&opt).unwrap();
        // sin, mul, add
        assert_eq!(opt.func(f).inst_count(), 3);
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn does_not_merge_across_blocks() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %a = sin %x
              br bb1()
            bb1():
              %b = sin %x
              %c = add %a, %b
              ret %c
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(!Cse.run(&mut opt, f));
        assert_eq!(opt, m);
    }

    #[test]
    fn constants_with_same_bits_merge() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %a = const 1.5
              %b = const 1.5
              %c = add %a, %b
              %d = add %x, %c
              ret %d
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(Cse.run(&mut opt, f));
        assert_same_semantics(&m, &opt, f, 1);
    }
}
