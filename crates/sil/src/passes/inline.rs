//! Function inlining.
//!
//! Besides the usual optimization payoff, inlining is how this crate's AD
//! implements the paper's "the transformation recursively transforms the
//! callees": [`crate::ad`] inlines calls before differentiating, so the
//! synthesized derivative covers the whole call tree, terminating at
//! operations with registered custom derivatives.

use super::Pass;
use crate::ir::{Block, BlockId, FuncId, Function, Inst, Module, Terminator, ValueId};
use std::collections::HashMap;

/// The inlining pass.
#[derive(Debug, Clone, Copy)]
pub struct Inline {
    /// Callees with more instructions than this are left alone.
    pub max_callee_insts: usize,
}

impl Default for Inline {
    fn default() -> Self {
        Inline {
            max_callee_insts: 512,
        }
    }
}

impl Pass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&self, module: &mut Module, func: FuncId) -> bool {
        // One call site per run; `optimize` iterates to fixpoint.
        let Some(site) = find_call_site(module, func, self.max_callee_insts) else {
            return false;
        };
        inline_site(module, func, site);
        true
    }
}

/// Inlines every (non-recursive, size-bounded) call in `func`, repeatedly,
/// until none remain. Returns the number of calls inlined.
pub fn inline_all(module: &mut Module, func: FuncId) -> usize {
    let pass = Inline::default();
    let mut n = 0;
    while pass.run(module, func) {
        n += 1;
        assert!(n < 10_000, "inlining did not terminate");
    }
    n
}

#[derive(Debug, Clone, Copy)]
struct CallSite {
    block: usize,
    inst: usize,
    callee: FuncId,
}

fn find_call_site(module: &Module, func: FuncId, max_insts: usize) -> Option<CallSite> {
    let f = module.func(func);
    for (bi, block) in f.blocks.iter().enumerate() {
        for (ii, (_, inst)) in block.insts.iter().enumerate() {
            if let Inst::Call { callee, .. } = inst {
                if *callee == func {
                    continue; // direct recursion: not inlinable
                }
                let target = module.func(*callee);
                if target.inst_count() > max_insts {
                    continue;
                }
                if calls_directly(target, *callee) {
                    continue; // self-recursive callee
                }
                return Some(CallSite {
                    block: bi,
                    inst: ii,
                    callee: *callee,
                });
            }
        }
    }
    None
}

fn calls_directly(f: &Function, id: FuncId) -> bool {
    f.blocks.iter().any(|b| {
        b.insts
            .iter()
            .any(|(_, i)| matches!(i, Inst::Call { callee, .. } if *callee == id))
    })
}

fn inline_site(module: &mut Module, func: FuncId, site: CallSite) {
    let callee = module.func(site.callee).clone();
    let f = module.func_mut(func);

    let caller_block = f.blocks[site.block].clone();
    let (result_value, call_inst) = caller_block.insts[site.inst].clone();
    let Inst::Call { args, .. } = call_inst else {
        unreachable!("site points at a call");
    };

    // Fresh value ids for every value the callee defines.
    let mut vmap: HashMap<ValueId, ValueId> = HashMap::new();
    for block in &callee.blocks {
        for v in block.defined_values() {
            vmap.insert(v, f.fresh_value());
        }
    }
    // Callee blocks are appended after the existing blocks; the split-off
    // continuation block goes last.
    let callee_base = f.blocks.len() as u32;
    let cont_id = BlockId(callee_base + callee.blocks.len() as u32);
    let bmap = |b: BlockId| BlockId(callee_base + b.0);

    // Continuation: the instructions after the call, taking the call result
    // as its single block parameter (reusing the original result id keeps
    // all downstream uses valid).
    let cont_block = Block {
        params: vec![(result_value, callee.result_types[0])],
        insts: caller_block.insts[site.inst + 1..].to_vec(),
        terminator: caller_block.terminator.clone(),
    };

    // Rewrite the caller block: stop before the call, branch into the
    // callee's entry with the call arguments.
    let pre = &mut f.blocks[site.block];
    pre.insts.truncate(site.inst);
    pre.terminator = Terminator::Br {
        target: bmap(BlockId(0)),
        args,
    };

    // Splice remapped callee blocks.
    for block in &callee.blocks {
        let params = block.params.iter().map(|&(v, ty)| (vmap[&v], ty)).collect();
        let insts = block
            .insts
            .iter()
            .map(|(v, inst)| {
                let mut inst = inst.clone();
                inst.map_operands(|o| vmap[&o]);
                (vmap[v], inst)
            })
            .collect();
        let terminator = match &block.terminator {
            Terminator::Ret(vals) => {
                debug_assert_eq!(vals.len(), 1, "verified single-result callee");
                Terminator::Br {
                    target: cont_id,
                    args: vec![vmap[&vals[0]]],
                }
            }
            t => {
                let mut t = t.clone();
                t.map_operands(|o| vmap[&o]);
                match &mut t {
                    Terminator::Br { target, .. } => *target = bmap(*target),
                    Terminator::CondBr {
                        then_target,
                        else_target,
                        ..
                    } => {
                        *then_target = bmap(*then_target);
                        *else_target = bmap(*else_target);
                    }
                    Terminator::Ret(_) => unreachable!(),
                }
                t
            }
        };
        f.blocks.push(Block {
            params,
            insts,
            terminator,
        });
    }
    f.blocks.push(cont_block);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::parser::parse_module_unwrap;
    use crate::passes::testutil::assert_same_semantics;
    use crate::verify::verify_module;

    #[test]
    fn inlines_straight_line_callee() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @g(%x)
              %z = mul %y, %y
              ret %z
            }
            func @g(%a: f64) -> f64 {
            bb0(%a: f64):
              %one = const 1.0
              %r = add %a, %one
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert_eq!(inline_all(&mut opt, f), 1);
        verify_module(&opt).unwrap();
        assert!(!opt
            .func(f)
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|(_, i)| matches!(i, Inst::Call { .. }))));
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn inlines_callee_with_control_flow() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @abs(%x)
              %z = call @abs(%y)
              ret %z
            }
            func @abs(%a: f64) -> f64 {
            bb0(%a: f64):
              %zero = const 0.0
              %c = cmp lt %a, %zero
              condbr %c, bb1(), bb2(%a)
            bb1():
              %n = neg %a
              br bb2(%n)
            bb2(%r: f64):
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert_eq!(inline_all(&mut opt, f), 2);
        verify_module(&opt).unwrap();
        let mut i = Interpreter::new();
        assert_eq!(i.run(&opt, f, &[-7.0]).unwrap(), vec![7.0]);
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn inlines_nested_calls_to_fixpoint() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = call @g(%x)
              ret %y
            }
            func @g(%a: f64) -> f64 {
            bb0(%a: f64):
              %b = call @h(%a)
              ret %b
            }
            func @h(%a: f64) -> f64 {
            bb0(%a: f64):
              %r = sin %a
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert_eq!(inline_all(&mut opt, f), 2);
        verify_module(&opt).unwrap();
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn recursion_is_not_inlined() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %one = const 1.0
              %c = cmp lt %x, %one
              condbr %c, bb1(), bb2()
            bb1():
              ret %x
            bb2():
              %d = sub %x, %one
              %y = call @f(%d)
              ret %y
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert_eq!(inline_all(&mut opt, f), 0);
        assert_eq!(opt, m);
    }

    #[test]
    fn call_inside_loop_body() {
        let m = parse_module_unwrap(
            r#"
            func @f(%n: f64) -> f64 {
            bb0(%n: f64):
              %zero = const 0.0
              br bb1(%zero, %zero)
            bb1(%k: f64, %acc: f64):
              %c = cmp lt %k, %n
              condbr %c, bb2(), bb3()
            bb2():
              %t = call @g(%k)
              %acc2 = add %acc, %t
              %one = const 1.0
              %kn = add %k, %one
              br bb1(%kn, %acc2)
            bb3():
              ret %acc
            }
            func @g(%a: f64) -> f64 {
            bb0(%a: f64):
              %r = mul %a, %a
              ret %r
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert_eq!(inline_all(&mut opt, f), 1);
        verify_module(&opt).unwrap();
        assert_eq!(Interpreter::new().run(&opt, f, &[4.0]).unwrap(), vec![14.0]);
    }
}
