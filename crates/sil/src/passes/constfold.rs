//! Constant folding: evaluates instructions whose operands are constants,
//! and folds conditional branches on constant conditions into plain
//! branches.

use super::Pass;
use crate::interp::builtin_non_differentiable_unary;
use crate::ir::{FuncId, Inst, Module, Terminator, ValueId};
use s4tf_core::registry;
use std::collections::HashMap;

/// The constant-folding pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, module: &mut Module, func: FuncId) -> bool {
        let mut changed = false;
        let mut consts: HashMap<ValueId, f64> = HashMap::new();
        let mut bools: HashMap<ValueId, bool> = HashMap::new();

        // One forward sweep per run; `optimize` iterates to fixpoint.
        let f = module.func_mut(func);
        for block in &mut f.blocks {
            for (result, inst) in &mut block.insts {
                match inst {
                    Inst::Const(x) => {
                        consts.insert(*result, *x);
                    }
                    Inst::Unary { op, operand } => {
                        if let Some(&x) = consts.get(operand) {
                            if let Some(d) = registry::lookup_unary(op)
                                .or_else(|| builtin_non_differentiable_unary(op))
                            {
                                let v = (d.f)(x);
                                *inst = Inst::Const(v);
                                consts.insert(*result, v);
                                changed = true;
                            }
                        }
                    }
                    Inst::Binary { op, lhs, rhs } => {
                        if let (Some(&a), Some(&b)) = (consts.get(lhs), consts.get(rhs)) {
                            if let Some(d) = registry::lookup_binary(op) {
                                let v = (d.f)(a, b);
                                *inst = Inst::Const(v);
                                consts.insert(*result, v);
                                changed = true;
                            }
                        }
                    }
                    Inst::Cmp { pred, lhs, rhs } => {
                        if let (Some(&a), Some(&b)) = (consts.get(lhs), consts.get(rhs)) {
                            bools.insert(*result, pred.apply(a, b));
                            // Cmp itself stays (cheap); the branch below folds.
                        }
                    }
                    Inst::Call { .. } => {}
                }
            }
            if let Terminator::CondBr {
                cond,
                then_target,
                then_args,
                else_target,
                else_args,
            } = &block.terminator
            {
                if let Some(&b) = bools.get(cond) {
                    block.terminator = if b {
                        Terminator::Br {
                            target: *then_target,
                            args: then_args.clone(),
                        }
                    } else {
                        Terminator::Br {
                            target: *else_target,
                            args: else_args.clone(),
                        }
                    };
                    changed = true;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;
    use crate::passes::testutil::assert_same_semantics;
    use crate::verify::verify_module;

    #[test]
    fn folds_arithmetic() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %a = const 2.0
              %b = const 3.0
              %c = mul %a, %b
              %d = sin %c
              %e = add %x, %d
              ret %e
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(ConstFold.run(&mut opt, f));
        verify_module(&opt).unwrap();
        // %c and %d must have become constants.
        let folded: Vec<_> = opt.func(f).blocks[0]
            .insts
            .iter()
            .filter(|(_, i)| matches!(i, Inst::Const(_)))
            .collect();
        assert_eq!(folded.len(), 4);
        assert_same_semantics(&m, &opt, f, 1);
        // Second run: idempotent — semantics unchanged either way.
        let mut opt2 = opt.clone();
        ConstFold.run(&mut opt2, f);
        assert_same_semantics(&opt, &opt2, f, 1);
    }

    #[test]
    fn folds_constant_branches() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %one = const 1.0
              %two = const 2.0
              %c = cmp lt %one, %two
              condbr %c, bb1(), bb2()
            bb1():
              %y = add %x, %one
              ret %y
            bb2():
              %z = sub %x, %one
              ret %z
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(ConstFold.run(&mut opt, f));
        verify_module(&opt).unwrap();
        assert!(matches!(
            opt.func(f).blocks[0].terminator,
            crate::ir::Terminator::Br { .. }
        ));
        assert_same_semantics(&m, &opt, f, 1);
    }

    #[test]
    fn leaves_dynamic_code_alone() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %y = sin %x
              ret %y
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        assert!(!ConstFold.run(&mut opt, f));
        assert_eq!(opt, m);
    }
}
