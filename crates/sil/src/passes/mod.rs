//! Optimization passes over the IR.
//!
//! These are ordinary compiler passes — the point (paper §2.2) is that the
//! AD transformation's output is plain IR, "fully amenable to the same set
//! of compile-time optimizations as regular Swift code". The test suites
//! run each pass over synthesized derivatives and check semantics are
//! preserved against the interpreter.

pub mod constfold;
pub mod cse;
pub mod dce;
pub mod inline;
pub mod simplify;

use crate::ir::{FuncId, Module};

/// A named function-level pass.
pub trait Pass {
    /// The pass's diagnostic name.
    fn name(&self) -> &'static str;
    /// Runs over one function; returns true if anything changed.
    fn run(&self, module: &mut Module, func: FuncId) -> bool;
}

/// Runs the standard pipeline (inline → constfold → cse → simplify → dce)
/// to a fixed point (bounded), returning the number of iterations.
///
/// With `S4TF_DUMP` set, writes the module before the pipeline, after each
/// pass application that changed anything, and after the pipeline — each as
/// a sequence-numbered `.sil` file.
pub fn optimize(module: &mut Module, func: FuncId) -> usize {
    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(inline::Inline::default()),
        Box::new(constfold::ConstFold),
        Box::new(cse::Cse),
        Box::new(simplify::AlgebraicSimplify),
        Box::new(dce::Dce),
    ];
    let dumping = crate::diag::dump_enabled();
    if dumping {
        let _ = crate::diag::dump(
            "sil",
            "before",
            "sil",
            &crate::printer::print_module(module),
        );
    }
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for p in &passes {
            let pass_changed = p.run(module, func);
            if pass_changed && dumping {
                let _ = crate::diag::dump(
                    "sil",
                    &format!("pass.{}", p.name()),
                    "sil",
                    &crate::printer::print_module(module),
                );
            }
            changed |= pass_changed;
        }
        if !changed || iterations >= 10 {
            if dumping {
                let _ =
                    crate::diag::dump("sil", "after", "sil", &crate::printer::print_module(module));
            }
            return iterations;
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::interp::Interpreter;
    use crate::ir::{FuncId, Module};

    /// Asserts that `module`'s `func` computes the same outputs as before a
    /// transformation, on a grid of inputs.
    pub fn assert_same_semantics(before: &Module, after: &Module, func: FuncId, arity: usize) {
        let probes: Vec<f64> = vec![-2.3, -1.0, -0.2, 0.0, 0.4, 1.0, 2.7, 5.0];
        let mut args = vec![0.0; arity];
        // Enumerate a small cartesian sample (diagonal + shifted diagonals).
        for (i, &p) in probes.iter().enumerate() {
            for (k, a) in args.iter_mut().enumerate() {
                *a = p + k as f64 * 0.37 + i as f64 * 0.01;
            }
            let out_before = Interpreter::new().run(before, func, &args);
            let out_after = Interpreter::new().run(after, func, &args);
            match (out_before, out_after) {
                (Ok(b), Ok(a)) => {
                    assert_eq!(b.len(), a.len());
                    for (x, y) in b.iter().zip(&a) {
                        assert!(
                            (x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()),
                            "semantics changed at {args:?}: {x} vs {y}"
                        );
                    }
                }
                (b, a) => assert_eq!(b, a, "error behavior changed at {args:?}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module_unwrap;
    use crate::verify::verify_module;

    #[test]
    fn pipeline_shrinks_and_preserves() {
        let m = parse_module_unwrap(
            r#"
            func @f(%x: f64) -> f64 {
            bb0(%x: f64):
              %a = const 2.0
              %b = const 3.0
              %c = add %a, %b
              %d = mul %x, %c
              %e = mul %x, %c
              %g = add %d, %e
              %dead = sin %x
              ret %g
            }
            "#,
        );
        let f = m.func_id("f").unwrap();
        let mut opt = m.clone();
        let iters = optimize(&mut opt, f);
        assert!(iters >= 2);
        verify_module(&opt).unwrap();
        assert!(opt.func(f).inst_count() < m.func(f).inst_count());
        testutil::assert_same_semantics(&m, &opt, f, 1);
    }
}
