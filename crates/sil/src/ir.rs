//! The IR data model: modules of functions; functions of basic blocks in
//! SSA form with block arguments; scalar `f64`/`bool` values.

use std::collections::HashMap;
use std::fmt;

/// Identifies a value within one function (a block parameter or an
/// instruction result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifies a basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Value types. The IR is scalar: tensors live a level up, in the lazy
/// trace IR of `s4tf-xla`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A 64-bit float — the differentiable type.
    F64,
    /// A boolean — control only, never differentiable.
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::F64 => write!(f, "f64"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// Comparison predicates for [`Inst::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpPred {
    /// Evaluates the predicate.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
        }
    }

    /// The textual mnemonic (`lt`, `le`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<CmpPred> {
        Some(match s {
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            _ => return None,
        })
    }
}

/// One SSA instruction. Every instruction produces exactly one result value.
///
/// Unary and binary operations are *named*; their semantics (and their
/// derivatives) come from the `s4tf-core` derivative registry, which is what
/// lets users plug in custom base derivatives (`@derivative(of:)`).
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// A floating-point literal.
    Const(f64),
    /// A named unary operation (`sin`, `exp`, `relu`, …).
    Unary {
        /// Registry name of the operation.
        op: String,
        /// The operand.
        operand: ValueId,
    },
    /// A named binary operation (`add`, `mul`, `pow`, …).
    Binary {
        /// Registry name of the operation.
        op: String,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// A comparison, producing a `bool`.
    Cmp {
        /// The predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: ValueId,
        /// Right operand.
        rhs: ValueId,
    },
    /// A call to another function in the module (single result).
    Call {
        /// The callee.
        callee: FuncId,
        /// Argument values.
        args: Vec<ValueId>,
    },
}

impl Inst {
    /// The values this instruction reads.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Inst::Const(_) => vec![],
            Inst::Unary { operand, .. } => vec![*operand],
            Inst::Binary { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Call { args, .. } => args.clone(),
        }
    }

    /// Rewrites every operand through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Const(_) => {}
            Inst::Unary { operand, .. } => *operand = f(*operand),
            Inst::Binary { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }

    /// The result type of this instruction.
    pub fn result_type(&self, module: &Module) -> Type {
        match self {
            Inst::Cmp { .. } => Type::Bool,
            Inst::Call { callee, .. } => {
                let f = module.func(*callee);
                assert_eq!(
                    f.result_types.len(),
                    1,
                    "calls require single-result callees"
                );
                f.result_types[0]
            }
            _ => Type::F64,
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch, passing `args` to the target's parameters.
    Br {
        /// Target block.
        target: BlockId,
        /// Arguments bound to the target's block parameters.
        args: Vec<ValueId>,
    },
    /// Conditional branch on a `bool` value.
    CondBr {
        /// The branch condition.
        cond: ValueId,
        /// Taken when `cond` is true.
        then_target: BlockId,
        /// Arguments for the then-target's parameters.
        then_args: Vec<ValueId>,
        /// Taken when `cond` is false.
        else_target: BlockId,
        /// Arguments for the else-target's parameters.
        else_args: Vec<ValueId>,
    },
    /// Function return (possibly multiple results; synthesized JVPs return
    /// `[value, tangent]`).
    Ret(Vec<ValueId>),
}

impl Terminator {
    /// The values this terminator reads.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Terminator::Br { args, .. } => args.clone(),
            Terminator::CondBr {
                cond,
                then_args,
                else_args,
                ..
            } => {
                let mut v = vec![*cond];
                v.extend_from_slice(then_args);
                v.extend_from_slice(else_args);
                v
            }
            Terminator::Ret(vals) => vals.clone(),
        }
    }

    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target, .. } => vec![*target],
            Terminator::CondBr {
                then_target,
                else_target,
                ..
            } => vec![*then_target, *else_target],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Rewrites every operand through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Terminator::Br { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Terminator::CondBr {
                cond,
                then_args,
                else_args,
                ..
            } => {
                *cond = f(*cond);
                for a in then_args.iter_mut().chain(else_args) {
                    *a = f(*a);
                }
            }
            Terminator::Ret(vals) => {
                for v in vals {
                    *v = f(*v);
                }
            }
        }
    }
}

/// A basic block: typed parameters, instructions, one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's parameters (SSA block arguments / phi nodes).
    pub params: Vec<(ValueId, Type)>,
    /// Instructions, each defining its result value.
    pub insts: Vec<(ValueId, Inst)>,
    /// The terminator.
    pub terminator: Terminator,
}

impl Block {
    /// Every value this block defines (params + instruction results).
    pub fn defined_values(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.params
            .iter()
            .map(|&(v, _)| v)
            .chain(self.insts.iter().map(|&(v, _)| v))
    }
}

/// A function: an entry block plus others, in SSA form.
///
/// The entry block's parameters are the function parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The function's symbol name.
    pub name: String,
    /// Blocks, indexed by [`BlockId`]. Block 0 is the entry.
    pub blocks: Vec<Block>,
    /// The function's result types (usually one; synthesized JVPs have two).
    pub result_types: Vec<Type>,
    /// The next fresh [`ValueId`] (all defined value ids are below this).
    pub next_value: u32,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> &Block {
        &self.blocks[0]
    }

    /// The function parameters (the entry block's parameters).
    pub fn params(&self) -> &[(ValueId, Type)] {
        &self.blocks[0].params
    }

    /// Access a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All block ids, in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Mints a fresh value id.
    pub fn fresh_value(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        v
    }

    /// Total instruction count (a code-size metric for the pass tests).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Predecessor map: for every block, the blocks branching to it.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for id in self.block_ids() {
            preds.entry(id).or_default();
        }
        for id in self.block_ids() {
            for succ in self.block(id).terminator.successors() {
                preds.entry(succ).or_default().push(id);
            }
        }
        preds
    }

    /// The type of each defined value.
    pub fn value_types(&self, module: &Module) -> HashMap<ValueId, Type> {
        let mut types = HashMap::new();
        for block in &self.blocks {
            for &(v, ty) in &block.params {
                types.insert(v, ty);
            }
            for (v, inst) in &block.insts {
                types.insert(*v, inst.result_type(module));
            }
        }
        types
    }
}

/// A module: a set of functions, addressable by name or [`FuncId`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Access a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Looks up a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.functions.len() as u32).map(FuncId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn simple_func() -> (Module, FuncId) {
        let mut module = Module::new();
        let mut b = FunctionBuilder::new("f", &[Type::F64]);
        let x = b.param(0);
        let two = b.constant(2.0);
        let y = b.binary("mul", x, two);
        b.ret(&[y]);
        let f = module.add_function(b.finish());
        (module, f)
    }

    #[test]
    fn inst_operands_and_map() {
        let mut i = Inst::Binary {
            op: "add".into(),
            lhs: ValueId(1),
            rhs: ValueId(2),
        };
        assert_eq!(i.operands(), vec![ValueId(1), ValueId(2)]);
        i.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(i.operands(), vec![ValueId(11), ValueId(12)]);
        assert!(Inst::Const(1.0).operands().is_empty());
    }

    #[test]
    fn cmp_predicates() {
        assert!(CmpPred::Lt.apply(1.0, 2.0));
        assert!(!CmpPred::Gt.apply(1.0, 2.0));
        assert!(CmpPred::Le.apply(2.0, 2.0));
        assert!(CmpPred::Eq.apply(2.0, 2.0));
        assert!(CmpPred::Ne.apply(1.0, 2.0));
        assert!(CmpPred::Ge.apply(2.0, 2.0));
        for p in [
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
            CmpPred::Eq,
            CmpPred::Ne,
        ] {
            assert_eq!(CmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        assert_eq!(CmpPred::from_mnemonic("bogus"), None);
    }

    #[test]
    fn terminator_successors() {
        let br = Terminator::Br {
            target: BlockId(1),
            args: vec![ValueId(0)],
        };
        assert_eq!(br.successors(), vec![BlockId(1)]);
        let cb = Terminator::CondBr {
            cond: ValueId(9),
            then_target: BlockId(1),
            then_args: vec![],
            else_target: BlockId(2),
            else_args: vec![ValueId(3)],
        };
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(cb.operands(), vec![ValueId(9), ValueId(3)]);
        assert!(Terminator::Ret(vec![ValueId(1)]).successors().is_empty());
    }

    #[test]
    fn function_accessors() {
        let (module, f) = simple_func();
        let func = module.func(f);
        assert_eq!(func.name, "f");
        assert_eq!(func.params().len(), 1);
        assert_eq!(func.inst_count(), 2);
        assert_eq!(func.result_types, vec![Type::F64]);
        let types = func.value_types(&module);
        assert_eq!(types[&func.params()[0].0], Type::F64);
    }

    #[test]
    fn module_lookup() {
        let (module, f) = simple_func();
        assert_eq!(module.func_id("f"), Some(f));
        assert_eq!(module.func_id("missing"), None);
        assert_eq!(module.func_ids().count(), 1);
    }

    #[test]
    fn predecessors() {
        let mut b = FunctionBuilder::new("g", &[Type::F64]);
        let x = b.param(0);
        let zero = b.constant(0.0);
        let c = b.cmp(CmpPred::Gt, x, zero);
        let bb_then = b.add_block(&[]);
        let bb_else = b.add_block(&[]);
        let bb_join = b.add_block(&[Type::F64]);
        b.cond_br(c, bb_then, &[], bb_else, &[]);
        b.switch_to(bb_then);
        b.br(bb_join, &[x]);
        b.switch_to(bb_else);
        let neg = b.unary("neg", x);
        b.br(bb_join, &[neg]);
        b.switch_to(bb_join);
        let p = b.block_param(bb_join, 0);
        b.ret(&[p]);
        let f = b.finish();
        let preds = f.predecessors();
        assert_eq!(preds[&bb_join].len(), 2);
        assert_eq!(preds[&BlockId(0)].len(), 0);
    }
}
