//! Higher-order differentiation — an *extension beyond the paper*.
//!
//! §2.3 lists two limitations of Swift for TensorFlow's AD: no
//! higher-order differentiation, and "the code transformation currently
//! cannot transform its own output because the output makes heavy use of
//! closure captures". In this reproduction the forward-mode transform's
//! output is plain IR with no closures at all — so the transformation can
//! be applied to its own output, and forward-over-forward second (and
//! third) derivatives fall out. These tests demonstrate and verify that.

use s4tf_sil::ad::jvp::transform;
use s4tf_sil::ad::rules::RuleSet;
use s4tf_sil::parser::parse_module_unwrap;
use s4tf_sil::passes::optimize;
use s4tf_sil::verify::verify_module;
use s4tf_sil::Interpreter;

/// Computes the k-th forward derivative tower of a 1-argument function by
/// repeatedly transforming the transform's own output.
///
/// After k applications the function takes 2^k arguments and returns 2^k
/// results. The standard forward-over-forward seeding puts the point in
/// slot 0 and a unit tangent in each power-of-two slot (each level
/// differentiates the whole previous tower: the new tangent of `x` is 1,
/// the new tangents of previous *seeds* are 0); the last result is then
/// the k-th derivative.
fn nth_derivative(src: &str, k: usize, x: f64) -> f64 {
    let mut module = parse_module_unwrap(src);
    let mut f = module.func_id("f").expect("function @f");
    for _ in 0..k {
        f = transform(&mut module, f, &RuleSet::builtin()).expect("differentiable");
    }
    verify_module(&module).unwrap();
    let arity = module.func(f).params().len();
    assert_eq!(arity, 1 << k, "each level doubles the arity");
    let args: Vec<f64> = (0..arity)
        .map(|i| {
            if i == 0 {
                x
            } else if i.is_power_of_two() {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    let out = Interpreter::new().run(&module, f, &args).unwrap();
    *out.last().expect("non-empty results")
}

const SIN: &str = r#"
func @f(%x: f64) -> f64 {
bb0(%x: f64):
  %y = sin %x
  ret %y
}
"#;

#[test]
fn second_derivative_of_sin_is_minus_sin() {
    for &x in &[0.0f64, 0.5, 1.3, -2.1] {
        let d2 = nth_derivative(SIN, 2, x);
        assert!((d2 - (-x.sin())).abs() < 1e-12, "at {x}: {d2}");
    }
}

#[test]
fn third_derivative_of_sin_is_minus_cos() {
    for &x in &[0.3f64, 1.1] {
        let d3 = nth_derivative(SIN, 3, x);
        assert!((d3 - (-x.cos())).abs() < 1e-12, "at {x}: {d3}");
    }
}

#[test]
fn second_derivative_of_a_composite() {
    // f(x) = exp(x²): f'' = (2 + 4x²)·exp(x²).
    let src = r#"
    func @f(%x: f64) -> f64 {
    bb0(%x: f64):
      %x2 = mul %x, %x
      %y = exp %x2
      ret %y
    }
    "#;
    for &x in &[0.2f64, 0.9, -0.6] {
        let d2 = nth_derivative(src, 2, x);
        let expected = (2.0 + 4.0 * x * x) * (x * x).exp();
        assert!(
            (d2 - expected).abs() < 1e-9 * (1.0 + expected.abs()),
            "at {x}: {d2} vs {expected}"
        );
    }
}

#[test]
fn second_derivative_through_control_flow() {
    // f(x) = x³ for x > 0 else sin(x): f'' = 6x or −sin(x).
    let src = r#"
    func @f(%x: f64) -> f64 {
    bb0(%x: f64):
      %zero = const 0.0
      %c = cmp gt %x, %zero
      condbr %c, bb1(), bb2()
    bb1():
      %x2 = mul %x, %x
      %x3 = mul %x2, %x
      br bb3(%x3)
    bb2():
      %s = sin %x
      br bb3(%s)
    bb3(%r: f64):
      ret %r
    }
    "#;
    let d2_pos = nth_derivative(src, 2, 1.5);
    assert!((d2_pos - 9.0).abs() < 1e-10, "{d2_pos}");
    let d2_neg = nth_derivative(src, 2, -1.0);
    assert!((d2_neg - 1.0f64.sin()).abs() < 1e-12, "{d2_neg}");
}

#[test]
fn second_derivative_through_a_loop() {
    // f(x) = x^5 via repeated multiplication: f'' = 20x³.
    let src = r#"
    func @f(%x: f64) -> f64 {
    bb0(%x: f64):
      %zero = const 0.0
      %one = const 1.0
      br bb1(%zero, %one)
    bb1(%k: f64, %acc: f64):
      %n = const 5.0
      %c = cmp lt %k, %n
      condbr %c, bb2(), bb3()
    bb2():
      %acc2 = mul %acc, %x
      %kn = add %k, %one
      br bb1(%kn, %acc2)
    bb3():
      ret %acc
    }
    "#;
    let x = 1.2f64;
    let d2 = nth_derivative(src, 2, x);
    assert!((d2 - 20.0 * x.powi(3)).abs() < 1e-9, "{d2}");
}

#[test]
fn towers_are_ordinary_ir_and_optimize() {
    // The paper's claimed obstacle — closure captures in the transform's
    // output — does not exist here: the second-order output verifies,
    // optimizes with the standard pipeline, and still evaluates correctly.
    let mut module = parse_module_unwrap(SIN);
    let f0 = module.func_id("f").unwrap();
    let f1 = transform(&mut module, f0, &RuleSet::builtin()).unwrap();
    let f2 = transform(&mut module, f1, &RuleSet::builtin()).unwrap();
    verify_module(&module).unwrap();
    let before = module.func(f2).inst_count();
    optimize(&mut module, f2);
    verify_module(&module).unwrap();
    let after = module.func(f2).inst_count();
    assert!(
        after < before,
        "tower shrinks under optimization: {before}→{after}"
    );
    let out = Interpreter::new()
        .run(&module, f2, &[0.7, 1.0, 1.0, 0.0])
        .unwrap();
    assert_eq!(out.len(), 4);
    assert!((out[0] - 0.7f64.sin()).abs() < 1e-15);
    assert!(
        (out[3] - (-0.7f64.sin())).abs() < 1e-12,
        "d² via mixed seeds"
    );
}
