//! `S4TF_DUMP` behavior of the SIL optimizer and AD synthesis: every
//! stage lands in the dump directory as a sequence-numbered `.sil` file,
//! in pipeline order.

use s4tf_sil::parser::parse_module_unwrap;
use std::path::PathBuf;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

const SOURCE: &str = r#"
    func @f(%x: f64) -> f64 {
    bb0(%x: f64):
      %a = const 2.0
      %b = const 3.0
      %c = add %a, %b
      %d = mul %x, %c
      %dead = sin %x
      ret %d
    }
"#;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s4tf-sil-dumps-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dump_names(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("dump dir created")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    names
}

#[test]
fn optimize_dumps_before_each_changed_pass_and_after() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_dir("passes");
    s4tf_diag::set_dump_dir(Some(&dir));
    let mut module = parse_module_unwrap(SOURCE);
    let f = module.func_id("f").unwrap();
    s4tf_sil::passes::optimize(&mut module, f);
    s4tf_diag::set_dump_dir(None);

    let names = dump_names(&dir);
    let seqs: Vec<u64> = names
        .iter()
        .map(|n| n.split('.').next().unwrap().parse().unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "sequenced: {names:?}");

    assert!(names.iter().any(|n| n.contains(".sil.before.")));
    assert!(names.iter().any(|n| n.contains(".sil.after.")));
    // This module has a foldable constant add and a dead `sin`, so at
    // least constfold and dce must each have produced a change dump.
    assert!(names.iter().any(|n| n.contains(".sil.pass.constfold.")));
    assert!(names.iter().any(|n| n.contains(".sil.pass.dce.")));
    // Every dump file is printable IR that parses back.
    for n in &names {
        let text = std::fs::read_to_string(dir.join(n)).unwrap();
        parse_module_unwrap(&text);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ad_synthesis_dumps_its_stages() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch_dir("ad");
    s4tf_diag::set_dump_dir(Some(&dir));
    let module = parse_module_unwrap(SOURCE);
    let f = module.func_id("f").unwrap();
    let grad = s4tf_sil::ad::gradient(&module, f, &[1.0]).expect("differentiable");
    assert!((grad[0] - 5.0).abs() < 1e-12, "d/dx (5x) = 5");
    s4tf_diag::set_dump_dir(None);

    let names = dump_names(&dir);
    assert!(names.iter().any(|n| n.contains(".ad.vjp.input.")));
    assert!(names.iter().any(|n| n.contains(".ad.vjp.primal.")));
    assert!(names.iter().any(|n| n.contains(".ad.vjp.pullbacks.")));
    let _ = std::fs::remove_dir_all(&dir);
}
