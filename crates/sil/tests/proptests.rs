//! Property-based tests over random IR programs: the optimization
//! pipeline preserves interpreter semantics, synthesized derivatives match
//! finite differences, and printing round-trips.

use proptest::prelude::*;
use s4tf_sil::ad::vjp::differentiate;
use s4tf_sil::ir::{CmpPred, Module, Type};
use s4tf_sil::parser::parse_module_unwrap;
use s4tf_sil::passes::optimize;
use s4tf_sil::printer::print_module;
use s4tf_sil::verify::verify_module;
use s4tf_sil::{FunctionBuilder, Interpreter, ValueId};

/// A recipe for one random straight-line instruction.
#[derive(Debug, Clone)]
enum Step {
    Const(f64),
    Unary(usize, usize),         // op index, operand pick
    Binary(usize, usize, usize), // op index, lhs pick, rhs pick
}

const UNARY_OPS: &[&str] = &["sin", "cos", "exp", "tanh", "sigmoid", "square", "neg"];
const BINARY_OPS: &[&str] = &["add", "sub", "mul"];

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-2.0f64..2.0).prop_map(Step::Const),
        (0..UNARY_OPS.len(), any::<usize>()).prop_map(|(o, p)| Step::Unary(o, p)),
        (0..BINARY_OPS.len(), any::<usize>(), any::<usize>())
            .prop_map(|(o, a, b)| Step::Binary(o, a, b)),
    ]
}

/// Builds a random single-block function over `arity` parameters.
fn build_straight_line(steps: &[Step], arity: usize) -> Module {
    let mut module = Module::new();
    let mut b = FunctionBuilder::new("f", &vec![Type::F64; arity]);
    let mut values: Vec<ValueId> = (0..arity).map(|i| b.param(i)).collect();
    for step in steps {
        let v = match step {
            Step::Const(c) => b.constant(*c),
            Step::Unary(o, p) => {
                let x = values[p % values.len()];
                b.unary(UNARY_OPS[o % UNARY_OPS.len()], x)
            }
            Step::Binary(o, l, r) => {
                let (x, y) = (values[l % values.len()], values[r % values.len()]);
                b.binary(BINARY_OPS[o % BINARY_OPS.len()], x, y)
            }
        };
        values.push(v);
    }
    let ret = *values.last().expect("at least the params");
    b.ret(&[ret]);
    module.add_function(b.finish());
    module
}

/// Builds a random two-armed diamond: `if x0 > t { armA } else { armB }`.
fn build_diamond(steps_a: &[Step], steps_b: &[Step], threshold: f64) -> Module {
    // Build each arm as textual snippets through the builder API directly.
    let mut module = Module::new();
    let mut b = FunctionBuilder::new("f", &[Type::F64, Type::F64]);
    let x0 = b.param(0);
    let t = b.constant(threshold);
    let c = b.cmp(CmpPred::Gt, x0, t);
    let arm_a = b.add_block(&[]);
    let arm_b = b.add_block(&[]);
    let join = b.add_block(&[Type::F64]);
    b.cond_br(c, arm_a, &[], arm_b, &[]);
    for (block, steps) in [(arm_a, steps_a), (arm_b, steps_b)] {
        b.switch_to(block);
        let mut values = vec![b.param(0), b.param(1)];
        for step in steps {
            let v = match step {
                Step::Const(cv) => b.constant(*cv),
                Step::Unary(o, p) => {
                    let x = values[p % values.len()];
                    b.unary(UNARY_OPS[o % UNARY_OPS.len()], x)
                }
                Step::Binary(o, l, r) => {
                    let (x, y) = (values[l % values.len()], values[r % values.len()]);
                    b.binary(BINARY_OPS[o % BINARY_OPS.len()], x, y)
                }
            };
            values.push(v);
        }
        let last = *values.last().expect("non-empty");
        b.br(join, &[last]);
    }
    b.switch_to(join);
    let out = b.block_param(join, 0);
    b.ret(&[out]);
    module.add_function(b.finish());
    module
}

fn run(module: &Module, args: &[f64]) -> f64 {
    let f = module.func_id("f").unwrap();
    Interpreter::new().run(module, f, args).unwrap()[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_preserves_straight_line_semantics(
        steps in prop::collection::vec(step_strategy(), 1..24),
        args in prop::collection::vec(-2.0f64..2.0, 2),
    ) {
        let module = build_straight_line(&steps, 2);
        verify_module(&module).unwrap();
        let mut opt = module.clone();
        let f = opt.func_id("f").unwrap();
        optimize(&mut opt, f);
        verify_module(&opt).unwrap();
        let before = run(&module, &args);
        let after = run(&opt, &args);
        prop_assert!(
            (before - after).abs() < 1e-9 || (before.is_nan() && after.is_nan()),
            "{before} vs {after}"
        );
    }

    #[test]
    fn optimizer_preserves_diamond_semantics(
        steps_a in prop::collection::vec(step_strategy(), 1..12),
        steps_b in prop::collection::vec(step_strategy(), 1..12),
        threshold in -1.0f64..1.0,
        args in prop::collection::vec(-2.0f64..2.0, 2),
    ) {
        let module = build_diamond(&steps_a, &steps_b, threshold);
        verify_module(&module).unwrap();
        let mut opt = module.clone();
        let f = opt.func_id("f").unwrap();
        optimize(&mut opt, f);
        verify_module(&opt).unwrap();
        let before = run(&module, &args);
        let after = run(&opt, &args);
        prop_assert!(
            (before - after).abs() < 1e-9 || (before.is_nan() && after.is_nan()),
        );
    }

    #[test]
    fn printer_round_trips_random_programs(
        steps in prop::collection::vec(step_strategy(), 1..16),
    ) {
        let module = build_straight_line(&steps, 2);
        let text = print_module(&module);
        let reparsed = parse_module_unwrap(&text);
        prop_assert_eq!(print_module(&reparsed), text);
        // And semantics agree on a probe point.
        let a = run(&module, &[0.3, -0.7]);
        let b = run(&reparsed, &[0.3, -0.7]);
        prop_assert!((a - b).abs() < 1e-12 || (a.is_nan() && b.is_nan()));
    }

    #[test]
    fn synthesized_gradients_match_finite_differences(
        steps in prop::collection::vec(step_strategy(), 1..16),
        x in -1.2f64..1.2,
        y in -1.2f64..1.2,
    ) {
        let module = build_straight_line(&steps, 2);
        let f = module.func_id("f").unwrap();
        let d = differentiate(&module, f).unwrap();
        let (v, g) = d.value_with_gradient(&[x, y], 1.0).unwrap();
        prop_assume!(v.is_finite());
        let eps = 1e-6;
        let mut i = Interpreter::new();
        let fdx = (i.run(&module, f, &[x + eps, y]).unwrap()[0]
            - i.run(&module, f, &[x - eps, y]).unwrap()[0])
            / (2.0 * eps);
        let fdy = (i.run(&module, f, &[x, y + eps]).unwrap()[0]
            - i.run(&module, f, &[x, y - eps]).unwrap()[0])
            / (2.0 * eps);
        prop_assume!(fdx.is_finite() && fdy.is_finite());
        // exp chains can amplify; compare with relative tolerance.
        let tol = |fd: f64| 1e-4 * (1.0 + fd.abs());
        prop_assert!((g[0] - fdx).abs() < tol(fdx), "d/dx: {} vs {fdx}", g[0]);
        prop_assert!((g[1] - fdy).abs() < tol(fdy), "d/dy: {} vs {fdy}", g[1]);
    }

    #[test]
    fn gradient_of_optimized_equals_gradient_of_original(
        steps in prop::collection::vec(step_strategy(), 1..16),
        x in -1.0f64..1.0,
    ) {
        let module = build_straight_line(&steps, 1);
        let f = module.func_id("f").unwrap();
        let mut opt = module.clone();
        optimize(&mut opt, f);
        let g1 = differentiate(&module, f).unwrap().value_with_gradient(&[x], 1.0).unwrap();
        let g2 = differentiate(&opt, f).unwrap().value_with_gradient(&[x], 1.0).unwrap();
        prop_assume!(g1.0.is_finite() && g1.1[0].is_finite());
        prop_assert!((g1.0 - g2.0).abs() < 1e-9);
        prop_assert!((g1.1[0] - g2.1[0]).abs() < 1e-6 * (1.0 + g1.1[0].abs()));
    }
}
