//! Deterministic, seed-driven fault injection for chaos-testing the s4tf
//! runtime.
//!
//! The ROADMAP north star is a production-scale system, and production
//! systems are only as robust as the failures they have rehearsed. This
//! crate makes faults *injectable* and the injection *replayable*: a spec
//! names the sites to perturb, a probability per site, and a seed — and
//! the decision sequence is a pure function of `(seed, site, draw index)`,
//! so a chaos run reproduces exactly, independent of thread interleaving.
//!
//! ## Spec grammar
//!
//! ```text
//! S4TF_FAULT_SPEC = <entry> [ "," <entry> ]*
//! <entry>         = <site> ":" <prob> ":" <seed>
//! <site>          = dispatch | kernel | compile | allreduce | checkpoint_io | io | net
//! ```
//!
//! e.g. `S4TF_FAULT_SPEC=kernel:0.05:42,compile:1:7` injects kernel faults
//! on 5% of draws (seed 42) and fails every XLA compile (seed 7).
//!
//! ## Sites
//!
//! | site | where it fires |
//! |------|----------------|
//! | `dispatch` | op dispatch/record on the naive, eager and lazy devices |
//! | `kernel` | kernel execution (eager worker, naive eval, compiled-plan nodes) |
//! | `compile` | XLA compilation inside the program cache |
//! | `allreduce` | per-shard gradient reduction in the data-parallel step |
//! | `checkpoint_io` | checkpoint writes (`nn::checkpoint::save`) |
//! | `io` | checkpoint reads and other file I/O |
//! | `net` | data-plane wire frames in `s4tf::dist` (drop / delay / corrupt) |
//!
//! The `net` site is consumed differently from the others: `s4tf-dist`
//! keeps a *per-peer* draw counter and calls [`would_inject`] directly
//! (via [`site_params`]), so the injected sequence for each peer link is
//! independent of traffic on the other links — expelling one worker does
//! not shift the fault stream another worker sees.
//!
//! The disabled path is one relaxed atomic load (the gate pattern shared
//! with `s4tf-profile`/`s4tf-diag`), and with the consumer crates'
//! `fault` feature off the whole layer compiles out through the shared
//! no-op shim (`src/noop_shim.rs`).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// A place in the runtime where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Op dispatch / trace record on any device.
    Dispatch,
    /// Kernel execution on any backend.
    Kernel,
    /// XLA compilation (program-cache miss path).
    Compile,
    /// Per-shard gradient all-reduce in the data-parallel step.
    Allreduce,
    /// Checkpoint writes.
    CheckpointIo,
    /// Checkpoint reads / generic file I/O.
    Io,
    /// Data-plane network frames (the `s4tf::dist` wire).
    Net,
}

/// Number of distinct sites (array-index bound).
const N_SITES: usize = 7;

impl FaultSite {
    /// Every site, in spec order.
    pub const ALL: [FaultSite; N_SITES] = [
        FaultSite::Dispatch,
        FaultSite::Kernel,
        FaultSite::Compile,
        FaultSite::Allreduce,
        FaultSite::CheckpointIo,
        FaultSite::Io,
        FaultSite::Net,
    ];

    /// The spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Dispatch => "dispatch",
            FaultSite::Kernel => "kernel",
            FaultSite::Compile => "compile",
            FaultSite::Allreduce => "allreduce",
            FaultSite::CheckpointIo => "checkpoint_io",
            FaultSite::Io => "io",
            FaultSite::Net => "net",
        }
    }

    /// Parses a spec-grammar name.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.name() == s)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::Dispatch => 0,
            FaultSite::Kernel => 1,
            FaultSite::Compile => 2,
            FaultSite::Allreduce => 3,
            FaultSite::CheckpointIo => 4,
            FaultSite::Io => 5,
            FaultSite::Net => 6,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One site's injection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SiteSpec {
    prob: f64,
    seed: u64,
}

// Tri-state gate: 0 = uninitialized (consult S4TF_FAULT_SPEC once),
// 1 = off, 2 = on. The hot path of `should_inject` with no spec set is
// one relaxed load.
static GATE: AtomicU8 = AtomicU8::new(0);
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

static SPECS: Mutex<[Option<SiteSpec>; N_SITES]> = Mutex::new([None; N_SITES]);

// Per-site draw/injection counters. Draws only advance for configured
// sites, so the decision sequence for a site depends only on how often
// that site was consulted — not on what other sites were doing.
static DECISIONS: [AtomicU64; N_SITES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static INJECTIONS: [AtomicU64; N_SITES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn lock_specs() -> std::sync::MutexGuard<'static, [Option<SiteSpec>; N_SITES]> {
    // The only writers are `set_fault_spec` and env init; a panic while
    // holding the lock leaves valid data, so poisoning is ignorable.
    SPECS.lock().unwrap_or_else(|e| e.into_inner())
}

#[cold]
fn init_from_env() -> u8 {
    let state = match std::env::var("S4TF_FAULT_SPEC") {
        Ok(spec) if !spec.trim().is_empty() => match parse_spec(&spec) {
            Ok(parsed) => {
                *lock_specs() = parsed;
                GATE_ON
            }
            Err(err) => {
                eprintln!("s4tf fault: ignoring invalid S4TF_FAULT_SPEC: {err}");
                GATE_OFF
            }
        },
        _ => GATE_OFF,
    };
    // Racing initializers compute the same value; an explicit
    // `set_fault_spec` in between wins.
    let _ = GATE.compare_exchange(0, state, Ordering::Relaxed, Ordering::Relaxed);
    GATE.load(Ordering::Relaxed)
}

/// True if any site has injection configured (one relaxed load once
/// initialized).
#[inline]
pub fn injection_enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        0 => init_from_env() == GATE_ON,
        state => state == GATE_ON,
    }
}

fn parse_spec(spec: &str) -> Result<[Option<SiteSpec>; N_SITES], String> {
    let mut out: [Option<SiteSpec>; N_SITES] = [None; N_SITES];
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let mut parts = entry.split(':');
        let (site, prob, seed) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(site), Some(prob), Some(seed), None) => (site, prob, seed),
            _ => return Err(format!("`{entry}` is not <site>:<prob>:<seed>")),
        };
        let site =
            FaultSite::parse(site.trim()).ok_or_else(|| format!("unknown fault site `{site}`"))?;
        let prob: f64 = prob
            .trim()
            .parse()
            .map_err(|_| format!("`{prob}` is not a probability"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!("probability {prob} outside [0, 1]"));
        }
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| format!("`{seed}` is not a u64 seed"))?;
        out[site.index()] = Some(SiteSpec { prob, seed });
    }
    Ok(out)
}

/// Installs (or with `None`, clears) the fault spec, overriding
/// `S4TF_FAULT_SPEC`, and resets the draw counters so the injected
/// sequence restarts from draw 0.
pub fn set_fault_spec(spec: Option<&str>) -> Result<(), String> {
    let parsed = match spec {
        Some(s) if !s.trim().is_empty() => parse_spec(s)?,
        _ => [None; N_SITES],
    };
    let any = parsed.iter().any(Option::is_some);
    *lock_specs() = parsed;
    GATE.store(if any { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    reset_counters();
    Ok(())
}

/// The active spec rendered back in grammar form (`None` when injection
/// is off).
pub fn active_spec() -> Option<String> {
    if !injection_enabled() {
        return None;
    }
    let specs = lock_specs();
    let mut parts = Vec::new();
    for site in FaultSite::ALL {
        if let Some(s) = specs[site.index()] {
            parts.push(format!("{}:{}:{}", site.name(), s.prob, s.seed));
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(","))
    }
}

/// The `(prob, seed)` configured for `site`, or `None` when the site (or
/// injection as a whole) is off. Consumers that need their own draw-index
/// streams — `s4tf-dist` keeps one per peer link — read the spec here and
/// decide via [`would_inject`] without advancing the global counters.
pub fn site_params(site: FaultSite) -> Option<(f64, u64)> {
    if !injection_enabled() {
        return None;
    }
    lock_specs()[site.index()].map(|s| (s.prob, s.seed))
}

/// SplitMix64 finalizer, exposed so consumers deriving sub-streams (e.g.
/// a per-peer seed `seed ^ mix64(rank)`) mix with the same function the
/// decision hash uses.
pub fn mix64(x: u64) -> u64 {
    splitmix64(x)
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The pure injection decision: would draw `index` at `site` inject under
/// (`seed`, `prob`)? This is the whole determinism story — no RNG state,
/// no thread sensitivity.
pub fn would_inject(seed: u64, site: FaultSite, index: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    let mixed = splitmix64(seed ^ splitmix64((site.index() as u64 + 1) ^ index.rotate_left(17)));
    // 53 uniform mantissa bits → [0, 1).
    let u = (mixed >> 11) as f64 / (1u64 << 53) as f64;
    u < prob
}

std::thread_local! {
    // Depth of nested `suppress()` guards on this thread.
    static SUPPRESS_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// An RAII guard marking a *protected region*: while it lives, injection
/// draws on this thread return `false` without consuming a draw index, so
/// protected work is invisible to the deterministic fault stream.
///
/// Chaos specs target the work being stressed (worker kernels, compiles,
/// checkpoint writes) — not the fault-handling machinery itself. Recovery
/// code (validation probes, rollback, the renormalized all-reduce) runs
/// under this guard; real faults still propagate through it as poisoned
/// values, only *new* injections are paused.
///
/// The guard is thread-local: it does not reach ops executed by another
/// thread (e.g. the eager worker).
#[must_use = "suppression ends when the guard drops"]
#[derive(Debug)]
pub struct SuppressionGuard(());

impl Drop for SuppressionGuard {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Enters a protected region on the current thread (see
/// [`SuppressionGuard`]). Nests.
pub fn suppress() -> SuppressionGuard {
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    SuppressionGuard(())
}

/// True while the current thread is inside a [`suppress`] region.
pub fn suppressed() -> bool {
    SUPPRESS_DEPTH.with(|d| d.get() > 0)
}

/// Draws the next injection decision for `site`. Returns `false`
/// immediately (one relaxed load) when no spec is active or the site is
/// unconfigured; otherwise advances the site's draw counter and hashes
/// `(seed, site, draw)` into a decision. Inside a [`suppress`] region no
/// draw is consumed.
pub fn should_inject(site: FaultSite) -> bool {
    if !injection_enabled() {
        return false;
    }
    if suppressed() {
        return false;
    }
    let spec = match lock_specs()[site.index()] {
        Some(s) => s,
        None => return false,
    };
    let index = DECISIONS[site.index()].fetch_add(1, Ordering::Relaxed);
    let inject = would_inject(spec.seed, site, index, spec.prob);
    if inject {
        INJECTIONS[site.index()].fetch_add(1, Ordering::Relaxed);
    }
    inject
}

/// Draws evaluated at `site` since the last reset.
pub fn decisions(site: FaultSite) -> u64 {
    DECISIONS[site.index()].load(Ordering::Relaxed)
}

/// Faults injected at `site` since the last reset.
pub fn injections(site: FaultSite) -> u64 {
    INJECTIONS[site.index()].load(Ordering::Relaxed)
}

/// Resets every site's draw/injection counters (the spec is unchanged),
/// restarting the deterministic sequence from draw 0.
pub fn reset_counters() {
    for i in 0..N_SITES {
        DECISIONS[i].store(0, Ordering::Relaxed);
        INJECTIONS[i].store(0, Ordering::Relaxed);
    }
}

/// Bounded exponential backoff for retry ladders: 1ms, 2ms, 4ms, 8ms,
/// then capped. Small on purpose — tests retry through this too.
pub fn backoff_delay(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1u64 << attempt.min(3))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The spec/gate is process-global; tests serialize on one lock.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_and_render_round_trip() {
        let _g = guard();
        set_fault_spec(Some("kernel:0.25:42, compile:1:7")).unwrap();
        let spec = active_spec().unwrap();
        assert!(spec.contains("kernel:0.25:42"));
        assert!(spec.contains("compile:1:7"));
        assert!(injection_enabled());
        set_fault_spec(None).unwrap();
        assert!(!injection_enabled());
        assert!(active_spec().is_none());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let _g = guard();
        assert!(set_fault_spec(Some("bogus:0.5:1")).is_err());
        assert!(set_fault_spec(Some("kernel:1.5:1")).is_err());
        assert!(set_fault_spec(Some("kernel:0.5")).is_err());
        assert!(set_fault_spec(Some("kernel:0.5:abc")).is_err());
        assert!(!injection_enabled());
    }

    #[test]
    fn same_seed_same_sequence() {
        let _g = guard();
        set_fault_spec(Some("kernel:0.3:123")).unwrap();
        let a: Vec<bool> = (0..200).map(|_| should_inject(FaultSite::Kernel)).collect();
        set_fault_spec(Some("kernel:0.3:123")).unwrap();
        let b: Vec<bool> = (0..200).map(|_| should_inject(FaultSite::Kernel)).collect();
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        assert!(a.iter().any(|&x| x), "p=0.3 over 200 draws injects");
        assert!(!a.iter().all(|&x| x));

        set_fault_spec(Some("kernel:0.3:124")).unwrap();
        let c: Vec<bool> = (0..200).map(|_| should_inject(FaultSite::Kernel)).collect();
        assert_ne!(a, c, "a different seed draws a different sequence");
        set_fault_spec(None).unwrap();
    }

    #[test]
    fn sites_are_independent_streams() {
        let _g = guard();
        set_fault_spec(Some("kernel:0.5:9,dispatch:0.5:9")).unwrap();
        let k: Vec<bool> = (0..64).map(|_| should_inject(FaultSite::Kernel)).collect();
        let d: Vec<bool> = (0..64)
            .map(|_| should_inject(FaultSite::Dispatch))
            .collect();
        assert_ne!(k, d, "same seed, different sites → different streams");
        assert_eq!(decisions(FaultSite::Kernel), 64);
        assert_eq!(
            injections(FaultSite::Kernel),
            k.iter().filter(|&&x| x).count() as u64
        );
        set_fault_spec(None).unwrap();
    }

    #[test]
    fn extreme_probabilities() {
        let _g = guard();
        set_fault_spec(Some("io:0:1,compile:1:1")).unwrap();
        assert!((0..50).all(|_| !should_inject(FaultSite::Io)));
        assert!((0..50).all(|_| should_inject(FaultSite::Compile)));
        // Unconfigured sites never inject and never advance.
        assert!(!should_inject(FaultSite::Kernel));
        assert_eq!(decisions(FaultSite::Kernel), 0);
        set_fault_spec(None).unwrap();
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let _g = guard();
        set_fault_spec(Some("allreduce:0.1:77")).unwrap();
        let n = 2000;
        let hits = (0..n)
            .filter(|_| should_inject(FaultSite::Allreduce))
            .count();
        let rate = hits as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.03,
            "empirical rate {rate} far from 0.1"
        );
        set_fault_spec(None).unwrap();
    }

    #[test]
    fn suppression_pauses_draws_without_consuming_them() {
        let _g = guard();
        set_fault_spec(Some("kernel:1:5")).unwrap();
        assert!(should_inject(FaultSite::Kernel));
        {
            let _s = suppress();
            assert!(suppressed());
            assert!(!should_inject(FaultSite::Kernel), "protected region");
            {
                let _s2 = suppress();
                assert!(!should_inject(FaultSite::Kernel), "nested");
            }
            assert!(suppressed(), "outer guard still active");
        }
        assert!(!suppressed());
        assert!(should_inject(FaultSite::Kernel), "resumes after the guard");
        assert_eq!(
            decisions(FaultSite::Kernel),
            2,
            "suppressed draws not counted"
        );
        set_fault_spec(None).unwrap();
    }

    #[test]
    fn net_site_parses_and_exposes_params() {
        let _g = guard();
        set_fault_spec(Some("net:0.25:99")).unwrap();
        assert_eq!(site_params(FaultSite::Net), Some((0.25, 99)));
        assert_eq!(site_params(FaultSite::Kernel), None);
        // Per-peer sub-streams: mixing the peer rank into the seed gives
        // independent deterministic sequences per link.
        let a: Vec<bool> = (0..64)
            .map(|i| would_inject(99 ^ mix64(1), FaultSite::Net, i, 0.25))
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| would_inject(99 ^ mix64(2), FaultSite::Net, i, 0.25))
            .collect();
        assert_ne!(a, b, "different peers draw different streams");
        let a2: Vec<bool> = (0..64)
            .map(|i| would_inject(99 ^ mix64(1), FaultSite::Net, i, 0.25))
            .collect();
        assert_eq!(a, a2, "per-peer streams replay exactly");
        // The direct draws above consumed no global indices.
        assert_eq!(decisions(FaultSite::Net), 0);
        set_fault_spec(None).unwrap();
        assert_eq!(site_params(FaultSite::Net), None);
    }

    #[test]
    fn backoff_is_bounded() {
        assert_eq!(backoff_delay(0).as_millis(), 1);
        assert_eq!(backoff_delay(2).as_millis(), 4);
        assert_eq!(backoff_delay(30).as_millis(), 8, "capped");
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("nope"), None);
    }
}
