// No-op mirror of the `s4tf-fault` API, `include!`d by consumer crates
// when their `fault` feature is off. Everything is inert and
// `#[inline(always)]`, so the optimizer deletes the whole layer.
//
// Keep in sync with `crates/fault/src/lib.rs`.

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum FaultSite {
    Dispatch,
    Kernel,
    Compile,
    Allreduce,
    CheckpointIo,
    Io,
    Net,
}

impl FaultSite {
    #[inline(always)]
    pub(crate) fn name(self) -> &'static str {
        match self {
            FaultSite::Dispatch => "dispatch",
            FaultSite::Kernel => "kernel",
            FaultSite::Compile => "compile",
            FaultSite::Allreduce => "allreduce",
            FaultSite::CheckpointIo => "checkpoint_io",
            FaultSite::Io => "io",
            FaultSite::Net => "net",
        }
    }
}

#[inline(always)]
pub(crate) fn injection_enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn should_inject(_site: FaultSite) -> bool {
    false
}

#[inline(always)]
pub(crate) fn backoff_delay(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1u64 << attempt.min(3))
}

#[derive(Debug)]
pub(crate) struct SuppressionGuard(());

#[inline(always)]
pub(crate) fn suppress() -> SuppressionGuard {
    SuppressionGuard(())
}
