//! Internal shim over `s4tf-profile`: with the `profile` feature this
//! re-exports the real profiler; without it, a no-op mirror with the same
//! signatures, so instrumentation sites compile identically and cost
//! nothing.

// Not every build uses every hook; keep the shim surface uniform.
#![allow(dead_code, unused_imports)]

#[cfg(feature = "profile")]
pub(crate) use s4tf_profile::{counter_add, enabled, gauge_set, span, SpanGuard};

#[cfg(not(feature = "profile"))]
mod noop {
    /// Inert stand-in for `s4tf_profile::SpanGuard`.
    pub(crate) struct SpanGuard;

    impl SpanGuard {
        pub(crate) fn annotate(&mut self, _key: &'static str, _value: impl Into<String>) {}
        pub(crate) fn annotate_f64(&mut self, _key: &'static str, _value: f64) {}
        pub(crate) fn is_recording(&self) -> bool {
            false
        }
    }

    #[inline(always)]
    pub(crate) fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub(crate) fn counter_add(_name: &'static str, _delta: u64) {}

    #[inline(always)]
    pub(crate) fn gauge_set(_name: &'static str, _value: f64) {}
}

#[cfg(not(feature = "profile"))]
pub(crate) use noop::*;
