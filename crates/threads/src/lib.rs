//! A work-chunking global thread pool for the CPU kernel suite.
//!
//! Every hot kernel in `s4tf-tensor` (GEMM, conv2d, large elementwise and
//! reduction loops) splits its index range across this pool via
//! [`parallel_chunks`] and joins before returning, so callers never observe
//! concurrency — kernels stay synchronous functions, they just use more of
//! the machine.
//!
//! Design points:
//!
//! - **Lazy, global, std-only.** Workers are spawned on first real
//!   dispatch; the pool is process-wide and never torn down. No
//!   dependencies beyond `std` (and, optionally, `s4tf-profile`).
//! - **Sizing.** The worker count defaults to
//!   [`std::thread::available_parallelism`], overridable with the
//!   `S4TF_NUM_THREADS` environment variable (read once, at first use) or
//!   programmatically with [`set_num_threads`]. A count of `1` forces the
//!   exact single-threaded code path: [`parallel_chunks`] invokes the
//!   closure inline with the full range, byte-for-byte the serial kernel.
//! - **Grain thresholds.** Ranges of at most `min_grain` elements run
//!   inline, so small tensors pay one atomic load and a branch — nothing
//!   else.
//! - **Caller participation.** The dispatching thread executes the first
//!   chunk itself while workers drain the rest, then blocks on a latch.
//! - **Nested calls run inline.** A `parallel_chunks` issued from inside a
//!   pool worker executes serially on that worker, so kernels may freely
//!   compose without deadlocking the (finite) pool.
//! - **Panics propagate.** A panicking chunk poisons nothing: the caller
//!   waits for every chunk to finish, then re-raises the first payload on
//!   its own thread.
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! s4tf_threads::set_num_threads(2);
//! let hits = AtomicUsize::new(0);
//! s4tf_threads::parallel_chunks(0..10_000, 64, |sub| {
//!     hits.fetch_add(sub.len(), Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 10_000);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

mod met;
mod prof;

/// Cached handle for the pool's queue-depth gauge (set under the queue
/// lock, so sampling never racily overshoots).
fn queue_depth_gauge() -> &'static met::Gauge {
    static G: OnceLock<&'static met::Gauge> = OnceLock::new();
    G.get_or_init(|| {
        met::gauge(
            "s4tf_queue_depth{queue=\"threadpool\"}",
            "Chunks waiting in the kernel thread pool queue",
        )
    })
}

/// Cached handle for the worker task-latency histogram.
fn task_latency_hist() -> &'static met::Histogram {
    static H: OnceLock<&'static met::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        met::histogram(
            "s4tf_pool_task_us",
            "Thread-pool chunk execution latency in microseconds",
        )
    })
}

// ------------------------------------------------------------ configuration

/// Configured thread count: 0 = uninitialized (consult the environment).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("S4TF_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads kernels currently split work across (including
/// the calling thread). Initialized on first use from `S4TF_NUM_THREADS`,
/// falling back to [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => {
            register_stats_provider();
            let n = default_threads();
            // Racing initializers compute the same value; only install
            // when still uninitialized so a concurrent `set_num_threads`
            // wins.
            let _ = CONFIGURED.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
            CONFIGURED.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Overrides the thread count at runtime (used by benchmarks and the
/// determinism tests to compare `1` vs `N` in one process). `1` restores
/// the exact single-threaded code path.
///
/// # Panics
/// Panics if `n` is zero.
pub fn set_num_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    register_stats_provider();
    CONFIGURED.store(n, Ordering::Relaxed);
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a pool worker (where nested parallel
/// calls run inline).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

// ------------------------------------------------------------------- stats

/// Lifetime counters for the pool, in the style of
/// `Device::cache_stats()`: cheap to read at any time, never reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently spawned (excludes callers).
    pub workers: usize,
    /// Chunks executed by pool workers.
    pub tasks_run: u64,
    /// Chunks handed to the queue by `parallel_chunks` (excludes the
    /// chunk the caller runs itself).
    pub chunks_dispatched: u64,
    /// Calls that ran inline (below grain, single-threaded, or nested).
    pub inline_runs: u64,
    /// Total wall time workers spent executing chunks, in microseconds.
    pub busy_us: u64,
}

#[derive(Default)]
struct Stats {
    tasks_run: AtomicU64,
    chunks_dispatched: AtomicU64,
    inline_runs: AtomicU64,
    busy_us: AtomicU64,
}

static STATS: Stats = Stats {
    tasks_run: AtomicU64::new(0),
    chunks_dispatched: AtomicU64::new(0),
    inline_runs: AtomicU64::new(0),
    busy_us: AtomicU64::new(0),
};

/// Snapshot of the pool's lifetime counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        workers: POOL.get().map_or(0, |p| *lock(&p.spawned)),
        tasks_run: STATS.tasks_run.load(Ordering::Relaxed),
        chunks_dispatched: STATS.chunks_dispatched.load(Ordering::Relaxed),
        inline_runs: STATS.inline_runs.load(Ordering::Relaxed),
        busy_us: STATS.busy_us.load(Ordering::Relaxed),
    }
}

#[cfg(feature = "profile")]
fn register_stats_provider() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        s4tf_profile::register_pool_stats(|| {
            let s = pool_stats();
            s4tf_profile::PoolStats {
                workers: s.workers,
                tasks_run: s.tasks_run,
                chunks_dispatched: s.chunks_dispatched,
                inline_runs: s.inline_runs,
                busy_us: s.busy_us,
            }
        });
    });
}

#[cfg(not(feature = "profile"))]
fn register_stats_provider() {}

// -------------------------------------------------------------------- pool

/// One queued chunk: a type-erased pointer to the caller's stack-pinned
/// [`BatchState`] plus the sub-range to run. Sound because the caller
/// always blocks until every chunk of its batch has finished.
struct Task {
    batch: *const BatchState<'static>,
    range: Range<usize>,
}

// The batch pointer is only dereferenced while the owning caller is
// parked on the batch latch, which keeps the pointee alive.
unsafe impl Send for Task {}

struct BatchState<'a> {
    f: &'a (dyn Fn(Range<usize>) + Sync),
    /// Queued chunks not yet finished; the caller waits for zero.
    left: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Pool {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Locks ignoring poisoning: chunk panics are caught and re-raised by the
/// dispatching caller, so a poisoned mutex carries no broken invariant.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

impl Pool {
    /// Spawns workers until `target` are alive. Workers are detached and
    /// live for the remainder of the process.
    fn ensure_workers(&'static self, target: usize) {
        let mut spawned = lock(&self.spawned);
        while *spawned < target {
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("s4tf-worker-{id}"))
                .spawn(move || self.worker_main())
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
    }

    fn worker_main(&'static self) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let task = {
                let mut queue = lock(&self.queue);
                loop {
                    if let Some(task) = queue.pop_front() {
                        queue_depth_gauge().set(queue.len() as i64);
                        break task;
                    }
                    queue = match self.available.wait(queue) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            };
            let start = Instant::now();
            {
                let mut span = prof::span("pool.task");
                if span.is_recording() {
                    span.annotate_f64("chunk_len", task.range.len() as f64);
                }
                run_chunk(task);
            }
            let elapsed_us = start.elapsed().as_micros() as u64;
            task_latency_hist().record(elapsed_us);
            STATS.tasks_run.fetch_add(1, Ordering::Relaxed);
            STATS.busy_us.fetch_add(elapsed_us, Ordering::Relaxed);
        }
    }
}

/// Runs one queued chunk, records a panic payload if any, and counts the
/// batch latch down (always, so the caller never deadlocks).
fn run_chunk(task: Task) {
    let batch = unsafe { &*task.batch };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (batch.f)(task.range))) {
        lock(&batch.panic).get_or_insert(payload);
    }
    let mut left = lock(&batch.left);
    *left -= 1;
    if *left == 0 {
        batch.done.notify_all();
    }
}

// --------------------------------------------------------------- chunking

/// Splits `n` items into at most `threads` near-equal contiguous chunks of
/// at least... well, of sizes within one of each other; fewer chunks when
/// `min_grain` would be undershot.
fn chunk_count(n: usize, min_grain: usize, threads: usize) -> usize {
    let grain = min_grain.max(1);
    threads.min(n.div_ceil(grain)).max(1)
}

fn chunk_ranges(range: &Range<usize>, chunks: usize) -> Vec<Range<usize>> {
    let n = range.end - range.start;
    let base = n / chunks;
    let rem = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = range.start;
    for i in 0..chunks {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// How many ways [`parallel_chunks`] would currently split a range of `n`
/// items at the given grain (1 when it would run inline).
pub fn effective_chunks(n: usize, min_grain: usize) -> usize {
    let threads = num_threads();
    if threads <= 1 || in_worker() || n <= min_grain.max(1) {
        1
    } else {
        chunk_count(n, min_grain, threads)
    }
}

// ------------------------------------------------------------- primitives

/// Splits `range` into per-worker chunks, runs `f` on each chunk across
/// the pool (the calling thread takes one chunk itself), and returns once
/// every chunk has finished.
///
/// Runs `f(range)` inline — the exact single-threaded code path — when the
/// range has at most `min_grain` items, the configured thread count is 1,
/// or the caller is itself a pool worker.
///
/// # Panics
/// Re-raises the first panic raised by any chunk, after all chunks have
/// completed.
pub fn parallel_chunks<F>(range: Range<usize>, min_grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let n = range.end.saturating_sub(range.start);
    if n == 0 {
        return;
    }
    let threads = num_threads();
    if threads <= 1 || n <= min_grain.max(1) || in_worker() {
        STATS.inline_runs.fetch_add(1, Ordering::Relaxed);
        f(range);
        return;
    }

    let chunks = chunk_count(n, min_grain, threads);
    let ranges = chunk_ranges(&range, chunks);
    let state = BatchState {
        f: &f,
        left: Mutex::new(chunks - 1),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    // Erase the stack lifetime; the latch wait below keeps `state` (and the
    // borrowed `f`) alive until the last queued chunk has run.
    let erased: *const BatchState<'static> = std::ptr::from_ref(&state).cast();

    let pool = pool();
    pool.ensure_workers(threads - 1);
    {
        let mut queue = lock(&pool.queue);
        for r in &ranges[1..] {
            queue.push_back(Task {
                batch: erased,
                range: r.clone(),
            });
        }
        if prof::enabled() {
            prof::gauge_set("pool.queue_depth", queue.len() as f64);
        }
        queue_depth_gauge().set(queue.len() as i64);
        drop(queue);
        pool.available.notify_all();
    }
    STATS
        .chunks_dispatched
        .fetch_add((chunks - 1) as u64, Ordering::Relaxed);

    // The caller works too; hold its panic until the batch has drained.
    let caller_panic = catch_unwind(AssertUnwindSafe(|| f(ranges[0].clone()))).err();

    let mut left = lock(&state.left);
    while *left > 0 {
        left = match state.done.wait(left) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
    drop(left);

    let queued_panic = lock(&state.panic).take();
    if let Some(payload) = caller_panic.or(queued_panic) {
        resume_unwind(payload);
    }
}

/// Wrapper making a raw pointer shippable to workers; the chunks handed
/// out are disjoint, and the join in [`parallel_chunks`] bounds every
/// access within the caller's borrow.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the bare raw pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits a mutable slice into disjoint chunks and runs
/// `f(start_offset, chunk)` on each across the pool. Chunk boundaries are
/// always multiples of `quantum` (in elements), so row-structured outputs
/// are never split mid-row.
///
/// Inline fallback rules match [`parallel_chunks`].
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `quantum`; re-raises chunk
/// panics like [`parallel_chunks`].
pub fn parallel_chunks_mut<T, F>(data: &mut [T], quantum: usize, min_grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let q = quantum.max(1);
    assert!(
        data.len().is_multiple_of(q),
        "slice length {} is not a multiple of quantum {q}",
        data.len()
    );
    let units = data.len() / q;
    let ptr = SendPtr(data.as_mut_ptr());
    parallel_chunks(0..units, min_grain.div_ceil(q).max(1), |unit_range| {
        let start = unit_range.start * q;
        let len = (unit_range.end - unit_range.start) * q;
        // Disjoint unit ranges → disjoint element sub-slices.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(start), len) };
        f(start, chunk);
    });
}

/// Maps each chunk of `range` to a value on the pool and returns the
/// values in chunk order — the building block for parallel reductions
/// with a deterministic (chunk-index) combine order. A single-chunk run
/// (inline fallback) returns exactly one value covering the whole range,
/// so the serial summation order is preserved bit-for-bit.
pub fn parallel_map_chunks<R, F>(range: Range<usize>, min_grain: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let n = range.end.saturating_sub(range.start);
    if n == 0 {
        return Vec::new();
    }
    let chunks = effective_chunks(n, min_grain);
    if chunks <= 1 {
        STATS.inline_runs.fetch_add(1, Ordering::Relaxed);
        return vec![f(range)];
    }
    let ranges = chunk_ranges(&range, chunks);
    let mut out: Vec<Option<R>> = Vec::with_capacity(chunks);
    out.resize_with(chunks, || None);
    let ptr = SendPtr(out.as_mut_ptr());
    let ranges_ref = &ranges;
    parallel_chunks(0..chunks, 1, |idx_range| {
        for i in idx_range {
            let value = f(ranges_ref[i].clone());
            // Disjoint indices → disjoint slots.
            unsafe { *ptr.get().add(i) = Some(value) };
        }
    });
    out.into_iter()
        .map(|v| v.expect("every chunk ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    // The pool's thread count is process-global; tests that flip it live
    // in `tests/pool.rs` behind a serializing lock. Unit tests here only
    // touch pure helpers.
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [1usize, 2, 7, 64, 1000] {
            for chunks in 1..=8usize.min(n) {
                let ranges = chunk_ranges(&(10..10 + n), chunks);
                assert_eq!(ranges.len(), chunks);
                let mut next = 10;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.len() >= n / chunks);
                    next = r.end;
                }
                assert_eq!(next, 10 + n);
            }
        }
    }

    #[test]
    fn chunk_count_respects_grain() {
        assert_eq!(chunk_count(100, 1, 4), 4);
        assert_eq!(chunk_count(100, 60, 4), 2);
        assert_eq!(chunk_count(100, 100, 4), 1);
        assert_eq!(chunk_count(3, 1, 8), 3);
        assert_eq!(chunk_count(1, 0, 8), 1);
    }
}
