//! Behavioral tests for the global work-chunking pool.
//!
//! The configured thread count is process-global state, so every test
//! here serializes on one lock (the same pattern as the profiler's
//! test suite) and restores a known count before asserting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use s4tf_threads::{
    in_worker, num_threads, parallel_chunks, parallel_chunks_mut, parallel_map_chunks, pool_stats,
    set_num_threads,
};

fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn covers_every_index_exactly_once() {
    let _g = serialize();
    set_num_threads(4);
    let mut counts = vec![0u8; 10_007];
    parallel_chunks_mut(&mut counts, 1, 64, |_, chunk| {
        for c in chunk {
            *c += 1;
        }
    });
    assert!(counts.iter().all(|&c| c == 1), "each index visited once");
}

#[test]
fn single_thread_runs_inline_on_caller() {
    let _g = serialize();
    set_num_threads(1);
    assert_eq!(num_threads(), 1);
    let caller = std::thread::current().id();
    let calls = AtomicUsize::new(0);
    let before = pool_stats().inline_runs;
    parallel_chunks(0..100_000, 1, |sub| {
        assert_eq!(sub, 0..100_000, "one chunk covering the whole range");
        assert_eq!(std::thread::current().id(), caller, "ran inline");
        calls.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(calls.load(Ordering::Relaxed), 1);
    assert!(pool_stats().inline_runs > before);
}

#[test]
fn below_grain_runs_inline() {
    let _g = serialize();
    set_num_threads(4);
    let caller = std::thread::current().id();
    parallel_chunks(0..64, 64, |sub| {
        assert_eq!(sub, 0..64);
        assert_eq!(std::thread::current().id(), caller);
    });
}

#[test]
fn panics_propagate_and_pool_survives() {
    let _g = serialize();
    set_num_threads(4);
    let result = std::panic::catch_unwind(|| {
        parallel_chunks(0..10_000, 16, |sub| {
            if sub.contains(&7_777) {
                panic!("chunk exploded at 7777");
            }
        });
    });
    let payload = result.expect_err("panic must reach the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("chunk exploded"), "payload preserved: {msg}");

    // The pool is still fully operational afterwards.
    let sum = parallel_map_chunks(0..1_000, 16, |sub| sub.sum::<usize>())
        .into_iter()
        .sum::<usize>();
    assert_eq!(sum, 1_000 * 999 / 2);
}

#[test]
fn nested_calls_run_inline_without_deadlock() {
    let _g = serialize();
    set_num_threads(4);
    let total = AtomicUsize::new(0);
    parallel_chunks(0..4_096, 16, |outer| {
        // A kernel invoked from inside a chunk: must complete without
        // blocking on the (possibly busy) pool.
        let from_worker = in_worker();
        let inner_calls = AtomicUsize::new(0);
        parallel_chunks(outer.clone(), 16, |inner| {
            inner_calls.fetch_add(1, Ordering::Relaxed);
            total.fetch_add(inner.len(), Ordering::Relaxed);
        });
        if from_worker {
            // On a worker the nested call may not split further.
            assert_eq!(
                inner_calls.load(Ordering::Relaxed),
                1,
                "nested call on a worker ran as one inline chunk"
            );
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4_096);
}

#[test]
fn map_chunks_is_ordered_and_deterministic() {
    let _g = serialize();
    set_num_threads(4);
    let parts = parallel_map_chunks(100..1_100, 10, |sub| sub.start);
    let mut sorted = parts.clone();
    sorted.sort_unstable();
    assert_eq!(parts, sorted, "results arrive in chunk order");
    assert_eq!(parts[0], 100);

    set_num_threads(1);
    let single = parallel_map_chunks(100..1_100, 10, |sub| sub.len());
    assert_eq!(single, vec![1_000], "one chunk when single-threaded");
}

#[test]
fn quantum_alignment_is_respected() {
    let _g = serialize();
    set_num_threads(4);
    let mut data = vec![0u32; 3 * 1_000];
    parallel_chunks_mut(&mut data, 3, 8, |start, chunk| {
        assert_eq!(start % 3, 0, "chunk start aligned to quantum");
        assert_eq!(chunk.len() % 3, 0, "chunk length aligned to quantum");
        for v in chunk {
            *v = 1;
        }
    });
    assert!(data.iter().all(|&v| v == 1));
}

#[test]
fn stats_count_dispatches() {
    let _g = serialize();
    set_num_threads(4);
    let before = pool_stats();
    parallel_chunks(0..100_000, 8, |sub| {
        std::hint::black_box(sub.len());
    });
    let after = pool_stats();
    assert!(
        after.chunks_dispatched > before.chunks_dispatched,
        "queued chunks counted"
    );
    assert!(after.workers >= 1, "workers spawned");
}
