//! SGD updates do zero allocator calls per step (ISSUE 5 satellite):
//! `move_along_scaled` / `scale_assign` / `add_scaled_assign` mutate the
//! model and velocity buffers through unique borrows, so once the
//! optimizer state exists, stepping touches the allocator not at all.
//!
//! Lives in its own integration-test binary: `diag::memory_stats()`
//! counters are process-wide atomics, and the measurement window must not
//! overlap other tests' allocations.
#![cfg(feature = "diag")]

use s4tf_diag::memory_stats;
use s4tf_nn::{Optimizer, Sgd};
use s4tf_tensor::Tensor;

#[test]
fn sgd_steps_are_allocation_free() {
    let n = 4096;
    let mut model = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n]);
    let grad = Tensor::from_vec(vec![0.5f32; n], &[n]);

    // --- plain SGD ---------------------------------------------------
    let mut sgd = Sgd::<Tensor<f32>>::new(0.01);
    sgd.update(&mut model, &grad); // warm-up: nothing to materialize even here
    let before = memory_stats();
    for _ in 0..100 {
        sgd.update(&mut model, &grad);
    }
    let after = memory_stats();
    assert_eq!(
        after.allocs, before.allocs,
        "plain SGD steps must not call the allocator"
    );
    assert_eq!(after.frees, before.frees);
    assert_eq!(after.live_bytes, before.live_bytes);

    // --- SGD with momentum -------------------------------------------
    let mut sgd = Sgd::<Tensor<f32>>::with_momentum(0.01, 0.9);
    // Warm-up materializes the velocity buffer (the one allowed alloc).
    sgd.update(&mut model, &grad);
    let before = memory_stats();
    for _ in 0..100 {
        sgd.update(&mut model, &grad);
    }
    let after = memory_stats();
    assert_eq!(
        after.allocs, before.allocs,
        "momentum SGD steps must not call the allocator once velocity exists"
    );
    assert_eq!(after.frees, before.frees);
    assert_eq!(after.live_bytes, before.live_bytes);

    // The updates really happened (weights moved off their start values).
    assert!(model.as_slice()[1] < 1.0);
}
