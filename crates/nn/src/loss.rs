//! Loss functions with explicit VJPs.

use s4tf_runtime::DTensor;

/// A loss pullback: maps the loss cotangent (a scalar seed) to the
/// prediction cotangent.
pub type LossPullback = Box<dyn Fn(&DTensor) -> DTensor + Send>;

/// Softmax cross-entropy with one-hot labels, mean-reduced over the batch:
/// `L = −(1/B) Σᵢ Σ_c labels[i,c] · log_softmax(logits)[i,c]`.
///
/// Returns the scalar loss and the pullback with respect to the logits
/// (labels are constants). The gradient is the classic
/// `(softmax(logits) − labels) / B`.
///
/// # Panics
/// Panics unless `logits` and `labels` are rank 2 with identical dims.
pub fn softmax_cross_entropy(logits: &DTensor, labels: &DTensor) -> (DTensor, LossPullback) {
    assert_eq!(logits.dims().len(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.dims(), labels.dims(), "labels shape mismatch");
    let batch = logits.dims()[0] as f32;
    let log_probs = logits.log_softmax();
    let loss = labels.mul(&log_probs).sum().neg().div_scalar(batch);
    let grad = logits.softmax().sub(labels).div_scalar(batch);
    (loss, Box::new(move |seed: &DTensor| grad.mul(seed)))
}

/// Mean-squared error, mean-reduced over all elements:
/// `L = mean((pred − target)²)`.
///
/// Returns the scalar loss and the pullback with respect to `pred`.
///
/// # Panics
/// Panics if the dims differ.
pub fn mse(pred: &DTensor, target: &DTensor) -> (DTensor, LossPullback) {
    assert_eq!(pred.dims(), target.dims(), "mse shape mismatch");
    let n = pred.num_elements() as f32;
    let diff = pred.sub(target);
    let loss = diff.square().mean();
    let grad = diff.mul_scalar(2.0 / n);
    (loss, Box::new(move |seed: &DTensor| grad.mul(seed)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let d = Device::naive();
        // Extremely confident, correct logits.
        let logits = DTensor::from_tensor(
            Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]),
            &d,
        );
        let labels = DTensor::from_tensor(Tensor::one_hot(&[0, 1], 3), &d);
        let (loss, _) = softmax_cross_entropy(&logits, &labels);
        assert!(loss.to_tensor().scalar_value() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_ln_classes() {
        let d = Device::naive();
        let logits = DTensor::from_tensor(Tensor::zeros(&[4, 10]), &d);
        let labels = DTensor::from_tensor(Tensor::one_hot(&[0, 3, 5, 9], 10), &d);
        let (loss, _) = softmax_cross_entropy(&logits, &labels);
        assert!((loss.to_tensor().scalar_value() - 10f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let d = Device::naive();
        let base = Tensor::<f32>::randn(&[3, 4], &mut rng);
        let labels = DTensor::from_tensor(Tensor::one_hot(&[1, 0, 3], 4), &d);
        let logits = DTensor::from_tensor(base.clone(), &d);
        let (_, pb) = softmax_cross_entropy(&logits, &labels);
        let g = pb(&logits.scalar_like(1.0)).to_tensor();
        let eps = 1e-3;
        for i in 0..12 {
            let mut lp = base.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = base.clone();
            lm.as_mut_slice()[i] -= eps;
            let fp = softmax_cross_entropy(&DTensor::from_tensor(lp, &d), &labels)
                .0
                .to_tensor()
                .scalar_value();
            let fm = softmax_cross_entropy(&DTensor::from_tensor(lm, &d), &labels)
                .0
                .to_tensor()
                .scalar_value();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - g.as_slice()[i]).abs() < 1e-3, "dlogits[{i}]");
        }
    }

    #[test]
    fn mse_values_and_gradient() {
        let d = Device::naive();
        let pred = DTensor::from_tensor(Tensor::from_vec(vec![1.0, 2.0], &[2]), &d);
        let target = DTensor::from_tensor(Tensor::from_vec(vec![0.0, 4.0], &[2]), &d);
        let (loss, pb) = mse(&pred, &target);
        assert!((loss.to_tensor().scalar_value() - 2.5).abs() < 1e-6);
        let g = pb(&pred.scalar_like(1.0)).to_tensor();
        // d/dpred mean((p-t)²) = 2(p-t)/n
        assert_eq!(g.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn losses_agree_across_devices() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let logits_t = Tensor::<f32>::randn(&[4, 5], &mut rng);
        let labels_t: Tensor<f32> = Tensor::one_hot(&[0, 1, 2, 3], 5);
        let mut values = Vec::new();
        for d in [Device::naive(), Device::eager(), Device::lazy()] {
            let logits = DTensor::from_tensor(logits_t.clone(), &d);
            let labels = DTensor::from_tensor(labels_t.clone(), &d);
            let (loss, pb) = softmax_cross_entropy(&logits, &labels);
            let g = pb(&loss.ones_like());
            values.push((loss.to_tensor().scalar_value(), g.to_tensor()));
        }
        for (l, g) in &values[1..] {
            assert!((l - values[0].0).abs() < 1e-6);
            assert!(g.allclose(&values[0].1, 1e-6));
        }
    }
}
