//! Evaluation metrics.

use s4tf_tensor::Tensor;

/// Top-1 classification accuracy of logits against integer labels.
///
/// # Panics
/// Panics unless `logits` is `[batch, classes]` with `batch == labels.len()`.
pub fn accuracy(logits: &Tensor<f32>, labels: &[usize]) -> f64 {
    assert_eq!(logits.rank(), 2, "logits must be [batch, classes]");
    assert_eq!(logits.dims()[0], labels.len(), "batch size mismatch");
    let predictions = logits.argmax_axis(1);
    let correct = predictions
        .as_slice()
        .iter()
        .zip(labels)
        .filter(|(&p, &l)| p as usize == l)
        .count();
    correct as f64 / labels.len().max(1) as f64
}

/// A streaming average (for loss curves over minibatches).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// The current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.0, // → 1 ✓
                0.8, 0.1, 0.1, // → 0 ✓
                0.1, 0.2, 0.7, // → 2 ✗ (label 1)
                0.3, 0.3, 0.4, // → 2 ✓
            ],
            &[4, 3],
        );
        let acc = accuracy(&logits, &[1, 0, 1, 2]);
        assert!((acc - 0.75).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_zero_accuracy() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(2.0);
        m.push(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
    }
}
