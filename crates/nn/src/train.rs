//! The training loop (paper Figure 7), with the automatic
//! `LazyTensorBarrier()` after the optimizer update (paper §3.4: "a
//! training-loop library can automatically call `LazyTensorBarrier()` after
//! the optimizer update step on behalf of the user").

use crate::checkpoint::Checkpointable;
use crate::diag;
use crate::fault;
use crate::layer::Layer;
use crate::loss::softmax_cross_entropy;
use crate::met;
use crate::optimizer::Optimizer;
use crate::prof;
use s4tf_core::{AdditiveArithmetic, LossValue, VectorSpace};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::{panic_message, RuntimeError, Tensor};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Records one step into the metrics registry (step-time and loss
/// histograms, step/example counters) — live export surface, recorded on
/// every step whether or not the `S4TF_METRICS_FILE` stream is active.
fn record_step_instruments(loss: f64, examples: usize, elapsed: std::time::Duration) {
    if !met::enabled() {
        return;
    }
    fn h(name: &str, help: &'static str) -> &'static met::Histogram {
        met::histogram(name, help)
    }
    static STEP: std::sync::OnceLock<&'static met::Histogram> = std::sync::OnceLock::new();
    static LOSS: std::sync::OnceLock<&'static met::Histogram> = std::sync::OnceLock::new();
    static STEPS: std::sync::OnceLock<&'static met::Counter> = std::sync::OnceLock::new();
    static EXAMPLES: std::sync::OnceLock<&'static met::Counter> = std::sync::OnceLock::new();
    STEP.get_or_init(|| {
        h(
            "s4tf_train_step_us",
            "Wall time of one training step, microseconds",
        )
    })
    .record(elapsed.as_micros() as u64);
    // The histogram is integer-valued; losses live near zero, so scale to
    // micro-loss units to keep sub-unit resolution (p50 of 0.3 → 300000).
    LOSS.get_or_init(|| {
        h(
            "s4tf_train_loss_micros",
            "Per-step training loss, scaled by 1e6 (micro-loss units)",
        )
    })
    .record((loss.max(0.0) * 1e6) as u64);
    STEPS
        .get_or_init(|| met::counter("s4tf_train_steps_total", "Training steps completed"))
        .inc();
    EXAMPLES
        .get_or_init(|| {
            met::counter(
                "s4tf_train_examples_total",
                "Training examples consumed across all steps",
            )
        })
        .add(examples as u64);
}

/// Emits one [`diag::StepRecord`] to the `S4TF_METRICS_FILE` stream.
///
/// Called after the barrier, so on the lazy device the gradient is already
/// materialized and the host-side norm read does not pollute the next
/// trace. The peak-bytes counter is reset afterwards so each record reports
/// a per-step high-water mark.
fn emit_step_metrics<G: VectorSpace>(
    loss: f64,
    gradients: &G,
    examples: usize,
    elapsed: std::time::Duration,
    backend: &'static str,
) {
    let grad_norm = gradients.norm_squared().sqrt();
    let secs = elapsed.as_secs_f64();
    let stats = diag::memory_stats();
    let record = diag::StepRecord {
        step: diag::next_step(),
        loss,
        grad_norm,
        examples_per_sec: if secs > 0.0 {
            examples as f64 / secs
        } else {
            0.0
        },
        peak_bytes: stats.peak_bytes,
        live_bytes: stats.live_bytes,
        backend,
    };
    diag::event!(
        "train.step",
        step = record.step,
        loss = record.loss,
        grad_norm = record.grad_norm,
        backend = backend,
    );
    diag::record_step(&record);
    diag::reset_peak_bytes();
}

/// One classifier training step (paper Figure 7, one loop body):
/// forward → softmax cross-entropy → pullback → in-place optimizer update →
/// barrier. Returns the minibatch loss.
///
/// The gradients are a first-class `Model::TangentVector` value (paper
/// §4.2: "both the model and its gradient are first class values").
pub fn train_classifier_step<L, O>(
    model: &mut L,
    optimizer: &mut O,
    images: &DTensor,
    labels: &DTensor,
) -> f64
where
    L: Layer,
    O: Optimizer<L>,
{
    let mut span = prof::span("train.step");
    let start = std::time::Instant::now();
    let device = images.device();
    let (logits, pullback) = model.forward_with_pullback(images);
    let (loss, loss_pullback) = softmax_cross_entropy(&logits, labels);
    let dlogits = loss_pullback(&loss.scalar_like(1.0));
    let (gradients, _dinput) = pullback(&dlogits);
    optimizer.update(model, &gradients);
    // The automatic barrier: cut (and on the lazy device, compile+run) the
    // step's trace, materializing loss and updated parameters.
    device.barrier();
    let loss = loss.loss_value();
    if span.is_recording() {
        span.annotate_f64("loss", loss);
    }
    let examples = images.dims().first().copied().unwrap_or(1);
    record_step_instruments(loss, examples, start.elapsed());
    if diag::metrics_enabled() {
        emit_step_metrics(loss, &gradients, examples, start.elapsed(), device.kind());
    }
    loss
}

/// Like [`train_classifier_step`] but without reading the loss back — for
/// throughput measurements where a host read per step would serialize the
/// eager pipeline beyond what the experiment intends.
pub fn train_classifier_step_no_metrics<L, O>(
    model: &mut L,
    optimizer: &mut O,
    images: &DTensor,
    labels: &DTensor,
) where
    L: Layer,
    O: Optimizer<L>,
{
    let _span = prof::span("train.step");
    let device = images.device();
    let (logits, pullback) = model.forward_with_pullback(images);
    let (loss, loss_pullback) = softmax_cross_entropy(&logits, labels);
    let dlogits = loss_pullback(&loss.scalar_like(1.0));
    let (gradients, _dinput) = pullback(&dlogits);
    optimizer.update(model, &gradients);
    device.barrier();
}

/// How a data-parallel step reacts to a failing shard (a kernel fault, a
/// poisoned tensor, or an injected `allreduce` fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Surface the first shard failure as the step's error.
    FailFast,
    /// Drop failed shards and renormalize the gradient average over the
    /// surviving shards (the classic elastic all-reduce degradation). The
    /// step only fails if *every* shard fails.
    DropShard,
    /// Re-run each failed shard up to this many extra attempts (with
    /// exponential backoff) before giving up on the step.
    Retry(u32),
}

/// Drains any error state the device accumulated during a handled fault so
/// it cannot leak into a later, unrelated step.
fn drain_device_errors(device: &Device) {
    let _ = device.sync_checked();
}

/// One *synchronous data-parallel* classifier step across worker threads —
/// the training regime of the paper's Table 1 ("hosts synchronously
/// training a single model in data-parallel fashion"), with real threads
/// standing in for accelerator cores.
///
/// Each shard computes its gradient against the same model replica in
/// parallel; the gradients are all-reduced (averaged — gradients are
/// first-class `TangentVector` values, §4.2, so the reduction is ordinary
/// value arithmetic) and applied once. With equal shard sizes this is
/// *mathematically identical* to one large-batch step, which the tests
/// assert.
///
/// Returns the mean of the shard losses.
///
/// # Panics
/// Panics if `shards` is empty or if any shard fails (this is the
/// [`FaultPolicy::FailFast`] wrapper over
/// [`data_parallel_classifier_step_with_policy`]).
pub fn data_parallel_classifier_step<L, O>(
    model: &mut L,
    optimizer: &mut O,
    shards: &[(DTensor, DTensor)],
) -> f64
where
    L: Layer + Checkpointable + Sync,
    L::TangentVector: Send,
    O: Optimizer<L>,
{
    data_parallel_classifier_step_with_policy(model, optimizer, shards, FaultPolicy::FailFast)
        .unwrap_or_else(|e| panic!("data-parallel step failed: {e}"))
}

/// [`data_parallel_classifier_step`] with explicit fault handling.
///
/// The step is *transactional*: on `Err` the model is left with its
/// pre-step parameters (a failed optimizer update is rolled back from a
/// host-side snapshot), so a training loop can simply skip or retry the
/// step. The snapshot is only taken when fault injection is active or a
/// shard already failed — the fault-free fast path does no extra work
/// beyond a cheap per-shard gradient probe.
///
/// Shard workers catch kernel panics (and observe deferred/poisoned
/// values, which surface at the probe with their original op attribution)
/// and report them as typed [`RuntimeError`]s rather than tearing down the
/// whole step — the join handles can then only fail on bugs outside the
/// guarded region, which are re-raised verbatim.
pub fn data_parallel_classifier_step_with_policy<L, O>(
    model: &mut L,
    optimizer: &mut O,
    shards: &[(DTensor, DTensor)],
    policy: FaultPolicy,
) -> Result<f64, RuntimeError>
where
    L: Layer + Checkpointable + Sync,
    L::TangentVector: Send,
    O: Optimizer<L>,
{
    assert!(!shards.is_empty(), "data-parallel step needs ≥1 shard");
    let mut span = prof::span("train.step");
    let start = std::time::Instant::now();
    if span.is_recording() {
        span.annotate_f64("shards", shards.len() as f64);
    }
    let device = shards[0].0.device();
    let backend = device.kind();

    let model_ref = &*model;
    // One shard's forward/backward, fault-guarded. The loss read and the
    // gradient-norm probe force observation, so deferred faults (poisoned
    // eager slots, naive poison values) surface *here*, inside the guard,
    // carrying their original op attribution in the panic message.
    let compute = |images: &DTensor, labels: &DTensor| {
        catch_unwind(AssertUnwindSafe(|| {
            let (logits, pullback) = model_ref.forward_with_pullback(images);
            let (loss, loss_pullback) = softmax_cross_entropy(&logits, labels);
            let dlogits = loss_pullback(&loss.scalar_like(1.0));
            let (gradients, _) = pullback(&dlogits);
            // Observation probe in a protected region: existing poison
            // still surfaces (and is caught above), but the probe's own
            // ops draw no fresh injections.
            let _protect = fault::suppress();
            let loss = loss.loss_value();
            let _probe = gradients.norm_squared();
            (loss, gradients)
        }))
        .map_err(|payload| {
            let e = RuntimeError::kernel("data_parallel.shard", backend, panic_message(&*payload));
            diag::event!("fault.shard_failed", op = e.op, backend = backend);
            e
        })
    };

    type ShardResult<T> = Result<(f64, T), RuntimeError>;
    let mut results: Vec<ShardResult<L::TangentVector>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|(images, labels)| scope.spawn(move || compute(images, labels)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    // The all-reduce itself can fail (site `allreduce`): a lost shard
    // contribution, drawn per shard.
    for (k, r) in results.iter_mut().enumerate() {
        if r.is_ok() && fault::should_inject(fault::FaultSite::Allreduce) {
            diag::event!(
                "fault.injected",
                site = "allreduce",
                op = "allreduce.mean",
                backend = backend,
                shard = k,
            );
            *r = Err(RuntimeError::injected(
                "allreduce.mean",
                backend,
                "allreduce",
            ));
        }
    }

    let saw_failure = results.iter().any(|r| r.is_err());
    match policy {
        FaultPolicy::FailFast => {
            if let Some(e) = results.iter().find_map(|r| r.as_ref().err()) {
                let e = e.clone();
                drain_device_errors(&device);
                return Err(e);
            }
        }
        FaultPolicy::Retry(attempts) => {
            for (k, r) in results.iter_mut().enumerate() {
                let mut attempt = 0;
                while r.is_err() && attempt < attempts {
                    std::thread::sleep(fault::backoff_delay(attempt));
                    diag::event!("fault.shard_retry", shard = k, attempt = attempt + 1);
                    *r = compute(&shards[k].0, &shards[k].1).and_then(|ok| {
                        if fault::should_inject(fault::FaultSite::Allreduce) {
                            Err(RuntimeError::injected(
                                "allreduce.mean",
                                backend,
                                "allreduce",
                            ))
                        } else {
                            Ok(ok)
                        }
                    });
                    attempt += 1;
                }
            }
            if let Some(e) = results.iter().find_map(|r| r.as_ref().err()) {
                let e = e.clone();
                drain_device_errors(&device);
                return Err(e);
            }
        }
        FaultPolicy::DropShard => {
            for (k, r) in results.iter().enumerate() {
                if let Err(e) = r {
                    diag::event!(
                        "fault.shard_dropped",
                        shard = k,
                        op = e.op,
                        backend = backend,
                    );
                }
            }
            if results.iter().all(|r| r.is_err()) {
                let e = results
                    .into_iter()
                    .next()
                    .and_then(|r| r.err())
                    .expect("all shards failed");
                drain_device_errors(&device);
                return Err(e);
            }
        }
    }

    // All-reduce: average the shard gradients over the survivors. Under
    // `DropShard` the mean is renormalized by the survivor count, so the
    // update stays an unbiased average of the gradients that made it.
    //
    // From here on we are in the recovery/apply half of the step — a
    // protected region. Chaos specs stress the shard workers; the
    // reduction, validation probes, optimizer update and rollback draw no
    // fresh injections (real faults still propagate as poisoned values
    // and are caught by the probes below). The guard is thread-local, so
    // on the eager device only host-side draws are paused.
    let _protect = fault::suppress();
    let survivors = results.iter().filter(|r| r.is_ok()).count();
    let mut losses = 0.0;
    let mut summed: Option<L::TangentVector> = None;
    for (loss, grad) in results.into_iter().flatten() {
        losses += loss;
        summed = Some(match summed.take() {
            None => grad,
            Some(acc) => acc.adding(&grad),
        });
    }
    let mean_grad = summed
        .expect("≥1 surviving shard")
        .scaled_by(1.0 / survivors as f64);

    // The reduction and the update below dispatch fresh ops that can fault
    // too. Only pay for validation when faults are actually possible.
    let must_validate = fault::injection_enabled() || saw_failure;
    if must_validate {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| mean_grad.norm_squared())) {
            let e = RuntimeError::kernel("allreduce.mean", backend, panic_message(&*payload));
            drain_device_errors(&device);
            return Err(e);
        }
    }
    let snapshot: Option<BTreeMap<String, Tensor<f32>>> = if must_validate {
        let mut snap = BTreeMap::new();
        let mut snap_err: Option<RuntimeError> = None;
        model.for_each_param("", &mut |name, t| {
            if snap_err.is_none() {
                match t.to_tensor_checked() {
                    Ok(host) => {
                        snap.insert(name.to_string(), host);
                    }
                    Err(e) => snap_err = Some(e),
                }
            }
        });
        if let Some(e) = snap_err {
            drain_device_errors(&device);
            return Err(e);
        }
        Some(snap)
    } else {
        None
    };

    optimizer.update(model, &mean_grad);
    device.barrier();

    if let Some(snap) = &snapshot {
        // Probe every parameter: a fault during the update phase poisons
        // some weight, and the model must not carry it into the next step.
        let mut probe_err: Option<RuntimeError> = None;
        model.for_each_param("", &mut |_, t| {
            if probe_err.is_none() {
                if let Err(e) = t.to_tensor_checked() {
                    probe_err = Some(e);
                }
            }
        });
        if let Some(e) = probe_err {
            model.for_each_param_mut("", &mut |name, slot| {
                if let Some(saved) = snap.get(name) {
                    *slot = DTensor::from_tensor(saved.clone(), &device);
                }
            });
            diag::event!("fault.step_rolled_back", op = e.op, backend = backend);
            drain_device_errors(&device);
            return Err(e);
        }
    }
    if must_validate {
        drain_device_errors(&device);
    }

    let loss = losses / survivors as f64;
    if span.is_recording() {
        span.annotate_f64("loss", loss);
    }
    let examples: usize = shards
        .iter()
        .map(|(x, _)| x.dims().first().copied().unwrap_or(1))
        .sum();
    record_step_instruments(loss, examples, start.elapsed());
    if diag::metrics_enabled() {
        emit_step_metrics(loss, &mean_grad, examples, start.elapsed(), backend);
    }
    Ok(loss)
}

/// One regression training step with mean-squared error.
pub fn train_regressor_step<L, O>(
    model: &mut L,
    optimizer: &mut O,
    inputs: &DTensor,
    targets: &DTensor,
) -> f64
where
    L: Layer,
    O: Optimizer<L>,
{
    let mut span = prof::span("train.step");
    let start = std::time::Instant::now();
    let device = inputs.device();
    let (pred, pullback) = model.forward_with_pullback(inputs);
    let (loss, loss_pullback) = crate::loss::mse(&pred, targets);
    let dpred = loss_pullback(&loss.scalar_like(1.0));
    let (gradients, _) = pullback(&dpred);
    optimizer.update(model, &gradients);
    device.barrier();
    let loss = loss.loss_value();
    if span.is_recording() {
        span.annotate_f64("loss", loss);
    }
    let examples = inputs.dims().first().copied().unwrap_or(1);
    record_step_instruments(loss, examples, start.elapsed());
    if diag::metrics_enabled() {
        emit_step_metrics(loss, &gradients, examples, start.elapsed(), device.kind());
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layers::Dense;
    use crate::metrics::accuracy;
    use crate::optimizer::Sgd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    /// A linearly separable 2-class problem.
    fn toy_data(device: &Device) -> (DTensor, DTensor, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let n = 64;
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            data.push(center + Tensor::<f32>::randn(&[1], &mut rng).scalar_value() * 0.5);
            data.push(center * 0.5 + Tensor::<f32>::randn(&[1], &mut rng).scalar_value() * 0.5);
            labels.push(class);
        }
        let x = DTensor::from_tensor(Tensor::from_vec(data, &[n, 2]), device);
        let y = DTensor::from_tensor(Tensor::one_hot(&labels, 2), device);
        (x, y, labels)
    }

    #[test]
    fn classifier_trains_on_every_device() {
        for device in [Device::naive(), Device::eager(), Device::lazy()] {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let (x, y, labels) = toy_data(&device);
            let mut model = Dense::new(2, 2, Activation::Identity, &device, &mut rng);
            let mut opt = Sgd::new(0.5);
            let first_loss = train_classifier_step(&mut model, &mut opt, &x, &y);
            let mut last_loss = first_loss;
            for _ in 0..30 {
                last_loss = train_classifier_step(&mut model, &mut opt, &x, &y);
            }
            assert!(
                last_loss < first_loss * 0.5,
                "{}: loss {first_loss} → {last_loss}",
                device.kind()
            );
            let logits = model.forward(&x).to_tensor();
            assert!(
                accuracy(&logits, &labels) > 0.95,
                "{}: accuracy too low",
                device.kind()
            );
        }
    }

    #[test]
    fn lazy_training_reuses_one_compiled_program() {
        let device = Device::lazy();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let (x, y, _) = toy_data(&device);
        let mut model = Dense::new(2, 2, Activation::Identity, &device, &mut rng);
        let mut opt = Sgd::new(0.1);
        for _ in 0..10 {
            train_classifier_step_no_metrics(&mut model, &mut opt, &x, &y);
        }
        if let Device::Lazy(ctx) = &device {
            let stats = ctx.cache().stats();
            assert_eq!(
                stats.misses, 1,
                "identical step traces must compile exactly once"
            );
            assert_eq!(stats.hits, 9);
        }
    }

    #[test]
    fn data_parallel_equals_large_batch() {
        // With equal shard sizes and mean-reduced losses, K-way synchronous
        // data parallelism is mathematically identical to one large-batch
        // step. Run both and compare the resulting models exactly.
        let device = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let (x, y, _) = toy_data(&device);
        let reference_init = Dense::new(2, 2, Activation::Tanh, &device, &mut rng);

        // Large-batch step.
        let mut single = reference_init.clone();
        let mut opt1 = Sgd::new(0.3);
        train_classifier_step(&mut single, &mut opt1, &x, &y);

        // 4-way sharded step over the same 64 samples.
        let xt = x.to_tensor();
        let yt = y.to_tensor();
        let shards: Vec<(DTensor, DTensor)> = (0..4)
            .map(|k| {
                (
                    DTensor::from_tensor(xt.slice_axis(0, k * 16, 16), &device),
                    DTensor::from_tensor(yt.slice_axis(0, k * 16, 16), &device),
                )
            })
            .collect();
        let mut parallel = reference_init.clone();
        let mut opt2 = Sgd::new(0.3);
        let loss = data_parallel_classifier_step(&mut parallel, &mut opt2, &shards);
        assert!(loss.is_finite());

        assert!(
            single
                .weight
                .to_tensor()
                .allclose(&parallel.weight.to_tensor(), 1e-6),
            "data-parallel must equal large-batch"
        );
        assert!(single
            .bias
            .to_tensor()
            .allclose(&parallel.bias.to_tensor(), 1e-6));
    }

    #[test]
    fn data_parallel_training_converges() {
        let device = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let (x, y, labels) = toy_data(&device);
        let xt = x.to_tensor();
        let yt = y.to_tensor();
        let shards: Vec<(DTensor, DTensor)> = (0..2)
            .map(|k| {
                (
                    DTensor::from_tensor(xt.slice_axis(0, k * 32, 32), &device),
                    DTensor::from_tensor(yt.slice_axis(0, k * 32, 32), &device),
                )
            })
            .collect();
        let mut model = Dense::new(2, 2, Activation::Identity, &device, &mut rng);
        let mut opt = Sgd::new(0.5);
        for _ in 0..30 {
            data_parallel_classifier_step(&mut model, &mut opt, &shards);
        }
        let logits = model.forward(&x).to_tensor();
        assert!(accuracy(&logits, &labels) > 0.95);
    }

    #[test]
    fn regressor_trains() {
        let device = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        // Fit y = 2x + 1.
        let xs = Tensor::<f32>::rand_uniform(&[32, 1], -1.0, 1.0, &mut rng);
        let ys = xs.mul_scalar(2.0).add_scalar(1.0);
        let x = DTensor::from_tensor(xs, &device);
        let y = DTensor::from_tensor(ys, &device);
        let mut model = Dense::new(1, 1, Activation::Identity, &device, &mut rng);
        let mut opt = Sgd::new(0.5);
        let mut loss = f64::INFINITY;
        for _ in 0..100 {
            loss = train_regressor_step(&mut model, &mut opt, &x, &y);
        }
        assert!(loss < 1e-4, "final loss {loss}");
        let w = model.weight.to_tensor().scalar_value();
        let b = model.bias.to_tensor().scalar_value();
        assert!((w - 2.0).abs() < 0.05);
        assert!((b - 1.0).abs() < 0.05);
    }
}
