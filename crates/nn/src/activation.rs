//! Activation functions, with their VJPs.

use s4tf_runtime::DTensor;

/// The pullback an activation's VJP returns: maps the output cotangent to
/// the input cotangent.
pub type ActivationPullback = Box<dyn Fn(&DTensor) -> DTensor + Send>;

/// An element-wise activation function, applied by layers after their
/// affine transformation (the `activation:` argument in paper Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation.
    pub fn apply(&self, x: &DTensor) -> DTensor {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
        }
    }

    /// Applies the activation, returning the value and its pullback.
    pub fn vjp(&self, x: &DTensor) -> (DTensor, ActivationPullback) {
        match self {
            Activation::Identity => (x.clone(), Box::new(|dy: &DTensor| dy.clone())),
            Activation::Relu => {
                let mask = x.greater_mask(&x.scalar_like(0.0));
                (x.relu(), Box::new(move |dy: &DTensor| dy.mul(&mask)))
            }
            Activation::Tanh => {
                let y = x.tanh();
                let yc = y.clone();
                (
                    y,
                    Box::new(move |dy: &DTensor| {
                        let one_minus = yc.square().neg().add_scalar(1.0);
                        dy.mul(&one_minus)
                    }),
                )
            }
            Activation::Sigmoid => {
                let y = x.sigmoid();
                let yc = y.clone();
                (
                    y,
                    Box::new(move |dy: &DTensor| {
                        let deriv = yc.mul(&yc.neg().add_scalar(1.0));
                        dy.mul(&deriv)
                    }),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    fn x() -> DTensor {
        DTensor::from_tensor(
            Tensor::from_vec(vec![-1.5, -0.1, 0.3, 0.7, 2.0], &[5]),
            &Device::naive(),
        )
    }

    #[test]
    fn forward_values() {
        let x = x();
        assert_eq!(Activation::Identity.apply(&x), x);
        assert_eq!(
            Activation::Relu.apply(&x).to_tensor().as_slice(),
            &[0.0, 0.0, 0.3, 0.7, 2.0]
        );
        let t = Activation::Tanh.apply(&x).to_tensor();
        assert!((t.as_slice()[4] - 2.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn vjps_match_finite_differences() {
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let x = x();
            let (_, pb) = act.vjp(&x);
            let g = pb(&x.ones_like()).to_tensor();
            let eps = 1e-3;
            let base = x.to_tensor();
            for i in 0..base.num_elements() {
                let mut xp = base.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = base.clone();
                xm.as_mut_slice()[i] -= eps;
                let d = Device::naive();
                let fp = act
                    .apply(&DTensor::from_tensor(xp, &d))
                    .sum()
                    .to_tensor()
                    .scalar_value();
                let fm = act
                    .apply(&DTensor::from_tensor(xm, &d))
                    .sum()
                    .to_tensor()
                    .scalar_value();
                let fd = (fp - fm) / (2.0 * eps);
                assert!(
                    (fd - g.as_slice()[i]).abs() < 1e-2,
                    "{act:?}[{i}]: fd={fd} vjp={}",
                    g.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn default_is_identity() {
        assert_eq!(Activation::default(), Activation::Identity);
    }
}
