//! The 2-D convolution layer.

use crate::activation::Activation;
use crate::layer::{Layer, PullbackFn};
use rand::Rng;
use s4tf_core::differentiable_struct;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::{Padding, Tensor};

differentiable_struct! {
    /// A 2-D convolution layer: `activation(conv2d(x, filter) + b)`.
    ///
    /// Mirrors the paper's `Conv2D<Float>(filterShape:padding:activation:)`
    /// (Figure 6). The filter has HWIO shape `[h, w, in, out]`; inputs are
    /// NHWC.
    pub struct Conv2D tangent Conv2DTangent {
        params {
            /// Filter, `[kh, kw, in_channels, out_channels]`.
            pub filter: DTensor,
            /// Bias, `[out_channels]`.
            pub bias: DTensor,
        }
        nodiff {
            /// Spatial strides.
            pub strides: (usize, usize),
            /// Padding strategy.
            pub padding: Padding,
            /// Post-affine activation.
            pub activation: Activation,
        }
    }
}

impl Conv2D {
    /// A Glorot-initialized convolution layer on `device`.
    ///
    /// `filter_shape` is `(kh, kw, in_channels, out_channels)` — the same
    /// tuple as the paper's `filterShape:`.
    pub fn new<R: Rng + ?Sized>(
        filter_shape: (usize, usize, usize, usize),
        strides: (usize, usize),
        padding: Padding,
        activation: Activation,
        device: &Device,
        rng: &mut R,
    ) -> Self {
        let (kh, kw, cin, cout) = filter_shape;
        let fan_in = kh * kw * cin;
        let fan_out = kh * kw * cout;
        let filter = Tensor::<f32>::glorot_uniform(&[kh, kw, cin, cout], fan_in, fan_out, rng);
        Conv2D {
            filter: DTensor::from_tensor(filter, device),
            bias: DTensor::from_tensor(Tensor::zeros(&[cout]), device),
            strides,
            padding,
            activation,
        }
    }
}

impl Layer for Conv2D {
    fn forward(&self, input: &DTensor) -> DTensor {
        let conv = input
            .conv2d(&self.filter, self.strides, self.padding)
            .add(&self.bias);
        self.activation.apply(&conv)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let pre = input
            .conv2d(&self.filter, self.strides, self.padding)
            .add(&self.bias);
        let (y, act_pb) = self.activation.vjp(&pre);
        let x = input.clone();
        let filter = self.filter.clone();
        let filter_dims = self.filter.dims();
        let bias_dims = self.bias.dims();
        let (strides, padding) = (self.strides, self.padding);
        (
            y,
            Box::new(move |dy: &DTensor| {
                let da = act_pb(dy);
                let dfilter = x.conv2d_backward_filter(&filter_dims, &da, strides, padding);
                let dbias = da.reduce_to_shape(&bias_dims);
                let dx = x.conv2d_backward_input(&filter, &da, strides, padding);
                (
                    Conv2DTangent {
                        filter: dfilter,
                        bias: dbias,
                    },
                    dx,
                )
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Conv2D, DTensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d = Device::naive();
        let l = Conv2D::new(
            (3, 3, 2, 4),
            (1, 1),
            Padding::Same,
            Activation::Relu,
            &d,
            &mut rng,
        );
        let x = DTensor::from_tensor(Tensor::randn(&[2, 6, 6, 2], &mut rng), &d);
        (l, x)
    }

    #[test]
    fn forward_shape() {
        let (l, x) = setup();
        assert_eq!(l.forward(&x).dims(), vec![2, 6, 6, 4]);
        // Figure 6's first layer: 5×5, 1→6 channels, same padding on MNIST.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let d = Device::naive();
        let lenet1 = Conv2D::new(
            (5, 5, 1, 6),
            (1, 1),
            Padding::Same,
            Activation::Relu,
            &d,
            &mut rng,
        );
        let img = DTensor::from_tensor(Tensor::zeros(&[1, 28, 28, 1]), &d);
        assert_eq!(lenet1.forward(&img).dims(), vec![1, 28, 28, 6]);
    }

    #[test]
    fn pullback_matches_finite_differences() {
        let (l, x) = setup();
        let (y, pb) = l.forward_with_pullback(&x);
        let (grad, dx) = pb(&y.ones_like());
        let d = Device::naive();
        let loss = |l: &Conv2D, x: &DTensor| l.forward(x).sum().to_tensor().scalar_value() as f64;
        let eps = 1e-3;

        let f = l.filter.to_tensor();
        let gf = grad.filter.to_tensor();
        for i in [0usize, 17, 41, 71] {
            let mut fp = f.clone();
            fp.as_mut_slice()[i] += eps;
            let mut fm = f.clone();
            fm.as_mut_slice()[i] -= eps;
            let mut lp = l.clone();
            lp.filter = DTensor::from_tensor(fp, &d);
            let mut lm = l.clone();
            lm.filter = DTensor::from_tensor(fm, &d);
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps as f64);
            assert!(
                (fd - gf.as_slice()[i] as f64).abs() < 2e-2,
                "dfilter[{i}]: {fd} vs {}",
                gf.as_slice()[i]
            );
        }

        let xt = x.to_tensor();
        let gx = dx.to_tensor();
        for i in [0usize, 33, 99] {
            let mut xp = xt.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = xt.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&l, &DTensor::from_tensor(xp, &d))
                - loss(&l, &DTensor::from_tensor(xm, &d)))
                / (2.0 * eps as f64);
            assert!((fd - gx.as_slice()[i] as f64).abs() < 2e-2, "dx[{i}]");
        }

        let gb = grad.bias.to_tensor();
        assert_eq!(gb.dims(), &[4]);
    }

    #[test]
    fn strided_valid_convolution() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let d = Device::naive();
        let l = Conv2D::new(
            (2, 2, 1, 3),
            (2, 2),
            Padding::Valid,
            Activation::Identity,
            &d,
            &mut rng,
        );
        let x = DTensor::from_tensor(Tensor::randn(&[1, 8, 8, 1], &mut rng), &d);
        let (y, pb) = l.forward_with_pullback(&x);
        assert_eq!(y.dims(), vec![1, 4, 4, 3]);
        let (g, dx) = pb(&y.ones_like());
        assert_eq!(g.filter.dims(), vec![2, 2, 1, 3]);
        assert_eq!(dx.dims(), vec![1, 8, 8, 1]);
    }
}
