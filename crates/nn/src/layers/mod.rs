//! The standard layer suite (paper Figure 6 uses `Conv2D`, `AvgPool2D`,
//! `Flatten` and `Dense`; the ResNet models add `BatchNorm`, `MaxPool2D`
//! and `Dropout`).

mod batchnorm;
mod chain;
mod conv;
mod dense;
mod dropout;
mod embedding;
mod flatten;
mod pool;

pub use batchnorm::{BatchNorm, BatchNormTangent};
pub use chain::Chain;
pub use conv::{Conv2D, Conv2DTangent};
pub use dense::{Dense, DenseTangent};
pub use dropout::Dropout;
pub use embedding::{Embedding, EmbeddingTangent};
pub use flatten::Flatten;
pub use pool::{AvgPool2D, MaxPool2D};
