//! The fully-connected layer.

use crate::activation::Activation;
use crate::layer::{Layer, PullbackFn};
use rand::Rng;
use s4tf_core::differentiable_struct;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;

differentiable_struct! {
    /// A dense (fully-connected) layer: `activation(x·W + b)`.
    ///
    /// Mirrors the paper's `Dense<Float>(inputSize:outputSize:activation:)`
    /// (Figure 6). The weight has shape `[input, output]`, the bias
    /// `[output]`.
    pub struct Dense tangent DenseTangent {
        params {
            /// Weight matrix, `[input, output]`.
            pub weight: DTensor,
            /// Bias vector, `[output]`.
            pub bias: DTensor,
        }
        nodiff {
            /// Post-affine activation.
            pub activation: Activation,
        }
    }
}

impl Dense {
    /// A Glorot-initialized dense layer on `device`.
    pub fn new<R: Rng + ?Sized>(
        input_size: usize,
        output_size: usize,
        activation: Activation,
        device: &Device,
        rng: &mut R,
    ) -> Self {
        let weight =
            Tensor::<f32>::glorot_uniform(&[input_size, output_size], input_size, output_size, rng);
        Dense {
            weight: DTensor::from_tensor(weight, device),
            bias: DTensor::from_tensor(Tensor::zeros(&[output_size]), device),
            activation,
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.weight.dims()[1]
    }
}

impl Layer for Dense {
    fn forward(&self, input: &DTensor) -> DTensor {
        let affine = input.matmul(&self.weight).add(&self.bias);
        self.activation.apply(&affine)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let affine = input.matmul(&self.weight).add(&self.bias);
        let (y, act_pb) = self.activation.vjp(&affine);
        let x = input.clone();
        let w = self.weight.clone();
        let bias_dims = self.bias.dims();
        (
            y,
            Box::new(move |dy: &DTensor| {
                let da = act_pb(dy);
                let dw = x.matmul_tn(&da);
                let db = da.reduce_to_shape(&bias_dims);
                let dx = da.matmul_nt(&w);
                (
                    DenseTangent {
                        weight: dw,
                        bias: db,
                    },
                    dx,
                )
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_core::Differentiable;

    fn layer(act: Activation) -> (Dense, DTensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = Device::naive();
        let l = Dense::new(4, 3, act, &d, &mut rng);
        let x = DTensor::from_tensor(Tensor::randn(&[5, 4], &mut rng), &d);
        (l, x)
    }

    #[test]
    fn forward_shapes_and_sizes() {
        let (l, x) = layer(Activation::Identity);
        assert_eq!(l.input_size(), 4);
        assert_eq!(l.output_size(), 3);
        assert_eq!(l.forward(&x).dims(), vec![5, 3]);
    }

    #[test]
    fn identity_layer_is_affine() {
        let d = Device::naive();
        let l = Dense {
            weight: DTensor::from_tensor(Tensor::eye(2), &d),
            bias: DTensor::from_tensor(Tensor::from_vec(vec![1.0, -1.0], &[2]), &d),
            activation: Activation::Identity,
        };
        let x = DTensor::from_tensor(Tensor::from_vec(vec![3.0, 4.0], &[1, 2]), &d);
        assert_eq!(l.forward(&x).to_tensor().as_slice(), &[4.0, 3.0]);
    }

    /// Central-difference gradient check of all three cotangents.
    #[test]
    fn pullback_matches_finite_differences() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let (l, x) = layer(act);
            let (y, pb) = l.forward_with_pullback(&x);
            let (grad, dx) = pb(&y.ones_like());

            let d = Device::naive();
            let loss = |l: &Dense, x: &DTensor| -> f64 {
                l.forward(x).sum().to_tensor().scalar_value() as f64
            };
            let eps = 1e-3;

            // d/dW
            let w = l.weight.to_tensor();
            let gw = grad.weight.to_tensor();
            for i in [0usize, 5, 11] {
                let mut wp = w.clone();
                wp.as_mut_slice()[i] += eps;
                let mut wm = w.clone();
                wm.as_mut_slice()[i] -= eps;
                let mut lp = l.clone();
                lp.weight = DTensor::from_tensor(wp, &d);
                let mut lm = l.clone();
                lm.weight = DTensor::from_tensor(wm, &d);
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps as f64);
                assert!(
                    (fd - gw.as_slice()[i] as f64).abs() < 1e-2,
                    "{act:?} dW[{i}]"
                );
            }

            // d/db
            let gb = grad.bias.to_tensor();
            for i in 0..3 {
                let mut bp = l.bias.to_tensor();
                bp.as_mut_slice()[i] += eps;
                let mut lp = l.clone();
                lp.bias = DTensor::from_tensor(bp, &d);
                let fd = (loss(&lp, &x) - loss(&l, &x)) / eps as f64;
                assert!(
                    (fd - gb.as_slice()[i] as f64).abs() < 1e-2,
                    "{act:?} db[{i}]"
                );
            }

            // d/dx
            let xt = x.to_tensor();
            let gx = dx.to_tensor();
            for i in [0usize, 7, 19] {
                let mut xp = xt.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = xt.clone();
                xm.as_mut_slice()[i] -= eps;
                let fd = (loss(&l, &DTensor::from_tensor(xp, &d))
                    - loss(&l, &DTensor::from_tensor(xm, &d)))
                    / (2.0 * eps as f64);
                assert!(
                    (fd - gx.as_slice()[i] as f64).abs() < 1e-2,
                    "{act:?} dx[{i}]"
                );
            }
        }
    }

    #[test]
    fn gradient_step_reduces_loss() {
        let (mut l, x) = layer(Activation::Tanh);
        let loss_of = |l: &Dense| {
            let y = l.forward(&x);
            y.square().sum().to_tensor().scalar_value()
        };
        let before = loss_of(&l);
        // One step of gradient descent on loss = Σ y².
        let (y, pb) = l.forward_with_pullback(&x);
        let dy = y.mul_scalar(2.0);
        let (grad, _) = pb(&dy);
        use s4tf_core::VectorSpace;
        l.move_along(&grad.scaled_by(-0.05));
        assert!(loss_of(&l) < before);
    }

    #[test]
    fn works_on_all_devices() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = Tensor::<f32>::randn(&[4, 3], &mut rng);
        let xs = Tensor::<f32>::randn(&[2, 4], &mut rng);
        let mut outs = Vec::new();
        for d in [Device::naive(), Device::eager(), Device::lazy()] {
            let l = Dense {
                weight: DTensor::from_tensor(w.clone(), &d),
                bias: DTensor::from_tensor(Tensor::zeros(&[3]), &d),
                activation: Activation::Relu,
            };
            let x = DTensor::from_tensor(xs.clone(), &d);
            let (y, pb) = l.forward_with_pullback(&x);
            let (g, dx) = pb(&y.ones_like());
            outs.push((y.to_tensor(), g.weight.to_tensor(), dx.to_tensor()));
        }
        for o in &outs[1..] {
            assert!(o.0.allclose(&outs[0].0, 1e-5));
            assert!(o.1.allclose(&outs[0].1, 1e-5));
            assert!(o.2.allclose(&outs[0].2, 1e-5));
        }
    }
}
