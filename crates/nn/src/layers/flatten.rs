//! The flatten layer.

use crate::layer::{Layer, PullbackFn};
use s4tf_core::Differentiable;
use s4tf_runtime::DTensor;

/// Flattens `[batch, d1, d2, …]` to `[batch, d1·d2·…]` — the paper's
/// `Flatten<Float>()` (Figure 6). Parameter-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flatten;

impl Flatten {
    /// A flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Differentiable for Flatten {
    type TangentVector = ();
    fn move_along(&mut self, _: &()) {}
}

impl Layer for Flatten {
    fn forward(&self, input: &DTensor) -> DTensor {
        let dims = input.dims();
        assert!(!dims.is_empty(), "flatten requires a batch dimension");
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        input.reshape(&[batch, rest])
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let original = input.dims();
        let y = self.forward(input);
        (y, Box::new(move |dy: &DTensor| ((), dy.reshape(&original))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    #[test]
    fn flatten_and_unflatten() {
        let x = DTensor::from_tensor(
            Tensor::<f32>::from_fn(&[2, 3, 4, 5], |i| i as f32),
            &Device::naive(),
        );
        let l = Flatten::new();
        let (y, pb) = l.forward_with_pullback(&x);
        assert_eq!(y.dims(), vec![2, 60]);
        let ((), dx) = pb(&y);
        assert_eq!(dx.dims(), vec![2, 3, 4, 5]);
        assert_eq!(dx.to_tensor(), x.to_tensor());
    }

    #[test]
    fn rank_two_is_a_no_op() {
        let x = DTensor::from_tensor(Tensor::<f32>::ones(&[4, 7]), &Device::naive());
        assert_eq!(Flatten::new().forward(&x).dims(), vec![4, 7]);
    }
}
