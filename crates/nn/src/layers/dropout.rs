//! The dropout layer.

use crate::layer::{Layer, PullbackFn};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use s4tf_core::Differentiable;
use s4tf_runtime::DTensor;
use s4tf_tensor::Tensor;
use std::sync::Arc;

/// Inverted dropout: during training each element is zeroed with
/// probability `rate` and the survivors are scaled by `1/(1-rate)`; during
/// inference the layer is the identity.
///
/// The mask is sampled on the host and enters the computation as a runtime
/// input, so on the lazy device the *trace structure* (and therefore the
/// program-cache key) is identical across steps even though the mask values
/// differ.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub rate: f32,
    /// True during training (mask applied); false for inference.
    pub training: bool,
    rng: Arc<Mutex<ChaCha8Rng>>,
}

impl Dropout {
    /// A training-mode dropout layer with a deterministic seed.
    ///
    /// # Panics
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout {
            rate,
            training: true,
            rng: Arc::new(Mutex::new(ChaCha8Rng::seed_from_u64(seed))),
        }
    }

    fn sample_mask(&self, dims: &[usize]) -> Tensor<f32> {
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut rng = self.rng.lock();
        Tensor::from_fn(dims, |_| if rng.gen::<f32>() < keep { scale } else { 0.0 })
    }
}

impl Differentiable for Dropout {
    type TangentVector = ();
    fn move_along(&mut self, _: &()) {}
}

impl Layer for Dropout {
    fn forward(&self, input: &DTensor) -> DTensor {
        if !self.training || self.rate == 0.0 {
            return input.clone();
        }
        let mask = DTensor::from_tensor(self.sample_mask(&input.dims()), &input.device());
        input.mul(&mask)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        if !self.training || self.rate == 0.0 {
            let y = input.clone();
            return (y, Box::new(|dy: &DTensor| ((), dy.clone())));
        }
        let mask = DTensor::from_tensor(self.sample_mask(&input.dims()), &input.device());
        let y = input.mul(&mask);
        (y, Box::new(move |dy: &DTensor| ((), dy.mul(&mask))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_runtime::Device;

    fn x() -> DTensor {
        DTensor::from_tensor(Tensor::ones(&[1000]), &Device::naive())
    }

    #[test]
    fn drops_roughly_rate_fraction() {
        let l = Dropout::new(0.3, 1);
        let y = l.forward(&x()).to_tensor();
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((250..350).contains(&dropped), "dropped {dropped}");
        // Survivors are scaled to preserve the expectation.
        let survivor = y.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-6);
    }

    #[test]
    fn inference_mode_is_identity() {
        let mut l = Dropout::new(0.5, 2);
        l.training = false;
        let input = x();
        assert_eq!(l.forward(&input).to_tensor(), input.to_tensor());
    }

    #[test]
    fn pullback_uses_the_same_mask() {
        let l = Dropout::new(0.5, 3);
        let input = x();
        let (y, pb) = l.forward_with_pullback(&input);
        let ((), dx) = pb(&input.ones_like());
        let yt = y.to_tensor();
        let gt = dx.to_tensor();
        for (a, b) in yt.as_slice().iter().zip(gt.as_slice()) {
            // forward output and gradient share zero positions
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn zero_rate_is_identity() {
        let l = Dropout::new(0.0, 4);
        let input = x();
        assert_eq!(l.forward(&input).to_tensor(), input.to_tensor());
    }

    #[test]
    #[should_panic(expected = "rate must be")]
    fn invalid_rate_panics() {
        Dropout::new(1.0, 5);
    }
}
