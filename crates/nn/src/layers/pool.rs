//! Pooling layers (parameter-free; their tangent vector is `()`).

use crate::layer::{Layer, PullbackFn};
use s4tf_core::Differentiable;
use s4tf_runtime::DTensor;
use s4tf_tensor::Padding;

/// Average pooling — the paper's
/// `AvgPool2D<Float>(poolSize:strides:)` (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvgPool2D {
    /// Pooling window.
    pub pool_size: (usize, usize),
    /// Strides.
    pub strides: (usize, usize),
    /// Padding strategy.
    pub padding: Padding,
}

impl AvgPool2D {
    /// A valid-padded average pool.
    pub fn new(pool_size: (usize, usize), strides: (usize, usize)) -> Self {
        AvgPool2D {
            pool_size,
            strides,
            padding: Padding::Valid,
        }
    }
}

impl Differentiable for AvgPool2D {
    type TangentVector = ();
    fn move_along(&mut self, _: &()) {}
}

impl Layer for AvgPool2D {
    fn forward(&self, input: &DTensor) -> DTensor {
        input.avg_pool2d(self.pool_size, self.strides, self.padding)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let y = self.forward(input);
        let x = input.clone();
        let (pool, strides, padding) = (self.pool_size, self.strides, self.padding);
        (
            y,
            Box::new(move |dy: &DTensor| ((), x.avg_pool2d_backward(dy, pool, strides, padding))),
        )
    }
}

/// Max pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2D {
    /// Pooling window.
    pub pool_size: (usize, usize),
    /// Strides.
    pub strides: (usize, usize),
    /// Padding strategy.
    pub padding: Padding,
}

impl MaxPool2D {
    /// A valid-padded max pool.
    pub fn new(pool_size: (usize, usize), strides: (usize, usize)) -> Self {
        MaxPool2D {
            pool_size,
            strides,
            padding: Padding::Valid,
        }
    }
}

impl Differentiable for MaxPool2D {
    type TangentVector = ();
    fn move_along(&mut self, _: &()) {}
}

impl Layer for MaxPool2D {
    fn forward(&self, input: &DTensor) -> DTensor {
        input.max_pool2d(self.pool_size, self.strides, self.padding)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let y = self.forward(input);
        let x = input.clone();
        let (pool, strides, padding) = (self.pool_size, self.strides, self.padding);
        (
            y,
            Box::new(move |dy: &DTensor| ((), x.max_pool2d_backward(dy, pool, strides, padding))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    fn image() -> DTensor {
        DTensor::from_tensor(
            Tensor::<f32>::from_fn(&[1, 4, 4, 1], |i| i as f32),
            &Device::naive(),
        )
    }

    #[test]
    fn avg_pool_forward_and_pullback() {
        let l = AvgPool2D::new((2, 2), (2, 2));
        let x = image();
        let (y, pb) = l.forward_with_pullback(&x);
        assert_eq!(y.dims(), vec![1, 2, 2, 1]);
        assert_eq!(y.to_tensor().as_slice(), &[2.5, 4.5, 10.5, 12.5]);
        let ((), dx) = pb(&y.ones_like());
        // Every input cell receives 1/4 of its window's gradient.
        assert!(dx.to_tensor().as_slice().iter().all(|&g| g == 0.25));
    }

    #[test]
    fn max_pool_forward_and_pullback() {
        let l = MaxPool2D::new((2, 2), (2, 2));
        let x = image();
        let (y, pb) = l.forward_with_pullback(&x);
        assert_eq!(y.to_tensor().as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        let ((), dx) = pb(&y.ones_like());
        let g = dx.to_tensor();
        assert_eq!(g.as_slice().iter().filter(|&&v| v == 1.0).count(), 4);
        assert_eq!(g.as_slice().iter().filter(|&&v| v == 0.0).count(), 12);
    }

    #[test]
    fn pool_layers_are_parameter_free() {
        let mut l = AvgPool2D::new((2, 2), (2, 2));
        l.move_along(&()); // tangent is ()
        assert_eq!(l.pool_size, (2, 2));
    }
}
