//! Batch normalization over the feature (last) axis.

use crate::layer::{Layer, PullbackFn};
use s4tf_core::differentiable_struct;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;

differentiable_struct! {
    /// Batch normalization: normalizes over every axis except the last
    /// (features), then applies a learned per-feature affine
    /// transformation. Used by the ResNet family (paper §5.1).
    ///
    /// This implementation always normalizes with batch statistics
    /// (training-mode); see DESIGN.md for the running-statistics
    /// simplification note.
    pub struct BatchNorm tangent BatchNormTangent {
        params {
            /// Per-feature scale γ, `[features]`.
            pub scale: DTensor,
            /// Per-feature offset β, `[features]`.
            pub offset: DTensor,
        }
        nodiff {
            /// Variance floor.
            pub epsilon: f32,
        }
    }
}

impl BatchNorm {
    /// A batch-norm layer over `features` channels (γ=1, β=0) on `device`.
    pub fn new(features: usize, device: &Device) -> Self {
        BatchNorm {
            scale: DTensor::from_tensor(Tensor::ones(&[features]), device),
            offset: DTensor::from_tensor(Tensor::zeros(&[features]), device),
            epsilon: 1e-5,
        }
    }

    /// Number of elements normalized per feature.
    fn reduce_count(dims: &[usize]) -> f32 {
        dims[..dims.len() - 1].iter().product::<usize>() as f32
    }
}

impl Layer for BatchNorm {
    fn forward(&self, input: &DTensor) -> DTensor {
        let dims = input.dims();
        let c = *dims.last().expect("batchnorm needs a feature axis");
        let m = Self::reduce_count(&dims);
        let mean = input.reduce_to_shape(&[c]).div_scalar(m);
        let centered = input.sub(&mean);
        let var = centered.square().reduce_to_shape(&[c]).div_scalar(m);
        let std = var.add_scalar(self.epsilon).sqrt();
        let xhat = centered.div(&std);
        xhat.mul(&self.scale).add(&self.offset)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let dims = input.dims();
        let c = *dims.last().expect("batchnorm needs a feature axis");
        let m = Self::reduce_count(&dims);
        let mean = input.reduce_to_shape(&[c]).div_scalar(m);
        let centered = input.sub(&mean);
        let var = centered.square().reduce_to_shape(&[c]).div_scalar(m);
        let std = var.add_scalar(self.epsilon).sqrt();
        let xhat = centered.div(&std);
        let y = xhat.mul(&self.scale).add(&self.offset);

        let gamma = self.scale.clone();
        (
            y,
            Box::new(move |dy: &DTensor| {
                // Standard batch-norm backward:
                // dβ = Σ dy;  dγ = Σ dy·x̂
                // dx = γ/σ · (dy − mean(dy) − x̂·mean(dy·x̂))
                let dbeta = dy.reduce_to_shape(&[c]);
                let dgamma = dy.mul(&xhat).reduce_to_shape(&[c]);
                let mean_dy = dbeta.div_scalar(m);
                let mean_dy_xhat = dgamma.div_scalar(m);
                let dx = dy
                    .sub(&mean_dy)
                    .sub(&xhat.mul(&mean_dy_xhat))
                    .mul(&gamma.div(&std));
                (
                    BatchNormTangent {
                        scale: dgamma,
                        offset: dbeta,
                    },
                    dx,
                )
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (BatchNorm, DTensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let d = Device::naive();
        let l = BatchNorm::new(3, &d);
        let x = DTensor::from_tensor(
            Tensor::<f32>::randn(&[4, 2, 2, 3], &mut rng)
                .mul_scalar(2.0)
                .add_scalar(1.0),
            &d,
        );
        (l, x)
    }

    #[test]
    fn output_is_normalized_per_feature() {
        let (l, x) = setup();
        let y = l.forward(&x).to_tensor();
        // Per feature: mean ≈ 0, var ≈ 1.
        for f in 0..3 {
            let vals: Vec<f32> = y.as_slice().iter().skip(f).step_by(3).copied().collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-5, "feature {f} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "feature {f} var {var}");
        }
    }

    #[test]
    fn affine_parameters_shift_and_scale() {
        let (mut l, x) = setup();
        let d = Device::naive();
        l.scale = DTensor::from_tensor(Tensor::from_vec(vec![2.0, 2.0, 2.0], &[3]), &d);
        l.offset = DTensor::from_tensor(Tensor::from_vec(vec![5.0, 5.0, 5.0], &[3]), &d);
        let y = l.forward(&x).to_tensor();
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.num_elements() as f32;
        assert!((mean - 5.0).abs() < 1e-4);
    }

    #[test]
    fn pullback_matches_finite_differences() {
        let (l, x) = setup();
        let (y, pb) = l.forward_with_pullback(&x);
        let (grad, dx) = pb(&y.ones_like());
        let d = Device::naive();
        // loss = Σ y: dγ ≈ Σ x̂ per feature, dβ = count per feature.
        let gb = grad.offset.to_tensor();
        for &b in gb.as_slice() {
            assert!((b - 16.0).abs() < 1e-4, "dβ = per-feature count");
        }

        let eps = 1e-2;
        let xt = x.to_tensor();
        let gx = dx.to_tensor();
        let loss = |x: &Tensor<f32>| {
            l.forward(&DTensor::from_tensor(x.clone(), &d))
                .sum()
                .to_tensor()
                .scalar_value() as f64
        };
        for i in [0usize, 13, 31] {
            let mut xp = xt.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = xt.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            assert!(
                (fd - gx.as_slice()[i] as f64).abs() < 1e-2,
                "dx[{i}]: fd={fd} vjp={}",
                gx.as_slice()[i]
            );
        }

        // dγ check via finite differences.
        let gs = grad.scale.to_tensor();
        for i in 0..3 {
            let mut lp = l.clone();
            let mut sp = l.scale.to_tensor();
            sp.as_mut_slice()[i] += eps;
            lp.scale = DTensor::from_tensor(sp, &d);
            let base = l.forward(&x).sum().to_tensor().scalar_value() as f64;
            let fp = lp.forward(&x).sum().to_tensor().scalar_value() as f64;
            let fd = (fp - base) / eps as f64;
            assert!((fd - gs.as_slice()[i] as f64).abs() < 1e-2, "dγ[{i}]");
        }
    }

    #[test]
    fn works_on_rank_two_inputs() {
        let d = Device::naive();
        let l = BatchNorm::new(4, &d);
        let x = DTensor::from_tensor(Tensor::<f32>::from_fn(&[8, 4], |i| i as f32), &d);
        let y = l.forward(&x);
        assert_eq!(y.dims(), vec![8, 4]);
    }
}
