//! Generic sequential composition of two layers.
//!
//! The paper's models compose layers as struct fields (Figure 6), but
//! Swift's `sequenced(through:)` also offers generic chaining. [`Chain`]
//! is that combinator: a layer whose tangent vector is the pair of its
//! parts' tangents (tuples are `Differentiable`), and whose pullback is
//! the mechanical chain rule.

use crate::layer::{Layer, PullbackFn};
use s4tf_core::Differentiable;
use s4tf_runtime::DTensor;

/// `Chain { first, second }` applies `first` then `second`.
///
/// Chains nest: `Chain<Chain<A, B>, C>` is a three-layer stack with tangent
/// `((A::TangentVector, B::TangentVector), C::TangentVector)`.
///
/// ```
/// use s4tf_nn::prelude::*;
/// use s4tf_nn::layers::Chain;
/// use rand::SeedableRng;
///
/// let d = Device::naive();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mlp = Chain::new(
///     Dense::new(4, 8, Activation::Tanh, &d, &mut rng),
///     Dense::new(8, 2, Activation::Identity, &d, &mut rng),
/// );
/// let x = DTensor::from_tensor(Tensor::zeros(&[3, 4]), &d);
/// assert_eq!(mlp.forward(&x).dims(), vec![3, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    /// Applied first.
    pub first: A,
    /// Applied to `first`'s output.
    pub second: B,
}

impl<A, B> Chain<A, B> {
    /// Chains two layers.
    pub fn new(first: A, second: B) -> Self {
        Chain { first, second }
    }
}

impl<A: Differentiable, B: Differentiable> Differentiable for Chain<A, B> {
    type TangentVector = (A::TangentVector, B::TangentVector);

    fn move_along(&mut self, direction: &Self::TangentVector) {
        self.first.move_along(&direction.0);
        self.second.move_along(&direction.1);
    }

    fn zero_tangent(&self) -> Self::TangentVector {
        (self.first.zero_tangent(), self.second.zero_tangent())
    }
}

impl<A: Layer + 'static, B: Layer + 'static> Layer for Chain<A, B> {
    fn forward(&self, input: &DTensor) -> DTensor {
        self.second.forward(&self.first.forward(input))
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let (h, pb_first) = self.first.forward_with_pullback(input);
        let (y, pb_second) = self.second.forward_with_pullback(&h);
        (
            y,
            Box::new(move |dy: &DTensor| {
                let (g2, dh) = pb_second(dy);
                let (g1, dx) = pb_first(&dh);
                ((g1, g2), dx)
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layers::{Dense, Flatten};
    use crate::loss::softmax_cross_entropy;
    use crate::optimizer::{Optimizer, Sgd};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_core::VectorSpace;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    type Mlp = Chain<Chain<Flatten, Dense>, Dense>;

    fn mlp(rng: &mut ChaCha8Rng, d: &Device) -> Mlp {
        Chain::new(
            Chain::new(Flatten::new(), Dense::new(16, 12, Activation::Tanh, d, rng)),
            Dense::new(12, 3, Activation::Identity, d, rng),
        )
    }

    #[test]
    fn nested_chains_forward_and_backward() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = mlp(&mut rng, &d);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[5, 4, 4], &mut rng), &d);
        let (y, pb) = model.forward_with_pullback(&x);
        assert_eq!(y.dims(), vec![5, 3]);
        let (((_, g_hidden), g_head), dx) = {
            let (g, dx) = pb(&y.ones_like());
            (g, dx)
        };
        assert_eq!(g_hidden.weight.dims(), vec![16, 12]);
        assert_eq!(g_head.weight.dims(), vec![12, 3]);
        assert_eq!(dx.dims(), vec![5, 4, 4]);
    }

    #[test]
    fn chained_model_trains_with_generic_optimizer() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model = mlp(&mut rng, &d);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[12, 4, 4], &mut rng), &d);
        let labels = DTensor::from_tensor(
            Tensor::one_hot(&[0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2], 3),
            &d,
        );
        let mut opt = Sgd::<Mlp>::new(0.3);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..25 {
            let (logits, pb) = model.forward_with_pullback(&x);
            let (loss, loss_pb) = softmax_cross_entropy(&logits, &labels);
            let (g, _) = pb(&loss_pb(&loss.scalar_like(1.0)));
            opt.update(&mut model, &g);
            let v = loss.to_tensor().scalar_value() as f64;
            if step == 0 {
                first = v;
            }
            last = v;
        }
        assert!(last < first * 0.5, "{first} → {last}");
    }

    #[test]
    fn chain_gradient_matches_finite_differences() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let model = Chain::new(
            Dense::new(3, 4, Activation::Sigmoid, &d, &mut rng),
            Dense::new(4, 1, Activation::Identity, &d, &mut rng),
        );
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 3], &mut rng), &d);
        let (y, pb) = model.forward_with_pullback(&x);
        let (g, _) = pb(&y.ones_like());
        let loss = |m: &Chain<Dense, Dense>| m.forward(&x).sum().to_tensor().scalar_value() as f64;
        let eps = 1e-3f32;
        let mut mp = model.clone();
        let mut w = mp.first.weight.to_tensor();
        *w.at_mut(&[1, 2]) += eps;
        mp.first.weight = DTensor::from_tensor(w, &d);
        let fd = (loss(&mp) - loss(&model)) / eps as f64;
        let ad = g.0.weight.to_tensor().at(&[1, 2]) as f64;
        assert!((fd - ad).abs() < 1e-2, "fd={fd} ad={ad}");
    }

    #[test]
    fn tangent_arithmetic_composes() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let model = mlp(&mut rng, &d);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 4, 4], &mut rng), &d);
        let (y, pb) = model.forward_with_pullback(&x);
        let (g, _) = pb(&y.ones_like());
        let doubled = g.scaled_by(2.0);
        assert!(doubled
            .1
            .weight
            .to_tensor()
            .allclose(&g.1.weight.mul_scalar(2.0).to_tensor(), 1e-6));
    }
}
