//! The embedding layer (row lookup with a scatter-add gradient).

use crate::layer::{Layer, PullbackFn};
use rand::Rng;
use s4tf_core::differentiable_struct;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;

differentiable_struct! {
    /// A trainable lookup table: indices `[batch]` → vectors
    /// `[batch, dim]`.
    ///
    /// Its gradient is the canonical "big-to-small" operation of paper
    /// §4.3: each example touches one row, so the pullback *scatter-adds*
    /// into a table-shaped cotangent instead of materializing per-example
    /// one-hot matrices.
    pub struct Embedding tangent EmbeddingTangent {
        params {
            /// The table, `[vocabulary, dim]`.
            pub table: DTensor,
        }
        nodiff {}
    }
}

impl Embedding {
    /// A normal(0, 0.1)-initialized embedding on `device`.
    pub fn new<R: Rng + ?Sized>(
        vocabulary: usize,
        dim: usize,
        device: &Device,
        rng: &mut R,
    ) -> Self {
        let table = Tensor::<f32>::randn(&[vocabulary, dim], rng).mul_scalar(0.1);
        Embedding {
            table: DTensor::from_tensor(table, device),
        }
    }

    /// Vocabulary size.
    pub fn vocabulary(&self) -> usize {
        self.table.dims()[0]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.dims()[1]
    }
}

impl Layer for Embedding {
    /// `input` carries float-encoded row indices, shape `[batch]`.
    fn forward(&self, input: &DTensor) -> DTensor {
        self.table.gather_rows(input)
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let y = self.table.gather_rows(input);
        let table = self.table.clone();
        let indices = input.clone();
        (
            y,
            Box::new(move |dy: &DTensor| {
                let dtable = table.gather_rows_backward(&indices, dy);
                // Indices are not differentiable data; their cotangent is 0.
                (EmbeddingTangent { table: dtable }, indices.zeros_like())
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_core::{Differentiable, VectorSpace};

    fn setup(device: &Device) -> (Embedding, DTensor) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let e = Embedding::new(6, 3, device, &mut rng);
        let idx = DTensor::from_tensor(Tensor::from_vec(vec![4.0, 0.0, 4.0], &[3]), device);
        (e, idx)
    }

    #[test]
    fn lookup_shapes_and_values() {
        let d = Device::naive();
        let (e, idx) = setup(&d);
        assert_eq!(e.vocabulary(), 6);
        assert_eq!(e.dim(), 3);
        let y = e.forward(&idx).to_tensor();
        assert_eq!(y.dims(), &[3, 3]);
        let table = e.table.to_tensor();
        for c in 0..3 {
            assert_eq!(y.at(&[0, c]), table.at(&[4, c]));
            assert_eq!(y.at(&[1, c]), table.at(&[0, c]));
            assert_eq!(y.at(&[2, c]), table.at(&[4, c]));
        }
    }

    #[test]
    fn gradient_scatter_adds_duplicates() {
        let d = Device::naive();
        let (e, idx) = setup(&d);
        let (y, pb) = e.forward_with_pullback(&idx);
        let (g, d_idx) = pb(&y.ones_like());
        let gt = g.table.to_tensor();
        assert_eq!(gt.dims(), &[6, 3]);
        assert_eq!(gt.at(&[4, 0]), 2.0, "row 4 was looked up twice");
        assert_eq!(gt.at(&[0, 0]), 1.0);
        assert_eq!(gt.at(&[1, 0]), 0.0, "untouched rows get zero gradient");
        assert!(d_idx.to_tensor().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn training_moves_only_touched_rows() {
        let d = Device::naive();
        let (mut e, idx) = setup(&d);
        let before = e.table.to_tensor();
        let (y, pb) = e.forward_with_pullback(&idx);
        let (g, _) = pb(&y.ones_like());
        e.move_along(&g.scaled_by(-0.5));
        let after = e.table.to_tensor();
        for c in 0..3 {
            assert!(after.at(&[4, c]) < before.at(&[4, c]));
            assert_eq!(after.at(&[1, c]), before.at(&[1, c]));
        }
    }

    #[test]
    fn works_on_all_devices() {
        let naive = Device::naive();
        let (e0, _) = setup(&naive);
        let reference = e0
            .forward(&DTensor::from_tensor(
                Tensor::from_vec(vec![5.0, 2.0], &[2]),
                &naive,
            ))
            .to_tensor();
        for d in [Device::eager(), Device::lazy()] {
            let mut e = e0.clone();
            e.table = DTensor::from_tensor(e0.table.to_tensor(), &d);
            let idx = DTensor::from_tensor(Tensor::from_vec(vec![5.0, 2.0], &[2]), &d);
            assert!(e.forward(&idx).to_tensor().allclose(&reference, 1e-6));
        }
    }
}
