//! # s4tf-nn
//!
//! The neural-network library of the Swift-for-TensorFlow reproduction:
//! the paper's `Layer` protocol and the standard layers, losses, optimizers
//! and training loop built on *mutable value semantics* (paper §4.1–4.2).
//!
//! Key correspondences with the paper:
//!
//! * **[`Layer`]** ↔ Swift's `Layer` protocol: a `Differentiable` struct of
//!   parameters whose `callAsFunction` (here [`Layer::forward`]) is
//!   differentiable. Reverse-mode derivatives are provided as explicit VJPs
//!   ([`Layer::forward_with_pullback`]), the exact formulation of paper
//!   Figure 3; the `differentiable_struct!` macro synthesizes each model's
//!   `TangentVector` like Swift's derived conformances.
//! * **Models are plain structs of layers** (paper Figure 6) — no
//!   `Variable` type, no parameter wrappers: composition of mutable value
//!   semantics and the AD protocol lets types be used directly.
//! * **Optimizers borrow the model uniquely** (paper §4.2): an
//!   [`optimizer::Optimizer::update`] takes `&mut M` and moves the model
//!   along the scaled gradient in place, so training is
//!   `(inout Model, Minibatch) -> Void` — no second copy of the weights.
//! * **The training loop auto-inserts the barrier** (paper §3.4): "a
//!   training-loop library can automatically call `LazyTensorBarrier()`
//!   after the optimizer update step on behalf of the user" — see
//!   [`train::train_classifier_step`].
//!
//! Everything is written against [`s4tf_runtime::DTensor`], so the same
//! model definition trains on the naive, eager and lazy backends.

pub mod activation;
pub mod checkpoint;
mod diag;
mod fault;
pub mod layer;
pub mod layers;
pub mod loss;
mod met;
pub mod metrics;
pub mod optimizer;
mod prof;
pub mod schedule;
pub mod train;

pub use activation::Activation;
pub use checkpoint::{Checkpoint, Checkpointable, TrainingSession};
pub use layer::{Layer, PullbackFn};
pub use layers::{
    AvgPool2D, BatchNorm, Chain, Conv2D, Dense, Dropout, Embedding, Flatten, MaxPool2D,
};
pub use loss::{mse, softmax_cross_entropy};
pub use optimizer::{Adam, Optimizer, RmsProp, Sgd};
pub use schedule::Schedule;
pub use train::FaultPolicy;

/// Convenient glob-import surface for model code.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::checkpoint::{Checkpoint, Checkpointable, TrainingSession};
    pub use crate::layer::{Layer, PullbackFn};
    pub use crate::layers::{
        AvgPool2D, BatchNorm, Chain, Conv2D, Dense, Dropout, Embedding, Flatten, MaxPool2D,
    };
    pub use crate::loss::{mse, softmax_cross_entropy};
    pub use crate::optimizer::{Adam, Optimizer, RmsProp, Sgd};
    pub use crate::schedule::Schedule;
    pub use crate::train::FaultPolicy;
    pub use s4tf_core::prelude::*;
    pub use s4tf_runtime::{DTensor, Device};
    pub use s4tf_tensor::{Padding, Tensor};
}
