//! Optimizers that borrow the model uniquely and update it in place
//! (paper §4.2): the training function is `(inout Model, Minibatch) ->
//! Void`, so even a model whose weights consume most of memory never needs
//! a second copy.

use s4tf_core::{AdditiveArithmetic, Differentiable, PointwiseMath, VectorSpace};

/// An optimizer over models of type `M`.
///
/// `update` takes the model by unique borrow (`&mut`, Swift's `inout`) and
/// moves it along a scaled function of the gradient — mutation without
/// reference semantics (paper Figure 8 shows why the two are equivalent).
pub trait Optimizer<M: Differentiable> {
    /// Applies one update step in place.
    fn update(&mut self, model: &mut M, gradient: &M::TangentVector);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd<M: Differentiable> {
    /// Step size.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    velocity: Option<M::TangentVector>,
}

impl<M: Differentiable> Sgd<M> {
    /// Plain SGD.
    pub fn new(learning_rate: f64) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: None,
        }
    }
}

impl<M: Differentiable> Optimizer<M> for Sgd<M> {
    fn update(&mut self, model: &mut M, gradient: &M::TangentVector) {
        if self.momentum == 0.0 {
            // Zero-allocation update: the scaled gradient is never
            // materialized, and the model's buffers are mutated through
            // the unique borrow (paper §4.2).
            model.move_along_scaled(gradient, -self.learning_rate);
        } else {
            // `v ← μ·v − lr·g`, then `model ← model + v` — all in place
            // on the velocity and model buffers (bit-identical to the
            // allocating `v.scaled_by(μ) + g.scaled_by(−lr)` spelling).
            let mut v = self.velocity.take().unwrap_or_else(M::TangentVector::zero);
            v.scale_assign(self.momentum);
            v.add_scaled_assign(-self.learning_rate, gradient);
            model.move_along(&v);
            self.velocity = Some(v);
        }
    }
}

/// Adam (adaptive moments). Requires element-wise arithmetic on the
/// tangent type ([`PointwiseMath`], derived by `differentiable_struct!`).
#[derive(Debug, Clone)]
pub struct Adam<M: Differentiable> {
    /// Step size.
    pub learning_rate: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Division floor.
    pub epsilon: f64,
    step: u64,
    m: Option<M::TangentVector>,
    v: Option<M::TangentVector>,
}

impl<M: Differentiable> Adam<M> {
    /// Adam with the canonical betas (0.9, 0.999).
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            m: None,
            v: None,
        }
    }
}

impl<M> Optimizer<M> for Adam<M>
where
    M: Differentiable,
    M::TangentVector: PointwiseMath,
{
    fn update(&mut self, model: &mut M, gradient: &M::TangentVector) {
        self.step += 1;
        let m_prev = self.m.take().unwrap_or_else(M::TangentVector::zero);
        let v_prev = self.v.take().unwrap_or_else(M::TangentVector::zero);
        let m = m_prev
            .scaled_by(self.beta1)
            .adding(&gradient.scaled_by(1.0 - self.beta1));
        let v = v_prev
            .scaled_by(self.beta2)
            .adding(&gradient.pointwise_mul(gradient).scaled_by(1.0 - self.beta2));
        let m_hat = m.scaled_by(1.0 / (1.0 - self.beta1.powi(self.step as i32)));
        let v_hat = v.scaled_by(1.0 / (1.0 - self.beta2.powi(self.step as i32)));
        let step = m_hat
            .pointwise_div(&v_hat.pointwise_sqrt().adding_scalar(self.epsilon))
            .scaled_by(-self.learning_rate);
        self.m = Some(m);
        self.v = Some(v);
        model.move_along(&step);
    }
}

/// RMSProp.
#[derive(Debug, Clone)]
pub struct RmsProp<M: Differentiable> {
    /// Step size.
    pub learning_rate: f64,
    /// Squared-gradient decay.
    pub rho: f64,
    /// Division floor.
    pub epsilon: f64,
    mean_square: Option<M::TangentVector>,
}

impl<M: Differentiable> RmsProp<M> {
    /// RMSProp with the canonical decay (0.9).
    pub fn new(learning_rate: f64) -> Self {
        RmsProp {
            learning_rate,
            rho: 0.9,
            epsilon: 1e-8,
            mean_square: None,
        }
    }
}

impl<M> Optimizer<M> for RmsProp<M>
where
    M: Differentiable,
    M::TangentVector: PointwiseMath,
{
    fn update(&mut self, model: &mut M, gradient: &M::TangentVector) {
        let prev = self
            .mean_square
            .take()
            .unwrap_or_else(M::TangentVector::zero);
        let ms = prev
            .scaled_by(self.rho)
            .adding(&gradient.pointwise_mul(gradient).scaled_by(1.0 - self.rho));
        let step = gradient
            .pointwise_div(&ms.pointwise_sqrt().adding_scalar(self.epsilon))
            .scaled_by(-self.learning_rate);
        self.mean_square = Some(ms);
        model.move_along(&step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A 1-D quadratic bowl: loss = (x-3)², gradient = 2(x-3).
    fn grad(x: f64) -> f64 {
        2.0 * (x - 3.0)
    }

    fn minimize<O: Optimizer<f64>>(mut opt: O, steps: usize) -> f64 {
        let mut x = 0.0f64;
        for _ in 0..steps {
            let g = grad(x);
            opt.update(&mut x, &g);
        }
        x
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Sgd::<f64>::new(0.1), 100);
        assert!((x - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        // With few steps, momentum gets closer than plain SGD at small lr.
        let plain = minimize(Sgd::<f64>::new(0.01), 40);
        let momentum = minimize(Sgd::<f64>::with_momentum(0.01, 0.9), 40);
        assert!((momentum - 3.0).abs() < (plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Adam::<f64>::new(0.3), 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let x = minimize(RmsProp::<f64>::new(0.1), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_handles_poorly_scaled_coordinates() {
        // loss = 1000·(a-1)² + 0.001·(b-1)²; Adam's per-coordinate scaling
        // makes progress on both; SGD at a stable lr barely moves b.
        let grad = |p: &(f64, f64)| (2000.0 * (p.0 - 1.0), 0.002 * (p.1 - 1.0));
        let mut adam_p = (0.0, 0.0);
        let mut adam = Adam::<(f64, f64)>::new(0.05);
        let mut sgd_p = (0.0, 0.0);
        let mut sgd = Sgd::<(f64, f64)>::new(0.0004); // stability bound of the stiff axis
        for _ in 0..500 {
            let g = grad(&adam_p);
            adam.update(&mut adam_p, &g);
            let g = grad(&sgd_p);
            sgd.update(&mut sgd_p, &g);
        }
        assert!((adam_p.1 - 1.0).abs() < (sgd_p.1 - 1.0).abs());
    }

    #[test]
    fn updates_are_in_place_through_unique_borrow() {
        use s4tf_tensor::Tensor;
        let mut model = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        let snapshot = model.clone();
        let mut opt = Sgd::<Tensor<f32>>::new(0.5);
        let g = Tensor::from_vec(vec![2.0f32, 2.0], &[2]);
        opt.update(&mut model, &g);
        assert_eq!(model.as_slice(), &[0.0, 1.0]);
        // Value semantics: the pre-update copy is untouched.
        assert_eq!(snapshot.as_slice(), &[1.0, 2.0]);
    }
}
