//! Learning-rate schedules.
//!
//! The paper's Table 1 notes its ResNet-50 run reached higher accuracy via
//! "algorithmic tweaks inspired by fastai" — chiefly one-cycle learning-
//! rate scheduling. Schedules here are plain value types producing a rate
//! per step; optimizers expose `learning_rate` as a public field, so
//! applying a schedule is one assignment per step.

/// A learning-rate schedule: a pure function of the step index.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// A fixed rate.
    Constant(f64),
    /// Multiplies the base rate by `factor` every `every` steps.
    StepDecay {
        /// Initial rate.
        base: f64,
        /// Multiplier applied at each boundary.
        factor: f64,
        /// Steps between boundaries.
        every: usize,
    },
    /// Cosine annealing from `base` to `floor` over `total` steps.
    CosineAnnealing {
        /// Initial rate.
        base: f64,
        /// Final rate.
        floor: f64,
        /// Steps to anneal over.
        total: usize,
    },
    /// fastai-style one-cycle: linear warmup to `peak` over the first
    /// `warmup` steps, then cosine decay to `floor` over the remainder.
    OneCycle {
        /// Peak rate reached at the end of warmup.
        peak: f64,
        /// Final rate.
        floor: f64,
        /// Warmup steps.
        warmup: usize,
        /// Total steps in the cycle.
        total: usize,
    },
}

impl Schedule {
    /// The learning rate at `step` (0-indexed).
    pub fn lr(&self, step: usize) -> f64 {
        match *self {
            Schedule::Constant(base) => base,
            Schedule::StepDecay {
                base,
                factor,
                every,
            } => base * factor.powi((step / every.max(1)) as i32),
            Schedule::CosineAnnealing { base, floor, total } => {
                let t = (step.min(total) as f64) / total.max(1) as f64;
                floor + 0.5 * (base - floor) * (1.0 + (std::f64::consts::PI * t).cos())
            }
            Schedule::OneCycle {
                peak,
                floor,
                warmup,
                total,
            } => {
                if step < warmup {
                    peak * (step as f64 + 1.0) / warmup.max(1) as f64
                } else {
                    let span = total.saturating_sub(warmup).max(1) as f64;
                    let t = ((step - warmup).min(total - warmup) as f64) / span;
                    floor + 0.5 * (peak - floor) * (1.0 + (std::f64::consts::PI * t).cos())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant() {
        let s = Schedule::Constant(0.1);
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(10_000), 0.1);
    }

    #[test]
    fn step_decay_halves_at_boundaries() {
        let s = Schedule::StepDecay {
            base: 0.8,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.lr(0), 0.8);
        assert_eq!(s.lr(9), 0.8);
        assert_eq!(s.lr(10), 0.4);
        assert_eq!(s.lr(25), 0.2);
    }

    #[test]
    fn cosine_annealing_endpoints_and_monotonicity() {
        let s = Schedule::CosineAnnealing {
            base: 1.0,
            floor: 0.1,
            total: 100,
        };
        assert!((s.lr(0) - 1.0).abs() < 1e-12);
        assert!((s.lr(100) - 0.1).abs() < 1e-12);
        assert_eq!(s.lr(1000), s.lr(100), "clamps past the horizon");
        for step in 1..=100 {
            assert!(s.lr(step) <= s.lr(step - 1) + 1e-12, "monotone decay");
        }
        assert!((s.lr(50) - 0.55).abs() < 1e-12, "midpoint is the mean");
    }

    #[test]
    fn one_cycle_warms_up_then_decays() {
        let s = Schedule::OneCycle {
            peak: 0.4,
            floor: 0.004,
            warmup: 10,
            total: 110,
        };
        // Warmup is linear and increasing.
        for step in 1..10 {
            assert!(s.lr(step) > s.lr(step - 1));
        }
        assert!((s.lr(9) - 0.4).abs() < 1e-12, "peak at end of warmup");
        // Decay phase is decreasing to the floor.
        for step in 11..=110 {
            assert!(s.lr(step) <= s.lr(step - 1) + 1e-12);
        }
        assert!((s.lr(110) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn schedule_drives_an_optimizer() {
        use crate::optimizer::{Optimizer, Sgd};
        // Minimize (x−3)² with one-cycle scheduling; the schedule mutates
        // the optimizer's public learning_rate per step (§4.2's "no
        // wrappers" philosophy: the optimizer is a plain mutable value).
        let s = Schedule::OneCycle {
            peak: 0.3,
            floor: 0.001,
            warmup: 5,
            total: 60,
        };
        let mut x = 0.0f64;
        let mut opt = Sgd::<f64>::new(0.0);
        for step in 0..60 {
            opt.learning_rate = s.lr(step);
            let g = 2.0 * (x - 3.0);
            opt.update(&mut x, &g);
        }
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }
}
