//! The `Layer` protocol (paper §4.1).

use s4tf_core::Differentiable;
use s4tf_runtime::DTensor;

/// The pullback a layer's VJP returns: maps the output cotangent to the
/// layer-parameter cotangent and the input cotangent.
pub type PullbackFn<L> =
    Box<dyn Fn(&DTensor) -> (<L as Differentiable>::TangentVector, DTensor) + Send>;

/// The pullback of two composed layers (see [`compose_pullbacks`]).
pub type ComposedPullbackFn<F, G> = Box<
    dyn Fn(
            &DTensor,
        ) -> (
            (
                <F as Differentiable>::TangentVector,
                <G as Differentiable>::TangentVector,
            ),
            DTensor,
        ) + Send,
>;

/// A neural-network layer: a `Differentiable` value whose application to an
/// input is differentiable with respect to *both* the parameters and the
/// input.
///
/// This is the paper's `Layer` protocol: "each conforming Layer must
/// provide an implementation of `callAsFunction` that defines how to apply
/// a transformation to a given input; this function must be annotated
/// `@differentiable`". In Rust the derivative is supplied explicitly as a
/// VJP ([`Layer::forward_with_pullback`]) — the same bundle Swift's
/// compiler synthesizes (paper Figure 3) — and composes mechanically:
/// a model's pullback chains its sublayers' pullbacks in reverse.
pub trait Layer: Differentiable {
    /// Applies the layer (Swift's `callAsFunction`).
    fn forward(&self, input: &DTensor) -> DTensor;

    /// Applies the layer, returning the output together with the pullback
    /// with respect to (parameters, input).
    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>);
}

/// Chains two layers' pullbacks: given `x --f--> h --g--> y`, returns the
/// pullback of the composite with tangent `(f-tangent, g-tangent)`.
///
/// Model implementations typically open-code this (paper Figure 6 models
/// are explicit structs), but the helper keeps hand-written pullbacks
/// honest and is used by the layer tests.
pub fn compose_pullbacks<F: Layer, G: Layer>(
    f_pb: PullbackFn<F>,
    g_pb: PullbackFn<G>,
) -> ComposedPullbackFn<F, G> {
    Box::new(move |dy: &DTensor| {
        let (g_grad, dh) = g_pb(dy);
        let (f_grad, dx) = f_pb(&dh);
        ((f_grad, g_grad), dx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::layers::Dense;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_runtime::Device;
    use s4tf_tensor::Tensor;

    #[test]
    fn compose_pullbacks_chains() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = Device::naive();
        let f = Dense::new(3, 4, Activation::Tanh, &d, &mut rng);
        let g = Dense::new(4, 2, Activation::Identity, &d, &mut rng);
        let x = DTensor::from_tensor(Tensor::randn(&[5, 3], &mut rng), &d);

        let (h, f_pb) = f.forward_with_pullback(&x);
        let (y, g_pb) = g.forward_with_pullback(&h);
        let pb = compose_pullbacks::<Dense, Dense>(f_pb, g_pb);
        let ((df, dg), dx) = pb(&y.ones_like());
        assert_eq!(df.weight.dims(), vec![3, 4]);
        assert_eq!(dg.weight.dims(), vec![4, 2]);
        assert_eq!(dx.dims(), vec![5, 3]);
    }
}
