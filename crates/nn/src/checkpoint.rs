//! Crash-safe checkpointing.
//!
//! Because models are value types of plain tensors (paper §4.1 — no
//! `Variable` wrappers, no graph state), a checkpoint is exactly the
//! parameter tensors. [`Checkpointable`] gives every layer a named-parameter
//! traversal (the analogue of Swift's `KeyPathIterable` conformance used by
//! the S4TF checkpoint readers), and [`Checkpoint`] serializes that flat
//! `name → tensor` map into a versioned, checksummed binary file.
//!
//! Durability model:
//!
//! * **Atomic writes** — a checkpoint is written to a `*.tmp` file in the
//!   same directory and then `rename`d into place, so a crash mid-write can
//!   never leave a truncated file under the final name.
//! * **Checksummed reads** — the file ends with an FNV-1a digest of every
//!   preceding byte; corruption surfaces as a typed
//!   [`RuntimeError`] (`FaultKind::Io`), never as a garbage model.
//! * **Resumable training** — [`TrainingSession`] checkpoints every *k*
//!   steps and, on construction, restores from the newest checkpoint in its
//!   directory; with a stateless optimizer the resumed run is bit-identical
//!   to an uninterrupted one.
//!
//! Checkpoint I/O participates in fault injection (`S4TF_FAULT_SPEC` sites
//! `checkpoint_io` and `io`), so chaos runs exercise the save/restore path.

use crate::diag;
use crate::fault;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::{RuntimeError, Tensor};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
const MAGIC: &[u8; 8] = b"S4TFCKPT";
/// Current format version.
const FORMAT_VERSION: u32 = 1;
/// File extension for finished checkpoints.
const EXTENSION: &str = "ckpt";

/// Named-parameter traversal: the model-structure half of checkpointing.
///
/// Implementations visit every trainable parameter exactly once, in a
/// stable order, with a hierarchical dotted name (`"conv1.filter"`,
/// `"first.second.weight"`). Layers without parameters implement it as a
/// no-op so combinators like [`crate::layers::Chain`] compose.
pub trait Checkpointable {
    /// Visits every parameter as `(name, tensor)`.
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor));

    /// Visits every parameter mutably, for restore.
    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor));

    /// The parameter names, in traversal order.
    fn param_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.for_each_param("", &mut |name, _| names.push(name.to_string()));
        names
    }
}

/// Joins a traversal prefix with a field name (`"" + "weight"` → `"weight"`,
/// `"fc1" + "weight"` → `"fc1.weight"`).
pub fn join_name(prefix: &str, field: &str) -> String {
    if prefix.is_empty() {
        field.to_string()
    } else {
        format!("{prefix}.{field}")
    }
}

/// A point-in-time snapshot of a model's parameters, tagged with the
/// training step it was taken at.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The training step this snapshot was taken at.
    pub step: u64,
    params: BTreeMap<String, Tensor<f32>>,
}

impl Checkpoint {
    /// Snapshots `model` at `step`. Fails with the attributed error if any
    /// parameter is poisoned (a deferred fault from an earlier op).
    pub fn from_model<M: Checkpointable + ?Sized>(
        step: u64,
        model: &M,
    ) -> Result<Checkpoint, RuntimeError> {
        // Host copies of the parameters are checkpoint-I/O working set,
        // not model memory — credit them to the checkpoint site.
        let _site = crate::met::mem_site("checkpoint");
        let mut params = BTreeMap::new();
        let mut first_err: Option<RuntimeError> = None;
        model.for_each_param("", &mut |name, t| {
            if first_err.is_some() {
                return;
            }
            match t.to_tensor_checked() {
                Ok(host) => {
                    params.insert(name.to_string(), host);
                }
                Err(e) => first_err = Some(e),
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(Checkpoint { step, params }),
        }
    }

    /// Builds a checkpoint from an explicit `name → tensor` map.
    pub fn from_params(step: u64, params: BTreeMap<String, Tensor<f32>>) -> Checkpoint {
        Checkpoint { step, params }
    }

    /// The tensor stored under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Tensor<f32>> {
        self.params.get(name)
    }

    /// Number of stored parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the checkpoint stores no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The stored parameter names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.params.keys().map(|s| s.as_str()).collect()
    }

    /// Restores every parameter of `model` from this checkpoint, placing the
    /// tensors on `device`. A missing name or a shape mismatch is a typed
    /// I/O error and leaves `model` partially updated.
    pub fn restore<M: Checkpointable + ?Sized>(
        &self,
        model: &mut M,
        device: &Device,
    ) -> Result<(), RuntimeError> {
        let mut first_err: Option<RuntimeError> = None;
        model.for_each_param_mut("", &mut |name, slot| {
            if first_err.is_some() {
                return;
            }
            match self.params.get(name) {
                None => {
                    first_err = Some(RuntimeError::io(
                        "checkpoint.restore",
                        format!("checkpoint has no parameter `{name}`"),
                    ));
                }
                Some(stored) if stored.dims() != slot.dims().as_slice() => {
                    first_err = Some(RuntimeError::io(
                        "checkpoint.restore",
                        format!(
                            "shape mismatch for `{name}`: checkpoint {:?}, model {:?}",
                            stored.dims(),
                            slot.dims()
                        ),
                    ));
                }
                Some(stored) => *slot = DTensor::from_tensor(stored.clone(), device),
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Serializes to the versioned binary format (see module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u32).to_le_bytes());
        for (name, tensor) in &self.params {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let dims = tensor.dims();
            out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            let data = tensor.as_slice();
            out.extend_from_slice(&(data.len() as u64 * 4).to_le_bytes());
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let digest = fnv1a(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Parses the binary format, verifying magic, version, structure and
    /// the trailing checksum. Every failure mode is a typed I/O error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, RuntimeError> {
        // Tensors decoded from the file are checkpoint-I/O allocations.
        let _site = crate::met::mem_site("checkpoint");
        let bad = |msg: String| RuntimeError::io("checkpoint.load", msg);
        if bytes.len() < MAGIC.len() + 4 + 8 + 4 + 8 {
            return Err(bad(format!("file too short ({} bytes)", bytes.len())));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let computed = fnv1a(body);
        if stored != computed {
            return Err(bad(format!(
                "checksum mismatch: stored {stored:016x}, computed {computed:016x} \
                 (file is corrupt or truncated)"
            )));
        }
        let mut r = Reader { buf: body, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(bad("bad magic: not an s4tf checkpoint".to_string()));
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let step = r.u64()?;
        let count = r.u32()? as usize;
        let mut params = BTreeMap::new();
        for _ in 0..count {
            let name_len = r.u32()? as usize;
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|e| bad(format!("parameter name is not UTF-8: {e}")))?;
            let rank = r.u32()? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u64()? as usize);
            }
            let byte_len = r.u64()? as usize;
            let expected: usize = dims.iter().product::<usize>() * 4;
            if byte_len != expected {
                return Err(bad(format!(
                    "parameter `{name}`: payload is {byte_len} bytes but shape {dims:?} \
                     needs {expected}"
                )));
            }
            let raw = r.take(byte_len)?;
            let data: Vec<f32> = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            params.insert(name, Tensor::from_vec(data, &dims));
        }
        if r.pos != body.len() {
            return Err(bad(format!(
                "{} trailing bytes after the last parameter",
                body.len() - r.pos
            )));
        }
        Ok(Checkpoint { step, params })
    }

    /// The canonical filename for this checkpoint (`ckpt-00000042.ckpt`).
    pub fn file_name(&self) -> String {
        format!("ckpt-{:08}.{EXTENSION}", self.step)
    }

    /// Writes the checkpoint into `dir` atomically: serialize → write to a
    /// `.tmp` sibling → `rename` into place. Returns the final path.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, RuntimeError> {
        let final_path = dir.join(self.file_name());
        if fault::should_inject(fault::FaultSite::CheckpointIo) {
            diag::event!(
                "fault.injected",
                site = "checkpoint_io",
                op = "checkpoint.save",
                backend = "host",
            );
            return Err(RuntimeError::injected(
                "checkpoint.save",
                "host",
                "checkpoint_io",
            ));
        }
        let io_err = |what: &str, e: std::io::Error| {
            RuntimeError::io(
                "checkpoint.save",
                format!("{what} {}: {e}", final_path.display()),
            )
        };
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating directory for", e))?;
        let tmp = dir.join(format!("{}.tmp", self.file_name()));
        std::fs::write(&tmp, self.to_bytes()).map_err(|e| io_err("writing", e))?;
        std::fs::rename(&tmp, &final_path).map_err(|e| io_err("committing", e))?;
        diag::event!(
            "checkpoint.saved",
            step = self.step,
            params = self.params.len(),
            path = final_path.display(),
        );
        Ok(final_path)
    }

    /// Reads and verifies a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, RuntimeError> {
        if fault::should_inject(fault::FaultSite::CheckpointIo) {
            diag::event!(
                "fault.injected",
                site = "checkpoint_io",
                op = "checkpoint.load",
                backend = "host",
            );
            return Err(RuntimeError::injected(
                "checkpoint.load",
                "host",
                "checkpoint_io",
            ));
        }
        let bytes = std::fs::read(path).map_err(|e| {
            RuntimeError::io(
                "checkpoint.load",
                format!("reading {}: {e}", path.display()),
            )
        })?;
        Checkpoint::from_bytes(&bytes)
    }
}

/// FNV-1a over `bytes` — tiny, dependency-free, and good enough to catch
/// the torn writes and bit rot checkpointing cares about.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Bounds-checked cursor over the serialized body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.pos + n > self.buf.len() {
            return Err(RuntimeError::io(
                "checkpoint.load",
                format!(
                    "truncated checkpoint: wanted {n} bytes at offset {}, file body is {}",
                    self.pos,
                    self.buf.len()
                ),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, RuntimeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, RuntimeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// The step number encoded in a checkpoint filename, if it is one.
pub fn step_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name
        .strip_prefix("ckpt-")?
        .strip_suffix(&format!(".{EXTENSION}"))?;
    stem.parse().ok()
}

/// The newest checkpoint in `dir` (highest step), or `None` if there are no
/// checkpoints. A missing directory is `None`, not an error, so a fresh
/// training run starts cleanly.
pub fn latest(dir: &Path) -> Result<Option<PathBuf>, RuntimeError> {
    if fault::should_inject(fault::FaultSite::Io) {
        diag::event!(
            "fault.injected",
            site = "io",
            op = "checkpoint.latest",
            backend = "host",
        );
        return Err(RuntimeError::injected("checkpoint.latest", "host", "io"));
    }
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(RuntimeError::io(
                "checkpoint.latest",
                format!("listing {}: {e}", dir.display()),
            ))
        }
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| {
            RuntimeError::io(
                "checkpoint.latest",
                format!("listing {}: {e}", dir.display()),
            )
        })?;
        let path = entry.path();
        if let Some(step) = step_of(&path) {
            if best.as_ref().map(|(s, _)| step > *s).unwrap_or(true) {
                best = Some((step, path));
            }
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// The checkpoint directory: `S4TF_CHECKPOINT_DIR` if set, else `default`.
/// Lets a launcher relocate checkpoints without touching training code.
pub fn env_dir(default: impl Into<PathBuf>) -> PathBuf {
    std::env::var_os("S4TF_CHECKPOINT_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| default.into())
}

/// The checkpoint interval in steps: `S4TF_CHECKPOINT_EVERY` if set to a
/// positive integer, else `default`.
pub fn env_every(default: u64) -> u64 {
    std::env::var("S4TF_CHECKPOINT_EVERY")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&k| k > 0)
        .unwrap_or(default)
}

/// A resumable training loop: owns the model, counts steps, checkpoints
/// every `every` steps, and restores from the newest checkpoint in `dir` on
/// construction.
///
/// With a stateless optimizer (plain SGD) and a deterministic data order,
/// killing the process mid-step and re-running yields exactly the weights
/// of an uninterrupted run: the interrupted step's partial effects live
/// only in the dead process, and the survivor replays from the last
/// durable snapshot.
pub struct TrainingSession<M> {
    /// The live model.
    pub model: M,
    /// Steps completed so far (across restarts).
    pub step: u64,
    dir: PathBuf,
    every: u64,
    device: Device,
    resumed_from: Option<u64>,
}

impl<M: Checkpointable> TrainingSession<M> {
    /// Opens a session in `dir`, restoring `model` from the newest
    /// checkpoint there if one exists. `every == 0` disables periodic
    /// checkpointing.
    pub fn new(
        mut model: M,
        device: &Device,
        dir: impl Into<PathBuf>,
        every: u64,
    ) -> Result<TrainingSession<M>, RuntimeError> {
        let dir = dir.into();
        let mut step = 0;
        let mut resumed_from = None;
        if let Some(path) = latest(&dir)? {
            let ckpt = Checkpoint::load(&path)?;
            ckpt.restore(&mut model, device)?;
            step = ckpt.step;
            resumed_from = Some(ckpt.step);
            diag::event!("checkpoint.resumed", step = step, path = path.display());
        }
        Ok(TrainingSession {
            model,
            step,
            dir,
            every,
            device: device.clone(),
            resumed_from,
        })
    }

    /// The step this session resumed from, if it found a checkpoint.
    pub fn resumed_from(&self) -> Option<u64> {
        self.resumed_from
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Runs one training step via `f` (which receives the model and the
    /// 0-based index of the step it is computing), then checkpoints if the
    /// completed-step count hits a multiple of `every`.
    pub fn run_step(&mut self, f: impl FnOnce(&mut M, u64) -> f64) -> Result<f64, RuntimeError> {
        let loss = f(&mut self.model, self.step);
        self.step += 1;
        if self.every > 0 && self.step.is_multiple_of(self.every) {
            Checkpoint::from_model(self.step, &self.model)?.save(&self.dir)?;
        }
        Ok(loss)
    }

    /// Snapshots the current state unconditionally (e.g. at end of
    /// training).
    pub fn save_now(&self) -> Result<PathBuf, RuntimeError> {
        Checkpoint::from_model(self.step, &self.model)?.save(&self.dir)
    }

    /// The device restored parameters are placed on.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

// ---------------------------------------------------------------------------
// Checkpointable implementations for the layer suite.
// ---------------------------------------------------------------------------

use crate::layers::{
    AvgPool2D, BatchNorm, Chain, Conv2D, Dense, Dropout, Embedding, Flatten, MaxPool2D,
};

impl Checkpointable for Dense {
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor)) {
        f(&join_name(prefix, "weight"), &self.weight);
        f(&join_name(prefix, "bias"), &self.bias);
    }

    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor)) {
        f(&join_name(prefix, "weight"), &mut self.weight);
        f(&join_name(prefix, "bias"), &mut self.bias);
    }
}

impl Checkpointable for Conv2D {
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor)) {
        f(&join_name(prefix, "filter"), &self.filter);
        f(&join_name(prefix, "bias"), &self.bias);
    }

    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor)) {
        f(&join_name(prefix, "filter"), &mut self.filter);
        f(&join_name(prefix, "bias"), &mut self.bias);
    }
}

impl Checkpointable for BatchNorm {
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor)) {
        f(&join_name(prefix, "scale"), &self.scale);
        f(&join_name(prefix, "offset"), &self.offset);
    }

    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor)) {
        f(&join_name(prefix, "scale"), &mut self.scale);
        f(&join_name(prefix, "offset"), &mut self.offset);
    }
}

impl Checkpointable for Embedding {
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor)) {
        f(&join_name(prefix, "table"), &self.table);
    }

    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor)) {
        f(&join_name(prefix, "table"), &mut self.table);
    }
}

impl<A: Checkpointable, B: Checkpointable> Checkpointable for Chain<A, B> {
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor)) {
        self.first.for_each_param(&join_name(prefix, "first"), f);
        self.second.for_each_param(&join_name(prefix, "second"), f);
    }

    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor)) {
        self.first
            .for_each_param_mut(&join_name(prefix, "first"), f);
        self.second
            .for_each_param_mut(&join_name(prefix, "second"), f);
    }
}

/// Parameterless layers checkpoint as nothing, so combinators compose.
macro_rules! checkpointable_stateless {
    ($($ty:ty),* $(,)?) => {$(
        impl Checkpointable for $ty {
            fn for_each_param(&self, _prefix: &str, _f: &mut dyn FnMut(&str, &DTensor)) {}
            fn for_each_param_mut(
                &mut self,
                _prefix: &str,
                _f: &mut dyn FnMut(&str, &mut DTensor),
            ) {}
        }
    )*};
}

checkpointable_stateless!(Flatten, AvgPool2D, MaxPool2D, Dropout);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mlp(device: &Device) -> Chain<Dense, Dense> {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        Chain::new(
            Dense::new(4, 3, Activation::Tanh, device, &mut rng),
            Dense::new(3, 2, Activation::Identity, device, &mut rng),
        )
    }

    #[test]
    fn traversal_names_are_hierarchical_and_stable() {
        let model = mlp(&Device::naive());
        assert_eq!(
            model.param_names(),
            vec!["first.weight", "first.bias", "second.weight", "second.bias"]
        );
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let model = mlp(&Device::naive());
        let ckpt = Checkpoint::from_model(17, &model).unwrap();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.step, 17);
        assert_eq!(back, ckpt);
        // Exact bit-level round trip of the payload.
        assert_eq!(
            back.get("first.weight").unwrap().as_slice(),
            ckpt.get("first.weight").unwrap().as_slice()
        );
    }

    #[test]
    fn corrupted_bytes_surface_typed_errors_not_panics() {
        let model = mlp(&Device::naive());
        let good = Checkpoint::from_model(1, &model).unwrap().to_bytes();

        // Flip a payload byte: checksum catches it.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        let err = Checkpoint::from_bytes(&flipped).unwrap_err();
        assert_eq!(err.kind, s4tf_tensor::FaultKind::Io);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // Truncate: also an error, not a panic.
        let err = Checkpoint::from_bytes(&good[..good.len() / 3]).unwrap_err();
        assert_eq!(err.kind, s4tf_tensor::FaultKind::Io);

        // Wrong magic (with a valid checksum) is rejected by name.
        let mut wrong = good.clone();
        wrong[0] = b'X';
        let body_len = wrong.len() - 8;
        let digest = fnv1a(&wrong[..body_len]).to_le_bytes();
        wrong[body_len..].copy_from_slice(&digest);
        let err = Checkpoint::from_bytes(&wrong).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn restore_rejects_missing_and_mismatched_params() {
        let d = Device::naive();
        let model = mlp(&d);
        let ckpt = Checkpoint::from_model(0, &model).unwrap();

        // Restoring an unrelated (differently-shaped) model fails by shape.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut other = Chain::new(
            Dense::new(4, 5, Activation::Tanh, &d, &mut rng),
            Dense::new(5, 2, Activation::Identity, &d, &mut rng),
        );
        let err = ckpt.restore(&mut other, &d).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");

        // A checkpoint missing a parameter fails by name.
        let sparse = Checkpoint::from_params(0, BTreeMap::new());
        let mut target = mlp(&d);
        let err = sparse.restore(&mut target, &d).unwrap_err();
        assert!(err.to_string().contains("no parameter"), "{err}");
    }

    #[test]
    fn env_knobs_fall_back_to_defaults() {
        // Only tests the unset path: mutating the process environment
        // races with parallel tests, and the parse logic is trivial.
        std::env::remove_var("S4TF_CHECKPOINT_DIR");
        std::env::remove_var("S4TF_CHECKPOINT_EVERY");
        assert_eq!(env_dir("/tmp/ckpts"), PathBuf::from("/tmp/ckpts"));
        assert_eq!(env_every(25), 25);
    }

    #[test]
    fn filename_step_round_trips() {
        let model = mlp(&Device::naive());
        let ckpt = Checkpoint::from_model(42, &model).unwrap();
        assert_eq!(ckpt.file_name(), "ckpt-00000042.ckpt");
        assert_eq!(step_of(Path::new("/tmp/x/ckpt-00000042.ckpt")), Some(42));
        assert_eq!(step_of(Path::new("/tmp/x/ckpt-broken.ckpt")), None);
        assert_eq!(step_of(Path::new("/tmp/x/other.bin")), None);
    }

    #[test]
    fn latest_finds_the_highest_step() {
        let dir = std::env::temp_dir().join(format!("s4tf-ckpt-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(latest(&dir).unwrap(), None, "missing dir is empty");
        let model = mlp(&Device::naive());
        for step in [3, 12, 7] {
            Checkpoint::from_model(step, &model)
                .unwrap()
                .save(&dir)
                .unwrap();
        }
        let newest = latest(&dir).unwrap().unwrap();
        assert_eq!(step_of(&newest), Some(12));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_no_tmp_residue() {
        let dir = std::env::temp_dir().join(format!("s4tf-ckpt-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let model = mlp(&Device::naive());
        let path = Checkpoint::from_model(5, &model)
            .unwrap()
            .save(&dir)
            .unwrap();
        assert!(path.exists());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp file must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
