//! Offline stand-in for `serde`: value-tree serialization traits.
//!
//! Instead of serde's zero-copy `Serializer`/`Deserializer` machinery,
//! types convert to and from a JSON-shaped [`Value`] tree. The
//! companion `serde_json` stand-in renders/parses that tree. The derive
//! macros are not provided — the workspace's handful of serializable
//! types implement the traits by hand.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the wire format of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error carrying an arbitrary message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// `serde::de` module shim: the error constructor lives here in real serde.
pub mod de {
    pub use crate::Error;
}

/// `serde::ser` module shim.
pub mod ser {
    pub use crate::Error;
}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, failing with a message on shape mismatches.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            v => Err(Error::custom(format!("expected bool, found {}", v.kind()))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    v => return Err(Error::custom(format!(
                        "expected integer, found {}", v.kind()))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: u64 = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("negative integer for unsigned type"))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    v => return Err(Error::custom(format!(
                        "expected integer, found {}", v.kind()))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    v => Err(Error::custom(format!(
                        "expected number, found {}", v.kind()))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            v => Err(Error::custom(format!(
                "expected string, found {}",
                v.kind()
            ))),
        }
    }
}

// ---------------------------------------------------- containers & refs

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            v => Err(Error::custom(format!("expected array, found {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            v => T::from_value(v).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            v => Err(Error::custom(format!(
                "expected object, found {}",
                v.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            v => Err(Error::custom(format!(
                "expected object, found {}",
                v.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Extracts and deserializes a required object field.
pub fn field<T: Deserialize>(value: &Value, key: &str) -> Result<T, Error> {
    match value.get(key) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}
