//! Offline stand-in for `parking_lot`: the non-poisoning `Mutex`,
//! `RwLock` and `Condvar` API over `std::sync`. A poisoned std lock (a
//! panic while held) is recovered transparently, matching parking_lot's
//! no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // std guard; it is `Some` at every other moment.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII write guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            *lock.lock() = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
        drop(done);
        handle.join().unwrap();
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut m = Mutex::new(3);
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 4);
    }
}
