//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the same surface API (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`).
//!
//! Unlike the real crate there is no statistical analysis, outlier
//! rejection or HTML report — each benchmark is warmed up briefly, then
//! timed for the configured measurement window, and the mean
//! nanoseconds per iteration is printed. When the binary is invoked
//! with `--test` (as `cargo test` does for `harness = false` bench
//! targets) every benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Top-level harness handle; configuration is builder-style.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how long each benchmark spins before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the stand-in takes one
    /// continuous measurement rather than `n` samples.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// Throughput annotation for a group (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `"fused/4096"`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        match throughput {
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
        }
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into(), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            test_mode: self.criterion.test_mode,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, elapsed)) if iters > 0 => {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                println!(
                    "  {}/{id}: {per_iter:.1} ns/iter ({iters} iters)",
                    self.name
                );
            }
            _ => println!("  {}/{id}: ran (test mode)", self.name),
        }
    }

    /// Ends the group (report flushing in the real crate; a no-op here).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under measurement.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, first warming up, then iterating for the
    /// measurement window. In `--test` mode runs it exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.report = None;
            return;
        }
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.measurement;
        while Instant::now() < deadline {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.report = Some((iters, start.elapsed()));
    }
}

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: a function list plus optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_squares(c: &mut Criterion) {
        let mut group = c.benchmark_group("squares");
        group.throughput(Throughput::Elements(1));
        group.bench_function("direct", |b| b.iter(|| black_box(7u64 * 7)));
        group.bench_with_input(BenchmarkId::new("param", 9), &9u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.test_mode = false;
        bench_squares(&mut c);
    }

    criterion_group! {
        name = grouped;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .sample_size(10);
        targets = bench_squares
    }

    #[test]
    fn group_macro_produces_runner() {
        grouped();
    }
}
