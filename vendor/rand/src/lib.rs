//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! Provides the trait surface this workspace actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), and [`SeedableRng`].
//! See `vendor/README.md` for why this exists.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full value range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) at full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) at full f64 precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`lo..hi`, `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

macro_rules! range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`] (the user-facing trait).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed-expansion generator.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `rand::rngs` module shim (unused by the workspace but kept for parity).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 33) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: usize = rng.gen_range(1..9);
            assert!((1..9).contains(&u));
            let v: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&v));
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
