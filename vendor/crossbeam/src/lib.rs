//! Offline stand-in for `crossbeam`: the `channel` module this workspace
//! uses, implemented over `std::sync::mpsc` (whose modern std
//! implementation is itself derived from crossbeam-channel).

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the channel disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Error returned by [`Receiver::recv`] on disconnect.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}
