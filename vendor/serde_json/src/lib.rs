//! Offline stand-in for `serde_json`: renders and parses the
//! [`serde::Value`] tree produced by the companion serde stand-in.

pub use serde::Value;

use std::fmt;

/// Error from serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Into::into)
}

// ------------------------------------------------------------- printing

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // JSON numbers that happen to be integral still parse back as
        // numbers, so `1` for 1.0 is fine; nothing more to do.
        let _ = s;
    } else {
        // Real serde_json refuses non-finite floats; emit null like its
        // `json!` macro does to keep output well-formed.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let json = r#"{"a":[1,2.5,-3],"b":{"c":"hi\n","d":null},"e":true}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
        let printed = to_string(&v).unwrap();
        let reparsed: Value = from_str(&printed).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":1,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v: Value = from_str(r#"{"xs":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_round_trip_via_serde_traits() {
        let xs: Vec<f64> = vec![1.0, 2.25, -0.5];
        let json = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }
}
