//! Offline stand-in for `proptest`: deterministic property-based testing.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`Just`
//! strategies, `prop::collection::vec`, `any::<T>()`, `prop_oneof!` and
//! the `proptest!`/`prop_assert*`/`prop_assume!` macros. Differences
//! from the real crate: inputs are generated from a seed derived from
//! the test name and case index (fully deterministic across runs, no
//! `PROPTEST_*` env handling), and failing cases are reported but not
//! shrunk.

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value using the runner's RNG.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Transforms generated values with a function.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Chains into a second strategy derived from the first's value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (self.f)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            self.0.generate(runner)
        }
    }

    /// Uniformly picks one of several boxed strategies per generated
    /// value; backs the `prop_oneof!` macro.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let idx = runner.rng.gen_range(0..self.options.len());
            self.options[idx].generate(runner)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(bool, i8, i16, i32, i64, u8, u16, u32, u64, f32, f64);

    impl Arbitrary for usize {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for isize {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng.gen::<i64>() as isize
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive element-count range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// A strategy for `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Per-case state handed to strategies: the case's RNG.
    pub struct TestRunner {
        /// The deterministic RNG driving all generation for this case.
        pub rng: ChaCha8Rng,
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the property is violated.
        Fail(String),
        /// `prop_assume!` filtered this input out; not a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed property (see `prop_assert!`).
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Fail(msg.to_string())
        }

        /// A rejected input (see `prop_assume!`).
        pub fn reject(msg: impl std::fmt::Display) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    /// Runner configuration, set via `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the offline
            // deterministic suite fast while exercising each property
            // across many shapes.
            ProptestConfig { cases: 64 }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Drives one property: `cases` deterministic inputs seeded from the
    /// test name, panicking (with the seed) on the first failure.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut test: F)
    where
        F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..config.cases as u64 {
            // Golden-ratio stride decorrelates consecutive case seeds.
            let seed = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut runner = TestRunner {
                rng: ChaCha8Rng::seed_from_u64(seed),
            };
            match test(&mut runner) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed at case {case} (seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

/// Declares property tests: each `fn` becomes a `#[test]` whose
/// arguments are drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body $config; $($rest)*);
    };
    (@body $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(stringify!($name), &config, |runner| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner);)+
                let out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                out
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// A strategy choosing uniformly between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values compare equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two values compare unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current input without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

pub mod prelude {
    //! Everything a property-test file needs, matching the real crate's
    //! `proptest::prelude::*` (including `prop` as a crate alias).
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            xs in prop::collection::vec(any::<u8>(), 2..=5),
            exact in prop::collection::vec(0u32..9, 3usize),
        ) {
            prop_assert!((2..=5).contains(&xs.len()));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0usize),
            (1usize..4).prop_map(|n| n * 10),
        ]) {
            prop_assert!(v == 0 || (10..40).contains(&v), "v = {}", v);
            prop_assume!(v != 0);
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::ProptestConfig;
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            crate::test_runner::run("det", &ProptestConfig::with_cases(5), |runner| {
                out.push((0u64..1000).generate(runner));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
