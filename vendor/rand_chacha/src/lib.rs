//! Offline stand-in for `rand_chacha`: a real ChaCha (8-round) keystream
//! RNG behind the `rand` trait surface. Deterministic per seed; not
//! bit-compatible with crates-io `rand_chacha` (see vendor/README.md).

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce words (the cipher input block).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round = 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn clone_forks_the_stream_state() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
