//! Quickstart: train the paper's Figure 6 LeNet-5 on a synthetic
//! MNIST-like dataset, on each of the three execution backends.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::data::{Dataset, ImageSpec};
use s4tf::models::LeNet;
use s4tf::nn::metrics::accuracy;
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;

fn main() {
    let inject_nan = std::env::var("S4TF_INJECT_NAN").is_ok_and(|v| v == "1");
    let train = Dataset::generate(ImageSpec::mnist_like(), 512, 1);
    let test = Dataset::generate(ImageSpec::mnist_like(), 128, 2);
    let batch_size = 32;
    let epochs = 2;

    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut model = LeNet::new(&device, &mut rng);
        // Debugging cookbook (README): poison one hidden-layer weight so a
        // run with `S4TF_CHECK_NUMERICS=1` attributes the first non-finite
        // kernel output — the fc1 matmul — with op, shape and backend.
        if inject_nan {
            let mut w = model.fc1.weight.to_tensor().into_vec();
            w[0] = f32::NAN;
            let dims = model.fc1.weight.dims();
            model.fc1.weight = DTensor::from_tensor(Tensor::from_vec(w, &dims), &device);
        }
        // The paper's Figure 7 loop: gradients flow through the model
        // struct; the optimizer updates it in place through `&mut`.
        let mut optimizer = Sgd::with_momentum(0.05, 0.9);

        println!("=== device: {} ===", device.kind());
        let start = std::time::Instant::now();
        for epoch in 0..epochs {
            let mut epoch_loss = 0.0;
            let batches = train.batches_per_epoch(batch_size);
            for b in 0..batches {
                let batch = train.batch(batch_size, b, epoch as u64);
                let x = DTensor::from_tensor(batch.images.clone(), &device);
                let y = DTensor::from_tensor(batch.one_hot(10), &device);
                epoch_loss += train_classifier_step(&mut model, &mut optimizer, &x, &y);
            }
            println!(
                "  epoch {epoch}: mean loss {:.4}",
                epoch_loss / batches as f64
            );
        }

        let test_x = DTensor::from_tensor(test.images.clone(), &device);
        let logits = model.forward(&test_x).to_tensor();
        let acc = accuracy(&logits, &test.labels);
        println!(
            "  test accuracy: {:.1}%  ({:.1}s)",
            acc * 100.0,
            start.elapsed().as_secs_f64()
        );
        if let Some(stats) = device.cache_stats() {
            println!(
                "  lazy JIT: {} programs compiled, {} cache hits ({:.0}% hit rate)",
                stats.misses,
                stats.hits,
                stats.hit_ratio() * 100.0
            );
        }
        if !inject_nan {
            assert!(acc > 0.5, "model should beat chance comfortably");
        }
    }

    // With `S4TF_PROFILE=1` (or s4tf::profile::set_enabled) the run above
    // was recorded; dump the aggregate so the overheads are visible.
    if s4tf::profile::enabled() {
        let report = s4tf::profile::report();
        assert!(!report.is_empty(), "profiling was on but recorded nothing");
        println!("\nprofile report (all devices combined):\n{report}");
    }
}
