//! LazyTensor tracing in action (paper §3.3 and Figure 4).
//!
//! Builds LeNet-5 on the lazy device, runs its forward pass *without
//! observing any tensor* — nothing executes, a trace accumulates — then
//! dumps the trace DAG as Graphviz DOT (the paper's Figure 4), cuts it
//! with the barrier, and shows the fusion and caching effects.
//!
//! ```sh
//! cargo run --release --example lazy_tracing > lenet_trace.dot
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::models::LeNet;
use s4tf::prelude::*;

fn main() {
    let device = Device::lazy();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = LeNet::new(&device, &mut rng);
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 28, 28, 1], &mut rng), &device);

    // Forward pass: records a trace; no kernel has run yet.
    let logits = model.forward(&x);

    let Device::Lazy(ctx) = &device else {
        unreachable!()
    };
    eprintln!("trace after forward pass (nothing executed yet):");
    eprintln!("  nodes: {}", ctx.trace_len());
    eprintln!("  op histogram:");
    for (op, count) in ctx.trace_histogram() {
        eprintln!("    {op:20} ×{count}");
    }
    assert_eq!(
        ctx.cache().stats().misses,
        0,
        "no compilation before the cut"
    );

    // Figure 4: the trace of the LeNet-5 forward pass, as DOT on stdout.
    println!("{}", ctx.trace_dot("LeNet-5 forward trace"));

    // Observing the logits cuts the trace: hash → compile (fusion!) → run.
    let values = logits.to_tensor();
    eprintln!("logits: {values:?}");
    let stats = ctx.cache().stats();
    eprintln!(
        "after observation: {} program(s) compiled in {:.2?}",
        stats.misses,
        ctx.cache().compile_time()
    );

    // Re-run the identical program: re-traced (the §3.4 overhead), but the
    // compiled program is reused from the cache.
    for _ in 0..5 {
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 28, 28, 1], &mut rng), &device);
        let _ = model.forward(&x).to_tensor();
    }
    let stats = ctx.cache().stats();
    eprintln!(
        "after 5 more iterations: misses={}, hits={} (tracing time so far: {:.2?})",
        stats.misses,
        stats.hits,
        ctx.trace_time()
    );
    assert_eq!(stats.misses, 1, "identical traces compile exactly once");

    // A shape change (batch 2) forces a recompile — the §3.4 limitation.
    let x2 = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 28, 28, 1], &mut rng), &device);
    let _ = model.forward(&x2).to_tensor();
    eprintln!(
        "after a batch-size change: misses={} (shape changes recompile)",
        ctx.cache().stats().misses
    );
    assert_eq!(ctx.cache().stats().misses, 2);

    // A small SIL leg: differentiate and optimize an IR function, so a run
    // under `S4TF_DUMP=<dir>` also exercises the compiler-side dumps
    // (before/after-pass `.sil` files and the AD synthesis stages).
    let mut module = s4tf::sil::parser::parse_module_unwrap(
        r#"
        func @f(%x: f64) -> f64 {
        bb0(%x: f64):
          %a = mul %x, %x
          %b = sin %a
          %c = add %a, %b
          ret %c
        }
        "#,
    );
    let f = module.func_id("f").expect("function exists");
    let grad = s4tf::sil::ad::gradient(&module, f, &[0.5]).expect("differentiable");
    let iters = s4tf::sil::passes::optimize(&mut module, f);
    eprintln!(
        "sil: grad f(0.5) = {:.4}, optimized in {iters} iteration(s)",
        grad[0]
    );

    if s4tf::diag::dump_enabled() {
        eprintln!(
            "diagnostic dumps written to {}",
            s4tf::diag::dump_dir().expect("dump dir set").display()
        );
    }
}
