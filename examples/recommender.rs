//! A matrix-factorization recommender — the "recommendation systems"
//! domain of the paper's swift-models catalog (§5) — trained with
//! embedding lookups whose gradients are scatter-adds (the §4.3
//! big-to-small pattern: a minibatch update touches only the rows it
//! observed).
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::data::{RatingsDataset, RatingsSpec};
use s4tf::models::MatrixFactorizer;
use s4tf::prelude::*;

fn main() {
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let spec = RatingsSpec::default();
    let data = RatingsDataset::generate(spec, 42);
    println!(
        "synthetic ratings: {} users × {} items, {} train / {} test observations",
        spec.users,
        spec.items,
        data.train.len(),
        data.test.len()
    );

    let mut model = MatrixFactorizer::new(spec.users, spec.items, 6, &device, &mut rng);
    let users = MatrixFactorizer::encode_ids(&data.train.users, &device);
    let items = MatrixFactorizer::encode_ids(&data.train.items, &device);
    let targets = DTensor::from_tensor(
        Tensor::from_vec(data.train.ratings.clone(), &[data.train.len()]),
        &device,
    );
    let test_users = MatrixFactorizer::encode_ids(&data.test.users, &device);
    let test_items = MatrixFactorizer::encode_ids(&data.test.items, &device);
    let test_targets = Tensor::from_vec(data.test.ratings.clone(), &[data.test.len()]);

    let n = data.train.len() as f32;
    let before = model.mse(&test_users, &test_items, &test_targets);
    println!("held-out MSE before training: {before:.4}");
    for epoch in 0..200 {
        let (pred, pullback) = model.predict_with_pullback(&users, &items);
        let dy = pred.sub(&targets).mul_scalar(2.0 / n);
        let grads = pullback(&dy);
        model.move_along(&grads.scaled_by(-6.0));
        if epoch % 40 == 39 {
            let test_mse = model.mse(&test_users, &test_items, &test_targets);
            println!("epoch {epoch:3}: held-out MSE {test_mse:.4}");
        }
    }
    let after = model.mse(&test_users, &test_items, &test_targets);
    println!(
        "held-out MSE: {before:.4} → {after:.4} ({}× better; generator noise floor ≈ {:.4})",
        (before / after).round(),
        (spec.noise as f64).powi(2)
    );
    assert!(after < before * 0.2, "factorization must generalize");
}
