//! Profile the Figure 6 LeNet-5 training loop on each of the three
//! execution backends, and print their side-by-side `ProfileReport`s:
//! where the naive backend spends everything in kernels, the eager
//! backend shows enqueue/observe pipelining and the lazy backend shows
//! barrier/compile/execute phases plus program-cache hit counters.
//!
//! ```sh
//! cargo run --release --example profiling
//! ```
//!
//! Pass a path to also write a Chrome-trace of the *last* (lazy) run,
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>:
//!
//! ```sh
//! cargo run --release --example profiling -- /tmp/s4tf-trace.json
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::data::{Dataset, ImageSpec};
use s4tf::models::LeNet;
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;
use s4tf::profile;

fn main() {
    let trace_path = std::env::args().nth(1);
    // Exercise the kernel thread pool even on single-core CI hosts (where
    // `available_parallelism` would otherwise pin it to one worker); an
    // explicit S4TF_NUM_THREADS still wins.
    if std::env::var("S4TF_NUM_THREADS").is_err() {
        s4tf::threads::set_num_threads(4);
    }
    let train = Dataset::generate(ImageSpec::mnist_like(), 256, 1);
    let batch_size = 32;
    let steps = train.batches_per_epoch(batch_size);

    profile::set_enabled(true);
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut model = LeNet::new(&device, &mut rng);
        let mut optimizer = Sgd::with_momentum(0.05, 0.9);

        profile::reset();
        let start = std::time::Instant::now();
        let mut loss = 0.0;
        for b in 0..steps {
            let batch = train.batch(batch_size, b, 0);
            let x = DTensor::from_tensor(batch.images.clone(), &device);
            let y = DTensor::from_tensor(batch.one_hot(10), &device);
            loss = train_classifier_step(&mut model, &mut optimizer, &x, &y);
        }
        let elapsed = start.elapsed().as_secs_f64();

        println!(
            "=== device: {} — {steps} steps in {elapsed:.2}s, final loss {loss:.4} ===",
            device.kind()
        );
        println!("{}", profile::report());

        // The performance observatory: per-op achieved GFLOP/s against the
        // machine's probed ceilings, and the longest dependency chain with
        // its queue/kernel/compile/trace decomposition. Training dispatched
        // real ops on every backend, so neither view may come back empty.
        let roofline = profile::roofline().with_machine(profile::machine_probe());
        assert!(
            !roofline.is_empty(),
            "{}: training steps must produce roofline rows",
            device.kind()
        );
        println!("{roofline}");
        let critical = profile::critical_path();
        assert!(
            !critical.is_empty(),
            "{}: training steps must produce a critical path",
            device.kind()
        );
        println!("{critical}");

        if let Some(stats) = device.cache_stats() {
            println!(
                "program cache: {} compiled, {} hits ({:.0}% hit rate)\n",
                stats.misses,
                stats.hits,
                stats.hit_ratio() * 100.0
            );
        } else {
            println!();
        }
    }

    // Memory tracking (s4tf::diag) is always on: the training loops above
    // allocated tensor storage, so the counters must have moved.
    let mem = s4tf::diag::memory_stats();
    assert!(mem.allocs > 0, "tensor allocations must be counted");
    assert!(mem.peak_bytes > 0, "peak bytes must be non-zero");
    println!(
        "memory: live {} B, peak {} B, {} allocs / {} frees",
        mem.live_bytes, mem.peak_bytes, mem.allocs, mem.frees
    );

    let stats = profile::pool_stats().expect("kernel pool ran, so stats must be registered");
    assert!(
        stats.tasks_run + stats.inline_runs > 0,
        "the training loops above must have driven the kernel pool"
    );
    println!(
        "kernel pool: {} workers, {} tasks ({} chunks), {} inline runs, {}us busy",
        stats.workers, stats.tasks_run, stats.chunks_dispatched, stats.inline_runs, stats.busy_us
    );

    // S4TF_PERF_REPORT=1 asks for the combined observatory rendering
    // (span report + roofline + critical path) in one block — the same
    // string any embedding binary can print at exit.
    if profile::perf_report_requested() {
        println!("--- S4TF_PERF_REPORT (lazy run) ---");
        println!("{}", profile::perf_report());
    }

    // The profiler still holds the lazy run's events; export them.
    if let Some(path) = trace_path {
        let json = profile::chrome_trace_json();
        std::fs::write(&path, &json).expect("write Chrome trace");
        println!("wrote Chrome trace ({} bytes) to {path}", json.len());
    }
    profile::set_enabled(false);
}
