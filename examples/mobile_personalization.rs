//! On-device personalization (paper §5.1.3): train a global spline model
//! on "server-side" aggregated data, then fine-tune it to convergence on a
//! device's local data using gradient descent with backtracking line
//! search — "the same Swift code defined and ran model training in both
//! stages".
//!
//! ```sh
//! cargo run --release --example mobile_personalization
//! ```

use s4tf::data::{PersonalizationData, SplineDataSpec};
use s4tf::models::spline::strategies::{NativeAot, SplineStrategy};
use s4tf::models::spline::{ConvergenceCriteria, SplineModel};
use s4tf::models::BacktrackingLineSearch;

fn holdout_loss(points: &[f32], data: &s4tf::data::spline_data::Samples) -> f64 {
    let mut m = SplineModel::new(points.len());
    m.control_points = points.to_vec();
    m.loss(&data.x, &data.y)
}

fn main() {
    let knots = 16;
    let spec = SplineDataSpec::default();
    let strategy = NativeAot;

    println!("== stage 1: global model (server-side, aggregated data) ==");
    let device0 = PersonalizationData::generate(spec, 0);
    let global = strategy.train(
        &device0.global.x,
        &device0.global.y,
        knots,
        ConvergenceCriteria::default(),
    );
    println!(
        "  converged in {} iterations ({} loss evals), train loss {:.5}",
        global.iterations, global.loss_evaluations, global.final_loss
    );

    println!("== stage 2: on-device fine-tuning (local data only) ==");
    for device_seed in 1..=3u64 {
        let data = PersonalizationData::generate(spec, device_seed);
        let before = holdout_loss(&global.control_points, &data.local_holdout);

        // Fine-tune: warm-start from the global control points.
        let mut points = global.control_points.clone();
        let mut model = SplineModel::new(knots);
        let ls = BacktrackingLineSearch::default();
        let criteria = ConvergenceCriteria::default();
        let mut grad = vec![0.0f32; knots];
        model.control_points.copy_from_slice(&points);
        let mut loss = model.loss(&data.local.x, &data.local.y);
        let mut iterations = 0;
        while iterations < criteria.max_iterations {
            iterations += 1;
            grad.iter_mut().for_each(|g| *g = 0.0);
            model.control_points.copy_from_slice(&points);
            model.accumulate_gradient(&data.local.x, &data.local.y, &mut grad);
            let (step, _) = ls.search(&points, &grad, loss, |candidate| {
                let mut probe = SplineModel::new(knots);
                probe.control_points = candidate.to_vec();
                probe.loss(&data.local.x, &data.local.y)
            });
            for (p, &g) in points.iter_mut().zip(&grad) {
                *p -= step as f32 * g;
            }
            model.control_points.copy_from_slice(&points);
            let new_loss = model.loss(&data.local.x, &data.local.y);
            let improvement = (loss - new_loss) / loss.abs().max(1e-12);
            loss = new_loss;
            if improvement.abs() < criteria.relative_tolerance {
                break;
            }
        }

        let after = holdout_loss(&points, &data.local_holdout);
        println!(
            "  device {device_seed}: holdout loss {before:.5} → {after:.5} \
             ({iterations} fine-tune iterations)"
        );
        assert!(after < before, "personalization must improve the local fit");
    }
    println!("personalization improved every device's holdout fit.");
}
