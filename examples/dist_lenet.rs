//! Multi-process data-parallel LeNet over local TCP — the `s4tf::dist`
//! cookbook entry.
//!
//! ```sh
//! cargo run --release --example dist_lenet                  # 4 workers, 6 steps
//! cargo run --release --example dist_lenet -- --workers 2 --steps 3
//! cargo run --release --example dist_lenet -- --chaos       # kill -9 + rejoin
//! ```
//!
//! `--chaos` plants a deterministic `kill -9` in the highest rank mid-step
//! and restarts it, so one run demonstrates the whole robustness story:
//! the DropShard degradation line, survivors-only renormalization, and
//! checkpoint rejoin. Wire faults come from the environment, e.g.
//! `S4TF_FAULT_SPEC=net:0.05:17 S4TF_DIST_NET_MODE=delay` for seeded
//! straggler injection (workers inherit the spec).

use s4tf::dist::{self, ClusterConfig};

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    // When the launcher re-execs this binary as a worker, the entire
    // worker lifecycle runs (and exits) here.
    dist::lenet::worker_main_if_spawned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = arg_value(&args, "--workers").unwrap_or(4) as u32;
    let steps = arg_value(&args, "--steps").unwrap_or(6);
    let chaos = args.iter().any(|a| a == "--chaos");

    let ckpt_dir = std::env::temp_dir().join(format!("s4tf-dist-lenet-{}", std::process::id()));
    let mut cfg = ClusterConfig::new(workers, steps, ckpt_dir.clone());
    if chaos {
        // Kill the highest rank mid-collective on step 1, then let the
        // supervisor restart it so it rejoins from the sync checkpoint.
        cfg.abort = Some((workers - 1, 1, "midring".to_string()));
        cfg.restart_ms = Some(0);
    }

    println!(
        "dist_lenet: {workers} worker processes x {steps} steps{}",
        if chaos {
            ", chaos: kill -9 + rejoin"
        } else {
            ""
        }
    );
    let report = match dist::run(&cfg) {
        Ok(report) => report,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&ckpt_dir);
            eprintln!("dist_lenet: cluster failed: {e}");
            std::process::exit(1);
        }
    };

    for rec in &report.steps {
        println!(
            "  step {:>3}  loss {:.6}  shards {}  step {:>7} us  allreduce {:>7} us  ring tx {} B",
            rec.step, rec.loss, rec.survivors, rec.step_us, rec.allreduce_us, rec.tx_bytes
        );
    }
    println!(
        "completed {} steps, final loss {:.6}, survivors {:?}, {} retries",
        report.steps_completed, report.final_loss, report.survivors, report.retries
    );
    for (rank, step) in &report.expelled {
        println!("  expelled: rank {rank} at step {step}");
    }
    for (rank, step) in &report.rejoined {
        println!("  rejoined: rank {rank} at step {step} (from sync checkpoint)");
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
