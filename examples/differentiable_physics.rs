//! Differentiable physics (paper §5: "Beyond machine learning, Swift for
//! TensorFlow has been applied to differentiable physics simulations").
//!
//! A projectile with quadratic drag is simulated by explicit Euler
//! integration *as an IR program with a loop*, and the launch angle is
//! optimized by gradient descent — the gradient flows through the
//! time-stepping loop via the SIL-style reverse-mode transformation
//! (per-basic-block pullback records, paper §2.2).
//!
//! ```sh
//! cargo run --release --example differentiable_physics
//! ```

use s4tf::sil::ad::vjp::differentiate;
use s4tf::sil::parser::parse_module_unwrap;

/// The simulation: 120 Euler steps of a projectile launched at `angle`
/// with fixed speed; returns the squared horizontal miss distance to a
/// target at x = 8 after 1.2 simulated seconds. Written in the textual IR so the compile-time AD transformation
/// differentiates *through the loop*.
const SIMULATION: &str = r#"
func @miss(%angle: f64) -> f64 {
bb0(%angle: f64):
  %speed = const 12.0
  %ca = cos %angle
  %sa = sin %angle
  %vx0 = mul %speed, %ca
  %vy0 = mul %speed, %sa
  %zero = const 0.0
  br bb1(%zero, %zero, %vx0, %vy0, %zero)
bb1(%x: f64, %y: f64, %vx: f64, %vy: f64, %k: f64):
  %steps = const 120.0
  %cont = cmp lt %k, %steps
  condbr %cont, bb2(), bb3()
bb2():
  %dt = const 0.01
  // quadratic drag: a = -c·v·|v| (componentwise approximation)
  %c = const 0.02
  %g = const 9.81
  %vx2 = mul %vx, %vx
  %dragx = mul %c, %vx2
  %ax = neg %dragx
  %absvy = abs %vy
  %vyav = mul %vy, %absvy
  %dragy = mul %c, %vyav
  %gd = add %g, %dragy
  %ay = neg %gd
  %dvx = mul %ax, %dt
  %dvy = mul %ay, %dt
  %vxn = add %vx, %dvx
  %vyn = add %vy, %dvy
  %dx = mul %vxn, %dt
  %dy = mul %vyn, %dt
  %xn = add %x, %dx
  %yn = add %y, %dy
  %one = const 1.0
  %kn = add %k, %one
  br bb1(%xn, %yn, %vxn, %vyn, %kn)
bb3():
  %target = const 8.0
  %ex = sub %x, %target
  %miss = mul %ex, %ex
  ret %miss
}
"#;

fn main() {
    let module = parse_module_unwrap(SIMULATION);
    let f = module.func_id("miss").expect("function exists");

    // "Compile time": synthesize the reverse-mode derivative once.
    let derivative = differentiate(&module, f).expect("simulation is differentiable");
    println!(
        "synthesized VJP over {} basic blocks (warnings: {:?})",
        derivative.primal().blocks.len(),
        derivative.warnings
    );

    // Gradient descent on the launch angle.
    let mut angle = 0.3f64;
    let mut last_miss = f64::INFINITY;
    for iter in 0..200 {
        let (miss, grad) = derivative
            .value_with_gradient(&[angle], 1.0)
            .expect("evaluation succeeds");
        if iter % 25 == 0 {
            println!(
                "iter {iter:3}: angle {:6.2}°, miss² {miss:9.4}, d(miss)/d(angle) {:+.3}",
                angle.to_degrees(),
                grad[0]
            );
        }
        last_miss = miss;
        angle -= 0.01 * grad[0];
    }
    let (final_miss, _) = derivative.value_with_gradient(&[angle], 1.0).unwrap();
    println!(
        "optimized launch angle: {:.2}° (miss² = {final_miss:.5})",
        angle.to_degrees()
    );
    assert!(final_miss < 1e-4, "optimization should hit the target");
    assert!(final_miss <= last_miss + 1e-9);

    // Cross-check the synthesized gradient against finite differences.
    let eps = 1e-6;
    let mut interp = s4tf::sil::Interpreter::new();
    let up = interp.run(&module, f, &[angle + eps]).unwrap()[0];
    let down = interp.run(&module, f, &[angle - eps]).unwrap()[0];
    let fd = (up - down) / (2.0 * eps);
    let (_, g) = derivative.value_with_gradient(&[angle], 1.0).unwrap();
    println!(
        "gradient check at optimum: ad {:+.6} vs fd {:+.6}",
        g[0], fd
    );
    assert!((g[0] - fd).abs() < 1e-4);
}
