//! Reinforcement learning with policy gradients — the application area the
//! paper highlights (§5: Jelly Bean World and DeepMind's OpenSpiel were
//! built on Swift for TensorFlow).
//!
//! A cart-pole environment is simulated in plain Rust (define-by-run: the
//! episode's control flow is ordinary host control flow, §3.3's composition
//! argument), and a two-layer softmax policy is trained with REINFORCE.
//! The policy gradient flows through the same `Layer` pullbacks as
//! supervised training — gradients are first-class values (§4.2), so the
//! per-episode return-weighted gradient is just a scaled `TangentVector`
//! accumulated across timesteps.
//!
//! ```sh
//! cargo run --release --example reinforce_cartpole
//! ```

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::prelude::*;

/// Classic cart-pole dynamics (Barto–Sutton–Anderson constants).
struct CartPole {
    x: f32,
    x_dot: f32,
    theta: f32,
    theta_dot: f32,
}

impl CartPole {
    fn reset(rng: &mut ChaCha8Rng) -> Self {
        let mut u = || rng.gen_range(-0.05f32..0.05);
        CartPole {
            x: u(),
            x_dot: u(),
            theta: u(),
            theta_dot: u(),
        }
    }

    fn observation(&self) -> [f32; 4] {
        [self.x, self.x_dot, self.theta, self.theta_dot]
    }

    /// Applies a force; returns false when the pole falls or the cart
    /// leaves the track.
    fn step(&mut self, push_right: bool) -> bool {
        let force = if push_right { 10.0 } else { -10.0 };
        let (g, mc, mp, l, dt) = (9.8, 1.0, 0.1, 0.5, 0.02);
        let total = mc + mp;
        let cos = self.theta.cos();
        let sin = self.theta.sin();
        let temp = (force + mp * l * self.theta_dot * self.theta_dot * sin) / total;
        let theta_acc = (g * sin - cos * temp) / (l * (4.0 / 3.0 - mp * cos * cos / total));
        let x_acc = temp - mp * l * theta_acc * cos / total;
        self.x += dt * self.x_dot;
        self.x_dot += dt * x_acc;
        self.theta += dt * self.theta_dot;
        self.theta_dot += dt * theta_acc;
        self.x.abs() < 2.4 && self.theta.abs() < 0.2095
    }
}

fn main() {
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    // Policy: 4 → 16 → 2 softmax.
    let mut hidden = Dense::new(4, 16, Activation::Tanh, &device, &mut rng);
    let mut head = Dense::new(16, 2, Activation::Identity, &device, &mut rng);
    let learning_rate = 0.01f64;
    let gamma = 0.99f32;

    let mut recent: Vec<f64> = Vec::new();
    for episode in 0..400 {
        let mut env = CartPole::reset(&mut rng);
        // Per-step records: pullbacks + chosen action, for REINFORCE.
        let mut steps = Vec::new();
        let mut alive = true;
        while alive && steps.len() < 500 {
            let obs = DTensor::from_tensor(
                Tensor::from_vec(env.observation().to_vec(), &[1, 4]),
                &device,
            );
            let (h, pb_hidden) = hidden.forward_with_pullback(&obs);
            let (logits, pb_head) = head.forward_with_pullback(&h);
            let probs = logits.softmax().to_tensor();
            let p_right = probs.at(&[0, 1]);
            let action_right = rng.gen_range(0.0f32..1.0) < p_right;
            alive = env.step(action_right);
            steps.push((pb_hidden, pb_head, probs, action_right));
        }

        // Discounted returns, normalized.
        let t_max = steps.len();
        let mut returns = vec![0.0f32; t_max];
        let mut acc = 0.0f32;
        for t in (0..t_max).rev() {
            acc = 1.0 + gamma * acc;
            returns[t] = acc;
        }
        let mean = returns.iter().sum::<f32>() / t_max as f32;
        let std = (returns.iter().map(|r| (r - mean).powi(2)).sum::<f32>() / t_max as f32)
            .sqrt()
            .max(1e-6);

        // REINFORCE: ∇ = Σ_t G_t · ∇ log π(a_t | s_t). The pullback seed is
        // d(−log π(a))/d(logits) = π − onehot(a), scaled by the return.
        let mut g_hidden: Option<<Dense as Differentiable>::TangentVector> = None;
        let mut g_head: Option<<Dense as Differentiable>::TangentVector> = None;
        for (t, (pb_hidden, pb_head, probs, action_right)) in steps.iter().enumerate() {
            let advantage = (returns[t] - mean) / std;
            let a = usize::from(*action_right);
            let mut seed = probs.clone();
            *seed.at_mut(&[0, a]) -= 1.0;
            let seed = DTensor::from_tensor(seed.mul_scalar(advantage), &device);
            let (gh, dh) = pb_head(&seed);
            let (gm, _) = pb_hidden(&dh);
            g_head = Some(match g_head.take() {
                None => gh,
                Some(acc) => acc.adding(&gh),
            });
            g_hidden = Some(match g_hidden.take() {
                None => gm,
                Some(acc) => acc.adding(&gm),
            });
        }
        // In-place policy update through unique borrows (§4.2).
        hidden.move_along(
            &g_hidden
                .expect("episode has steps")
                .scaled_by(-learning_rate),
        );
        head.move_along(&g_head.expect("episode has steps").scaled_by(-learning_rate));

        recent.push(t_max as f64);
        if recent.len() > 50 {
            recent.remove(0);
        }
        if episode % 50 == 49 {
            let avg = recent.iter().sum::<f64>() / recent.len() as f64;
            println!("episode {episode:3}: mean episode length (last 50) = {avg:.1}");
        }
    }

    let avg = recent.iter().sum::<f64>() / recent.len() as f64;
    println!("final mean episode length: {avg:.1} (untrained policy ≈ 20)");
    assert!(
        avg > 60.0,
        "policy gradient should at least triple the episode length"
    );
}
